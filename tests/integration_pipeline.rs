//! Cross-crate integration: the Figure-1 pipeline, generation through
//! exploration, over one `DataManager`.

use llmdm::sql::Value;
use llmdm::transform::Grid;
use llmdm::DataManager;

fn manager_with_data(seed: u64) -> DataManager {
    let mut dm = DataManager::new(seed);
    dm.ingest_json(
        "orders",
        r#"[{"id": 1, "customer": "alice", "city": "springfield", "total": 120},
            {"id": 2, "customer": "bob", "city": "rivertown", "total": 80},
            {"id": 3, "customer": "alice", "city": "springfield", "total": 95},
            {"id": 4, "customer": "chen", "city": "rivertown", "total": 200},
            {"id": 5, "customer": "alice", "city": "springfeld", "total": 60}]"#,
    )
    .expect("feed ingests");
    let grid: Grid = vec![
        vec!["Export 2024-01".into(), "".into()],
        vec!["product".into(), "units".into()],
        vec!["widget".into(), "10".into()],
        vec!["gadget".into(), "25".into()],
    ];
    dm.ingest_spreadsheet("inventory", &grid).expect("grid ingests");
    dm
}

#[test]
fn ingested_sources_are_jointly_queryable() {
    let mut dm = manager_with_data(1);
    let rs = dm
        .database_mut()
        .query("SELECT customer, total FROM orders WHERE total >= 95 ORDER BY total DESC")
        .expect("query runs");
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.rows[0][0], Value::Str("chen".into()));
    let rs = dm
        .database_mut()
        .query("SELECT product FROM inventory WHERE units > 20")
        .expect("query runs");
    assert_eq!(rs.rows[0][0], Value::Str("gadget".into()));
}

#[test]
fn generated_sql_runs_on_ingested_schema() {
    let mut dm = manager_with_data(2);
    let corpus = dm.generate_sql(12);
    assert!(corpus.len() >= 8, "got {}", corpus.len());
    let mut scratch = dm.database().clone();
    for g in &corpus {
        assert!(scratch.query(&g.sql).is_ok(), "generated SQL fails: {}", g.sql);
    }
}

#[test]
fn lake_indexes_everything_and_answers_semantically() {
    let mut dm = manager_with_data(3);
    let n = dm
        .build_lake(&[
            ("policy", "orders above one hundred dollars need manager approval"),
            ("memo", "widget restock arriving at springfield warehouse"),
        ])
        .expect("lake builds");
    assert_eq!(n, 4); // 2 tables + 2 documents
    let hits = dm.lake().search("approval required for large orders", 2).expect("search");
    assert_eq!(hits[0].item.title, "policy");
}

#[test]
fn cleaning_reports_and_repairs() {
    let mut dm = manager_with_data(4);
    // The misspelled "springfeld" violates the customer→city dependency
    // (alice appears with two city spellings).
    let report = dm.clean_table("orders", &[("customer", "city")]).expect("clean runs");
    assert_eq!(report.fd_violations.len(), 1, "{report:?}");
    // Post-repair the violation is gone.
    let report2 = dm.clean_table("orders", &[("customer", "city")]).expect("clean runs");
    assert!(report2.fd_violations.is_empty());
    let rs = dm
        .database_mut()
        .query("SELECT DISTINCT city FROM orders WHERE customer = 'alice'")
        .expect("query runs");
    assert_eq!(rs.rows.len(), 1);
}

#[test]
fn transactions_span_ingested_tables() {
    let mut dm = manager_with_data(5);
    let db = dm.database_mut();
    db.execute("BEGIN").expect("begin");
    db.execute("UPDATE inventory SET units = units - 5 WHERE product = 'widget'")
        .expect("update");
    db.execute("ROLLBACK").expect("rollback");
    let rs = db.query("SELECT units FROM inventory WHERE product = 'widget'").expect("query");
    assert_eq!(rs.rows[0][0], Value::Int(10), "rollback restored units");
}
