//! Cross-crate integration for §II-A2's footnote: "the generated synthetic
//! datasets can be considered new training datasets for ML models" — a
//! model trained on a statistically-mimicked synthetic table performs
//! close to one trained on the real table, without touching a single real
//! row.

use llmdm::datagen::{synthesize, TableProfile};
use llmdm::privacy::logreg::{Dataset, LogisticRegression};
use llmdm::sql::{Column, DataType, Schema, Table, Value};

/// A "real" labelled table: label = high_risk, features correlated with it.
fn real_table(n: usize, seed: u64) -> Table {
    use llmdm_rt::rand::rngs::SmallRng;
    use llmdm_rt::rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let schema = Schema::new(vec![
        Column::new("age", DataType::Int),
        Column::new("bp", DataType::Float),
        Column::new("high_risk", DataType::Text),
    ]);
    let mut t = Table::new("patients", schema);
    for _ in 0..n {
        let risky = rng.gen_bool(0.5);
        let (age, bp) = if risky {
            (rng.gen_range(60..90i64), rng.gen_range(140.0..180.0f64))
        } else {
            (rng.gen_range(20..55i64), rng.gen_range(100.0..135.0f64))
        };
        t.push_row(vec![
            Value::Int(age),
            Value::Float(bp),
            Value::Str(if risky { "yes" } else { "no" }.into()),
        ])
        .expect("row conforms");
    }
    t
}

/// Turn a (age, bp, high_risk) table into a learnable dataset.
fn to_dataset(t: &Table) -> Dataset {
    let mut d = Dataset::default();
    for row in &t.rows {
        let (Some(age), Some(bp)) = (row[0].as_f64(), row[1].as_f64()) else { continue };
        d.x.push(vec![age / 100.0, bp / 200.0]);
        d.y.push(row[2] == Value::Str("yes".into()));
    }
    d
}

#[test]
fn model_trained_on_synthetic_data_generalizes_to_real() {
    let real = real_table(400, 7);
    let holdout = real_table(200, 8); // fresh real data for evaluation

    // Profile the real table and synthesize a stand-in — this is what gets
    // shared instead of the private rows. Per-column synthesis destroys
    // the feature-label correlation, so the synthesizer conditions by
    // class: profile each label slice separately (the standard recipe).
    let split_by = |t: &Table, label: &str| -> Table {
        let mut out = Table::new(&t.name, t.schema.clone());
        for r in &t.rows {
            if r[2] == Value::Str(label.into()) {
                out.push_row(r.clone()).expect("row conforms");
            }
        }
        out
    };
    let mut synthetic_rows = Table::new("patients_synth", real.schema.clone());
    for label in ["yes", "no"] {
        let slice = split_by(&real, label);
        let profile = TableProfile::profile(&slice);
        let synth = synthesize(&profile, slice.rows.len(), 99);
        for r in synth.rows {
            synthetic_rows.push_row(r).expect("row conforms");
        }
    }

    // No synthetic row is a verbatim copy of a real row.
    let copies = synthetic_rows
        .rows
        .iter()
        .filter(|r| real.rows.contains(r))
        .count();
    assert!(
        copies < synthetic_rows.rows.len() / 20,
        "synthesis leaked {copies} verbatim rows"
    );

    // Train on synthetic, evaluate on real holdout.
    let mut on_synth = LogisticRegression::new(2);
    on_synth.fit(&to_dataset(&synthetic_rows), 400, 0.8);
    let acc_synth = on_synth.accuracy(&to_dataset(&holdout));

    // Baseline: train on the real data.
    let mut on_real = LogisticRegression::new(2);
    on_real.fit(&to_dataset(&real), 400, 0.8);
    let acc_real = on_real.accuracy(&to_dataset(&holdout));

    assert!(acc_real > 0.9, "baseline should be strong, got {acc_real}");
    assert!(
        acc_synth > acc_real - 0.08,
        "synthetic-trained {acc_synth} vs real-trained {acc_real}"
    );
}

#[test]
fn profile_preserves_class_statistics() {
    let real = real_table(300, 11);
    let profile = TableProfile::profile(&real);
    let synth = synthesize(&profile, 300, 5);
    // Marginal stats preserved even without class conditioning.
    let mean = |t: &Table, c: usize| {
        t.rows.iter().filter_map(|r| r[c].as_f64()).sum::<f64>() / t.rows.len() as f64
    };
    assert!((mean(&real, 0) - mean(&synth, 0)).abs() < 5.0, "age means diverge");
    assert!((mean(&real, 1) - mean(&synth, 1)).abs() < 6.0, "bp means diverge");
}
