//! The hermetic-build guard: every dependency in the workspace must be a
//! `path` dependency.
//!
//! The workspace's build invariant is that `cargo build --offline`
//! succeeds from a cold registry cache — no network, no vendored
//! registry, no lockfile churn. That only holds if no crate ever grows a
//! registry dependency, so this test parses the root manifest and every
//! `crates/*/Cargo.toml` and fails loudly on anything that is not a
//! `path = …` / `*.workspace = true` dependency.
//!
//! (Hand-rolled scanning, not a TOML crate — a TOML parser would itself
//! violate the invariant.)

use std::fs;
use std::path::{Path, PathBuf};

/// Find the workspace root: walk up from this test file's crate.
fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        let candidate = dir.join("Cargo.toml");
        if candidate.exists() {
            if fs::read_to_string(&candidate)
                .map(|s| s.contains("[workspace]"))
                .unwrap_or(false)
            {
                return dir;
            }
        }
        assert!(dir.pop(), "workspace root not found above CARGO_MANIFEST_DIR");
    }
}

/// Collect `(manifest, offending line)` pairs for non-path dependencies.
fn scan_manifest(path: &Path) -> Vec<String> {
    let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let mut offenders = Vec::new();
    let mut in_dep_section = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            // [dependencies], [dev-dependencies], [build-dependencies],
            // [workspace.dependencies], and target-specific variants.
            in_dep_section = line.trim_matches(['[', ']']).ends_with("dependencies");
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let ok = line.contains("path =")
            || line.contains("path=")
            || line.ends_with(".workspace = true")
            || line.contains("workspace = true");
        if !ok {
            offenders.push(format!("{}: {line}", path.display()));
        }
    }
    offenders
}

#[test]
fn every_dependency_is_a_path_dependency() {
    let root = workspace_root();
    let mut manifests = vec![root.join("Cargo.toml")];
    for entry in fs::read_dir(root.join("crates")).expect("crates dir") {
        let dir = entry.expect("dir entry").path();
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            manifests.push(manifest);
        }
    }
    assert!(manifests.len() > 10, "expected the full workspace, found {}", manifests.len());

    let offenders: Vec<String> = manifests.iter().flat_map(|m| scan_manifest(m)).collect();
    assert!(
        offenders.is_empty(),
        "non-path dependencies break the hermetic offline build:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn rt_crate_has_no_dependencies_at_all() {
    let root = workspace_root();
    let text = fs::read_to_string(root.join("crates/rt/Cargo.toml")).expect("rt manifest");
    let mut in_deps = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line.trim_matches(['[', ']']).ends_with("dependencies");
            continue;
        }
        if in_deps && !line.is_empty() && !line.starts_with('#') {
            panic!("llmdm-rt must stay dependency-free, found: {line}");
        }
    }
}

#[test]
fn obs_crate_depends_only_on_rt() {
    // llmdm-obs is the cross-cutting layer every crate may depend on; to
    // keep the dependency graph acyclic and the crate as hermetic as the
    // runtime itself, its only dependency is llmdm-rt.
    let root = workspace_root();
    let text = fs::read_to_string(root.join("crates/obs/Cargo.toml")).expect("obs manifest");
    let mut in_deps = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line.trim_matches(['[', ']']).ends_with("dependencies");
            continue;
        }
        if in_deps && !line.is_empty() && !line.starts_with('#') {
            assert!(
                line.starts_with("llmdm-rt"),
                "llmdm-obs may only depend on llmdm-rt, found: {line}"
            );
        }
    }
}

#[test]
fn resil_crate_depends_only_on_rt_and_obs() {
    // llmdm-resil is generic resilience machinery (fault plans, backoff,
    // breakers, deadlines, the retry executor). It must stay free of
    // domain crates so any layer — model, cascade, semcache, core — can
    // depend on it without cycles: its only dependencies are llmdm-rt
    // and llmdm-obs. (Dev-dependencies are covered too: the scan below
    // walks every `*dependencies` section.)
    let root = workspace_root();
    let text = fs::read_to_string(root.join("crates/resil/Cargo.toml")).expect("resil manifest");
    let mut in_deps = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line.trim_matches(['[', ']']).ends_with("dependencies");
            continue;
        }
        if in_deps && !line.is_empty() && !line.starts_with('#') {
            assert!(
                line.starts_with("llmdm-rt") || line.starts_with("llmdm-obs"),
                "llmdm-resil may only depend on llmdm-rt and llmdm-obs, found: {line}"
            );
        }
    }
}

#[test]
fn serve_crate_depends_only_on_rt_obs_resil() {
    // llmdm-serve is infrastructure, not domain logic: the scheduler is
    // generic over payload/result types, so it must never grow a
    // dependency on model, cascade, semcache, or core. Pinning it to
    // llmdm-rt + llmdm-obs + llmdm-resil keeps every domain crate free
    // to depend on serving without cycles.
    let root = workspace_root();
    let text = fs::read_to_string(root.join("crates/serve/Cargo.toml")).expect("serve manifest");
    let mut in_deps = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line.trim_matches(['[', ']']).ends_with("dependencies");
            continue;
        }
        if in_deps && !line.is_empty() && !line.starts_with('#') {
            assert!(
                line.starts_with("llmdm-rt")
                    || line.starts_with("llmdm-obs")
                    || line.starts_with("llmdm-resil"),
                "llmdm-serve may only depend on llmdm-rt, llmdm-obs, llmdm-resil, found: {line}"
            );
        }
    }
}

#[test]
fn store_crate_depends_only_on_rt_obs_resil() {
    // llmdm-store is the durable storage tier (pager, WAL, recovery).
    // Like serve, it is infrastructure: both sqlengine and semcache sit
    // on top of it, so it must never depend on a domain crate — only
    // llmdm-rt (runtime), llmdm-obs (counters/spans), and llmdm-resil
    // (fault plans driving the crash-injection kill points).
    let root = workspace_root();
    let text = fs::read_to_string(root.join("crates/store/Cargo.toml")).expect("store manifest");
    let mut in_deps = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line.trim_matches(['[', ']']).ends_with("dependencies");
            continue;
        }
        if in_deps && !line.is_empty() && !line.starts_with('#') {
            assert!(
                line.starts_with("llmdm-rt")
                    || line.starts_with("llmdm-obs")
                    || line.starts_with("llmdm-resil"),
                "llmdm-store may only depend on llmdm-rt, llmdm-obs, llmdm-resil, found: {line}"
            );
        }
    }
}

#[test]
fn sqlengine_crate_cone_is_pinned() {
    // llmdm-sqlengine grew a model seam for semantic operators
    // (LLM_MAP / LLM_FILTER / LLM_JOIN): llmdm-model supplies the
    // LanguageModel stack + UsageMeter, llmdm-semcache the semantic
    // cache whose live stats feed cache-aware cost estimates. Beyond
    // those and its storage/infra cone (rt, obs, store) it must not
    // grow dependencies — in particular not on serve, cascade, or core,
    // which all sit *above* the engine.
    let root = workspace_root();
    let text =
        fs::read_to_string(root.join("crates/sqlengine/Cargo.toml")).expect("sqlengine manifest");
    let allowed =
        ["llmdm-rt", "llmdm-obs", "llmdm-store", "llmdm-model", "llmdm-semcache"];
    let mut in_deps = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line.trim_matches(['[', ']']).ends_with("dependencies");
            continue;
        }
        if in_deps && !line.is_empty() && !line.starts_with('#') {
            assert!(
                allowed.iter().any(|a| line.starts_with(a)),
                "llmdm-sqlengine may only depend on {allowed:?}, found: {line}"
            );
        }
    }
}

#[test]
fn no_source_file_references_removed_crates() {
    // The replaced crates must not creep back in via `use` or `extern`.
    let root = workspace_root();
    let banned = ["rand::", "serde::", "proptest::prelude", "criterion::", "crossbeam::", "parking_lot::", "bytes::"];
    let mut offenders = Vec::new();
    visit(&root.join("crates"), &mut |p, text| {
        for line in text.lines() {
            let t = line.trim_start();
            if let Some(rest) = t.strip_prefix("use ") {
                for b in banned {
                    if rest.starts_with(b) {
                        offenders.push(format!("{}: {t}", p.display()));
                    }
                }
            }
        }
    });
    assert!(offenders.is_empty(), "external-crate imports crept back:\n{}", offenders.join("\n"));
}

fn visit(dir: &Path, f: &mut impl FnMut(&Path, &str)) {
    for entry in fs::read_dir(dir).expect("read dir") {
        let p = entry.expect("entry").path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            visit(&p, f);
        } else if p.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = fs::read_to_string(&p) {
                f(&p, &text);
            }
        }
    }
}
