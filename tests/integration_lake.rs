//! Cross-crate integration: multi-modal exploration — the lake, hybrid
//! search, LLM-as-database, and validation working together.


use llmdm::explore::{DataLake, LlmDatabase, Modality, VirtualTable};
use llmdm::model::ModelZoo;
use llmdm::sql::{Column, DataType, Schema, Table, Value};
use llmdm::validate::{OutputValidator, SqlSyntaxValidator};
use llmdm::vecdb::{AttrValue, Filter};

fn professor_table() -> Table {
    let mut t = Table::new(
        "professors",
        Schema::new(vec![
            Column::new("name", DataType::Text),
            Column::new("department", DataType::Text),
        ]),
    );
    t.push_row(vec![
        Value::Str("Michael Jordan".into()),
        Value::Str("machine learning".into()),
    ])
    .expect("row");
    t
}

#[test]
fn michael_jordan_disambiguation_needs_hybrid_search() {
    let mut lake = DataLake::new(11);
    lake.add_text(
        "sports legends",
        "Michael Jordan, the greatest basketball player of all time, found the secret to success",
        vec![("entity_type".to_string(), AttrValue::from("athlete"))],
    )
    .expect("index text");
    lake.add_table(
        &professor_table(),
        vec![("entity_type".to_string(), AttrValue::from("professor"))],
    )
    .expect("index table");

    let query = "Could Prof. Michael Jordan play basketball";
    // Vector-only search surfaces the athlete (the paper's trap)…
    let plain = lake.search(query, 1).expect("search");
    assert_eq!(plain[0].item.modality, Modality::Text);
    // …the attribute filter recovers the professor.
    let hybrid = lake
        .search_filtered(query, 1, &Filter::eq("entity_type", "professor"))
        .expect("search");
    assert_eq!(hybrid[0].item.modality, Modality::Table);
}

#[test]
fn llm_as_database_joins_parametric_tables_and_validates() {
    let zoo = ModelZoo::standard(3);
    let facade = LlmDatabase::new(
        zoo.large(),
        vec![
            VirtualTable::new(
                "capitals",
                &["country", "capital"],
                vec![
                    vec!["freedonia".into(), "fredville".into()],
                    vec!["sylvania".into(), "sylvan city".into()],
                ],
            ),
            VirtualTable::new(
                "populations",
                &["capital", "millions"],
                vec![
                    vec!["fredville".into(), "3".into()],
                    vec!["sylvan city".into(), "5".into()],
                ],
            ),
        ],
    );
    let sql = "SELECT c.country FROM capitals c JOIN populations p \
               ON c.capital = p.capital WHERE p.millions > 4";
    // The query itself is validated before being sent anywhere (§III-E).
    assert!(SqlSyntaxValidator.validate(sql).is_pass());
    let rs = facade.query(sql).expect("virtual join runs");
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Str("sylvania".into()));
    // Probing is metered: one call per virtual table.
    assert_eq!(zoo.meter().snapshot().total_calls(), 2);
}

#[test]
fn lake_scales_to_hundreds_of_mixed_items() {
    let mut lake = DataLake::new(5);
    for i in 0..150 {
        lake.add_text(
            &format!("doc {i}"),
            &format!("operational note number {i} about region {}", i % 7),
            vec![("region".to_string(), AttrValue::Int(i % 7))],
        )
        .expect("index text");
    }
    for i in 0..50 {
        lake.add_log(
            &format!("log {i}"),
            &format!("slow query warning on shard {}", i % 5),
            vec![("shard".to_string(), AttrValue::Int(i % 5))],
        )
        .expect("index log");
    }
    assert_eq!(lake.len(), 200);
    // Modality-restricted and attribute-filtered searches stay consistent.
    let logs = lake.search_modality("slow query warning", 10, Modality::Log).expect("search");
    assert!(logs.iter().all(|h| h.item.modality == Modality::Log));
    let region3 = lake
        .search_filtered(
            "operational note",
            5,
            &Filter::eq("region", AttrValue::Int(3)),
        )
        .expect("search");
    assert!(!region3.is_empty());
    assert!(region3.iter().all(|h| h.item.title.starts_with("doc")));
}
