//! Integration tests for the serving determinism contract.
//!
//! `llmdm-serve`'s crate docs promise three things (see the crate-level
//! "Determinism contract"): admission — including quota and shed
//! decisions — is a pure function of `(requests, config)`, a 1-worker
//! run is byte-identical to a plain sequential loop, and an N-worker
//! run produces the same per-job results. The property tests here drive
//! those claims over *generated* workloads — arbitrary tenant/class
//! mixes, payloads, worker counts, and queue capacities — through the
//! typed [`ServeRequest`] surface, and a model-backed test checks the
//! contract holds through the real simulated-model call path including
//! costs.

use std::sync::Arc;

use llmdm::cascade::{HotpotConfig, HotpotWorkload, QaSolver};
use llmdm::model::prelude::*;
use llmdm::serve::prelude::*;
use llmdm_rt::proptest;
use llmdm_rt::proptest::prelude::*;
use llmdm_serve::scheduler::stream_id;

/// A generated request list: small tenant/key alphabets so coalescing
/// and per-tenant accounting both have work to do.
fn requests_strategy() -> impl Strategy<Value = Vec<ServeRequest<u64>>> {
    proptest::collection::vec(("[abc]", "[xy]", 0u8..3, any::<u64>()), 0..48).prop_map(|raw| {
        raw.into_iter()
            .map(|(tenant, key, class, payload)| {
                let class = match class {
                    0 => Priority::Interactive,
                    1 => Priority::Standard,
                    _ => Priority::Batch,
                };
                ServeRequest::builder(tenant, payload)
                    .class(class)
                    .batch_key(key)
                    .build()
                    .expect("generated requests are valid")
            })
            .collect()
    })
}

/// The pure handler every property test uses: result depends only on
/// `(batch key, payload)`, as the N-worker contract requires.
fn pure_handler(class: &str, batch: &[Job<u64>]) -> Vec<Result<String, ServeError>> {
    batch.iter().map(|j| Ok(format!("{class}#{:x}", j.payload))).collect()
}

proptest! {
    /// 1-worker serving is byte-identical to a direct sequential loop,
    /// for any request list and batch ceiling.
    #[test]
    fn single_worker_is_byte_identical_to_direct_loop(
        requests in requests_strategy(),
        max_batch in 1usize..10,
        seed in any::<u64>(),
    ) {
        let direct: Vec<String> =
            requests.iter().map(|r| format!("{}#{:x}", r.batch_key, r.payload)).collect();
        let cfg = ServeConfig { workers: 1, max_batch, seed, ..Default::default() };
        let run = serve_requests(&cfg, requests.clone(), pure_handler);
        prop_assert_eq!(run.stats.admitted as usize, requests.len());
        prop_assert_eq!(run.results.len(), requests.len());
        prop_assert!(run.stats.reconciles());
        for (i, d) in run.results.iter().enumerate() {
            let Disposition::Done(Ok(text)) = d else {
                return Err(TestCaseError::Fail(format!("job {i} did not complete")));
            };
            prop_assert_eq!(text, &direct[i], "job {} diverged from the direct loop", i);
        }
    }

    /// N workers produce the same per-job results as one worker, with
    /// the load fully accounted for across the pool and identical
    /// per-tenant accounting.
    #[test]
    fn n_workers_match_single_worker(
        requests in requests_strategy(),
        workers in 2usize..9,
        max_batch in 1usize..10,
    ) {
        let base = serve_requests(
            &ServeConfig { workers: 1, max_batch, ..Default::default() },
            requests.clone(),
            pure_handler,
        );
        let run = serve_requests(
            &ServeConfig { workers, max_batch, ..Default::default() },
            requests.clone(),
            pure_handler,
        );
        prop_assert_eq!(&run.results, &base.results, "worker count changed the results");
        prop_assert_eq!(&run.stats.per_tenant, &base.stats.per_tenant);
        prop_assert_eq!(run.stats.per_worker_jobs.len(), workers);
        prop_assert_eq!(
            run.stats.per_worker_jobs.iter().sum::<u64>(),
            run.stats.admitted,
            "per-worker job counts must sum to the admitted load"
        );
    }

    /// Admission is a pure function of `(requests, queue_capacity)`:
    /// exactly the first `capacity` submissions are admitted, at any
    /// worker count, and every rejection carries a retryable
    /// backpressure hint that maps onto the model-layer transient error.
    #[test]
    fn admission_depends_only_on_capacity(
        requests in requests_strategy(),
        capacity in 1usize..64,
        workers in 1usize..5,
    ) {
        let cfg = ServeConfig { workers, queue_capacity: capacity, ..Default::default() };
        let total = requests.len();
        let run = serve_requests(&cfg, requests, pure_handler);
        let admitted = total.min(capacity);
        prop_assert_eq!(run.stats.admitted as usize, admitted);
        prop_assert_eq!(run.stats.rejected as usize, total - admitted);
        prop_assert!(run.stats.reconciles());
        for (i, d) in run.results.iter().enumerate() {
            prop_assert_eq!(d.is_rejected(), i >= admitted, "job {}", i);
            if let Disposition::Rejected(e) = d {
                let ServeError::Rejected { depth, retry_after_ms } = e else {
                    return Err(TestCaseError::Fail(format!("job {i}: unexpected {e:?}")));
                };
                prop_assert!(e.is_retryable());
                prop_assert_eq!(e.retry_after_ms(), Some(*retry_after_ms));
                prop_assert!(*depth >= capacity);
                // The serving rejection maps cleanly onto the model
                // layer's transient-error vocabulary.
                let mapped = ModelError::transient(TransientKind::Unavailable, *retry_after_ms);
                prop_assert!(mapped.is_retryable());
                prop_assert_eq!(mapped.retry_after_ms(), Some(*retry_after_ms));
            }
        }
    }

    /// Stream ids depend only on `(seed, submission index)` — same seed
    /// reproduces them, different seeds diverge somewhere.
    #[test]
    fn stream_ids_are_a_pure_function_of_seed_and_index(
        seed in any::<u64>(),
        id in 0u64..1_000_000,
    ) {
        prop_assert_eq!(stream_id(seed, id), stream_id(seed, id));
        prop_assert_ne!(stream_id(seed, id), stream_id(seed.wrapping_add(1), id));
        prop_assert_ne!(stream_id(seed, id), stream_id(seed, id.wrapping_add(1)));
    }
}

/// Build the typed QA requests the model-backed tests serve.
fn qa_requests(workload: &HotpotWorkload) -> Vec<ServeRequest<String>> {
    workload
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let key = if i % 2 == 0 { "qa-even" } else { "qa-odd" };
            ServeRequest::builder(format!("team-{}", i % 2), item.prompt())
                .class(if i % 2 == 0 { Priority::Interactive } else { Priority::Batch })
                .batch_key(key)
                .build()
                .expect("valid request")
        })
        .collect()
}

/// The contract through the real simulated-model path: serving the zoo's
/// large tier at 1 and 4 workers reproduces the direct loop byte for
/// byte — text AND cost bits — and the meter bills each run identically.
#[test]
fn model_backed_serving_is_deterministic() {
    const SEED: u64 = 7;
    let zoo = ModelZoo::standard(SEED);
    zoo.register_solver(Arc::new(QaSolver));
    let model = ModelStack::new(&zoo).build_arc();
    let workload =
        HotpotWorkload::generate(HotpotConfig { n: 12, seed: SEED, ..Default::default() });
    let requests = qa_requests(&workload);

    let direct: Vec<(String, u64)> = requests
        .iter()
        .map(|r| {
            let c = model.complete(&CompletionRequest::new(r.payload.clone())).expect("completes");
            (c.text, c.cost.to_bits())
        })
        .collect();
    let billed_direct = zoo.meter().snapshot().total_dollars();
    zoo.meter().reset();

    for workers in [1usize, 4] {
        let run = serve_requests(
            &ServeConfig { workers, max_batch: 4, seed: SEED, ..Default::default() },
            requests.clone(),
            |_class: &str, batch: &[Job<String>]| {
                batch
                    .iter()
                    .map(|j| model.complete(&CompletionRequest::new(j.payload.clone())))
                    .collect()
            },
        );
        for (i, d) in run.results.iter().enumerate() {
            let Disposition::Done(Ok(c)) = d else { panic!("job {i} did not complete") };
            assert_eq!(
                (c.text.clone(), c.cost.to_bits()),
                direct[i],
                "workers={workers} job {i}: served result differs from the direct path"
            );
        }
        assert!(run.stats.reconciles());
        let billed = zoo.meter().snapshot().total_dollars();
        assert!(
            (billed - billed_direct).abs() < 1e-12,
            "workers={workers}: billed ${billed} != direct ${billed_direct}"
        );
        zoo.meter().reset();
    }
}

/// Rejected work retried through the model layer's retry machinery:
/// a rejection converts to `ModelError::transient`, which the stack's
/// retry policy recognises as retryable — the intended recovery loop.
#[test]
fn rejection_feeds_the_retry_loop() {
    const SEED: u64 = 7;
    let zoo = ModelZoo::standard(SEED);
    zoo.register_solver(Arc::new(QaSolver));
    let model = ModelStack::new(&zoo).with_default_retry().build_arc();
    let workload =
        HotpotWorkload::generate(HotpotConfig { n: 8, seed: SEED, ..Default::default() });
    let requests: Vec<ServeRequest<String>> = workload
        .items
        .iter()
        .map(|item| ServeRequest::builder("qa", item.prompt()).build().expect("valid"))
        .collect();
    let handler = |_c: &str, batch: &[Job<String>]| {
        batch.iter().map(|j| model.complete(&CompletionRequest::new(j.payload.clone()))).collect()
    };
    let run = serve_requests(
        &ServeConfig { workers: 2, queue_capacity: 4, seed: SEED, ..Default::default() },
        requests.clone(),
        handler,
    );
    // Re-submit exactly the rejected tail; it all completes now.
    let retry_requests: Vec<ServeRequest<String>> = run
        .results
        .iter()
        .zip(&requests)
        .filter(|(d, _)| d.is_rejected())
        .map(|(_, r)| r.clone())
        .collect();
    assert_eq!(retry_requests.len(), 4);
    let second = serve_requests(
        &ServeConfig { workers: 2, queue_capacity: 4, seed: SEED + 1, ..Default::default() },
        retry_requests,
        handler,
    );
    assert!(second.results.iter().all(|d| matches!(d, Disposition::Done(Ok(_)))));
}
