//! Cross-thread trace propagation, end to end.
//!
//! One `#[test]` on purpose: the obs recorder is process-global, and
//! parallel test threads would interleave spans into each other's
//! snapshots. The single test runs a fixed serving workload at 1, 2,
//! and 8 workers (resetting the recorder between runs — the seed is
//! fixed, so trace ids repeat) and asserts the reassembled flame tree
//! per request is *identical* across worker counts: same trace ids,
//! same span names, same parentage. It also checks that every span in a
//! request's tree carries the request's trace id and that the spans
//! genuinely crossed threads.

use std::collections::BTreeSet;

use llmdm::obs::{self, Report, TraceContext, WindowConfig};
use llmdm::serve::{serve_jobs, ServeConfig};

const SEED: u64 = 0xA11CE;
const JOBS: usize = 8;

/// Fixed workload: JOBS requests over two classes; the handler adopts
/// each job's trace, does a unit of "work" under an `app.handle` span,
/// and runs a downstream step on a freshly spawned thread stitched in
/// via [`TraceContext::capture`].
fn run_workload(workers: usize) -> Report {
    obs::enable();
    obs::reset();
    obs::set_window_config(WindowConfig::default());

    let config = ServeConfig { workers, queue_capacity: 64, max_batch: 4, seed: SEED, ..Default::default() };
    let jobs: Vec<(String, u64)> = (0..JOBS as u64)
        .map(|i| (if i % 2 == 0 { "alpha" } else { "beta" }.to_string(), i))
        .collect();

    let run = serve_jobs(&config, jobs, |_class, batch| {
        batch
            .iter()
            .map(|job| {
                let _g = job.trace.attach();
                let mut span = obs::span("app.handle");
                span.field("job", job.id);
                let ctx = TraceContext::capture();
                let payload = job.payload;
                let post = std::thread::spawn(move || {
                    let _g = ctx.attach();
                    let _s = obs::span("app.postprocess");
                    payload * 2
                });
                Ok::<u64, String>(post.join().expect("postprocess thread"))
            })
            .collect()
    });
    assert_eq!(run.stats.admitted, JOBS as u64);
    obs::snapshot()
}

#[test]
fn flame_tree_is_identical_across_worker_counts() {
    let runs: Vec<(usize, Report)> =
        [1usize, 2, 8].iter().map(|&w| (w, run_workload(w))).collect();

    // Same trace ids everywhere — they derive from (seed, submission
    // index), never from worker timing.
    let ids = runs[0].1.trace_ids();
    assert_eq!(ids.len(), JOBS, "one trace per request");
    for (w, report) in &runs {
        assert_eq!(&report.trace_ids(), &ids, "{w} workers");
    }

    for &id in &ids {
        // Identical canonical shape (names + parentage) at every worker
        // count.
        let shapes: BTreeSet<String> =
            runs.iter().map(|(_, r)| r.trace_canonical(id)).collect();
        assert_eq!(
            shapes.len(),
            1,
            "trace {id:#x} shape depends on worker count: {shapes:?}"
        );
        let shape = shapes.into_iter().next().unwrap();
        assert_eq!(shape, "serve.admit(app.handle(app.postprocess))");

        for (w, report) in &runs {
            // Single root per request, rooted at admission.
            let tree = report.trace_tree(id);
            assert_eq!(tree.len(), 1, "{w} workers");
            assert_eq!(tree[0].span.name, "serve.admit");

            // Every span in the tree carries the trace id, and the
            // parentage chain is admit → handle → postprocess.
            let spans: Vec<_> = report.spans.iter().filter(|s| s.trace == id).collect();
            assert_eq!(spans.len(), 3, "{w} workers");
            let admit = spans.iter().find(|s| s.name == "serve.admit").unwrap();
            let handle = spans.iter().find(|s| s.name == "app.handle").unwrap();
            let post = spans.iter().find(|s| s.name == "app.postprocess").unwrap();
            assert_eq!(handle.parent, Some(admit.id));
            assert_eq!(post.parent, Some(handle.id));

            // The postprocess span always runs on its own spawned thread;
            // under multiple workers the three spans span ≥ 2 threads
            // even if a worker reuses the admission thread's ordinal.
            assert_ne!(post.thread, handle.thread, "{w} workers");
        }
    }

    // Under 8 workers at least one request's spans cover 3 distinct
    // threads (admission thread, worker thread, spawned thread).
    let (_, wide) = runs.last().unwrap();
    let max_threads = ids
        .iter()
        .map(|&id| {
            wide.spans
                .iter()
                .filter(|s| s.trace == id)
                .map(|s| s.thread)
                .collect::<BTreeSet<u64>>()
                .len()
        })
        .max()
        .unwrap();
    assert_eq!(max_threads, 3, "spans from admission, worker, and spawned threads");

    // The render carries the trace id and the thread count.
    let text = wide.render_trace(ids[0]);
    assert!(text.starts_with(&format!("TRACE {:#018x}", ids[0])), "{text}");
    assert!(text.contains("span(s) across"), "{text}");
}
