//! Cross-crate integration: the three cost-optimization mechanisms
//! (cascade, decomposition/combination, semantic cache) agree on one
//! shared accounting substrate and reproduce the paper's Tables I–III
//! shapes together.

use llmdm::cascade::eval::run_table1;
use llmdm::nlq::pipeline::run_table2;
use llmdm::run_table3;

#[test]
fn table1_table2_table3_shapes_from_one_build() {
    let t1 = run_table1(42);
    let t2 = run_table2(42);
    let t3 = run_table3(42);

    // Table I shape: monotone tiers; cascade ≈ large at lower cost.
    assert!(t1.tiers[0].accuracy < t1.tiers[2].accuracy);
    assert!(t1.cascade.accuracy >= t1.tiers[2].accuracy - 0.1);
    assert!(t1.cascade.cost < t1.tiers[2].cost);

    // Table II shape: decomposition improves accuracy and cuts cost;
    // combination cuts cost further.
    assert!(t2.decomposition.accuracy >= t2.origin.accuracy);
    assert!(t2.decomposition.cost < t2.origin.cost);
    assert!(t2.combination.cost < t2.decomposition.cost);

    // Table III shape: caching cuts cost; sub-query caching helps accuracy
    // (averaged property is asserted in the crate tests; here we only
    // require the cost ordering, which holds per-seed).
    assert!(t3.cache_o.cost < t3.without.cost);
    assert!(t3.cache_a.cost < t3.without.cost);
}

#[test]
fn all_costs_flow_through_the_same_price_table() {
    use llmdm::model::{PriceTable, Pricing};
    let table = PriceTable::standard();
    let large = table.get("sim-large").expect("priced");
    let medium = table.get("sim-medium").expect("priced");
    // The paper's quoted 30x input-price gap between gpt-4 and gpt-3.5.
    assert!((large.input_per_1k / medium.input_per_1k - 30.0).abs() < 1e-9);
    // And a sanity anchor against hand arithmetic.
    assert!((Pricing::new(0.03, 0.06).cost(1000, 1000) - 0.09).abs() < 1e-12);
}

#[test]
fn experiments_are_reproducible_bit_for_bit() {
    assert_eq!(run_table1(7), run_table1(7));
    assert_eq!(run_table2(7), run_table2(7));
    assert_eq!(run_table3(7), run_table3(7));
}

#[test]
fn seeds_change_workloads_but_not_shapes() {
    for seed in [11u64, 23] {
        let t2 = run_table2(seed);
        assert!(
            t2.combination.cost < t2.origin.cost,
            "seed {seed}: combination {} vs origin {}",
            t2.combination.cost,
            t2.origin.cost
        );
    }
}
