//! The Table I experiment: each tier alone vs the cascade on the same
//! 40-query multi-hop QA workload.

use std::sync::Arc;

use llmdm_model::{CompletionRequest, LanguageModel, ModelTier, ModelZoo};

use crate::decision::DecisionModel;
use crate::hotpot::{HotpotConfig, HotpotWorkload};
use crate::router::CascadeRouter;
use crate::solver::QaSolver;

/// Accuracy/cost for one row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct TierReport {
    /// Row label (model name or "cascade").
    pub name: String,
    /// Accuracy on the workload.
    pub accuracy: f64,
    /// Total dollar cost.
    pub cost: f64,
}

/// The full Table I reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Report {
    /// One row per standalone tier, cheapest first.
    pub tiers: Vec<TierReport>,
    /// The cascade row.
    pub cascade: TierReport,
    /// Mean tier index used by the cascade (0 = cheapest).
    pub mean_tier_used: f64,
}

/// Run the Table I experiment.
///
/// * builds the 40-query workload (seeded),
/// * trains the decision model on a disjoint 160-query calibration set,
/// * evaluates each tier alone and the cascade, accuracy + cost.
pub fn run_table1(seed: u64) -> Table1Report {
    run_table1_with(seed, 0.6)
}

/// Table I with an explicit decision threshold (for the accuracy/cost
/// frontier sweep).
pub fn run_table1_with(seed: u64, threshold: f64) -> Table1Report {
    let zoo = ModelZoo::standard(seed);
    zoo.register_solver(Arc::new(QaSolver));
    let workload = HotpotWorkload::generate(HotpotConfig { n: 40, seed, ..Default::default() });

    // Train the decision model on a disjoint calibration set.
    let calibration_items =
        HotpotWorkload::generate(HotpotConfig { n: 160, seed: seed ^ 0xdecaf, ..Default::default() });
    let calibration: Vec<(String, String)> = calibration_items
        .items
        .iter()
        .map(|i| (i.prompt(), i.gold.clone()))
        .collect();
    let models = zoo.cascade_order();
    let data = CascadeRouter::collect_training_data(&models, &calibration);
    let mut dm = DecisionModel::new();
    dm.train(&data, 400, 0.8);

    // Standalone tiers.
    let mut tiers = Vec::new();
    for tier in ModelTier::ALL {
        let model = zoo.get(tier);
        zoo.meter().reset();
        let mut ok = 0;
        for item in &workload.items {
            if let Ok(c) = model.complete(&CompletionRequest::new(item.prompt())) {
                if c.text.trim() == item.gold {
                    ok += 1;
                }
            }
        }
        tiers.push(TierReport {
            name: model.name().to_string(),
            accuracy: ok as f64 / workload.items.len() as f64,
            cost: zoo.meter().snapshot().total_dollars(),
        });
    }

    // Cascade.
    let router = CascadeRouter::new(models, dm, threshold);
    zoo.meter().reset();
    let mut ok = 0;
    let mut tier_sum = 0usize;
    for item in &workload.items {
        if let Ok(a) = router.answer(&item.prompt()) {
            tier_sum += a.tier_used;
            if a.text.trim() == item.gold {
                ok += 1;
            }
        }
    }
    let cascade = TierReport {
        name: "cascade".to_string(),
        accuracy: ok as f64 / workload.items.len() as f64,
        cost: zoo.meter().snapshot().total_dollars(),
    };
    Table1Report {
        tiers,
        cascade,
        mean_tier_used: tier_sum as f64 / workload.items.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        let r = run_table1(4);
        // Accuracy strictly improves with tier (the paper: "performance of
        // LLMs improves as the cost increases").
        assert!(r.tiers[0].accuracy < r.tiers[1].accuracy);
        assert!(r.tiers[1].accuracy < r.tiers[2].accuracy + 1e-9);
        // Cost too.
        assert!(r.tiers[0].cost < r.tiers[2].cost);
        // Cascade ≈ large accuracy at much lower cost.
        assert!(
            r.cascade.accuracy >= r.tiers[2].accuracy - 0.08,
            "cascade {} vs large {}",
            r.cascade.accuracy,
            r.tiers[2].accuracy
        );
        assert!(
            r.cascade.cost < r.tiers[2].cost * 0.7,
            "cascade ${} vs large ${}",
            r.cascade.cost,
            r.tiers[2].cost
        );
    }

    #[test]
    fn accuracy_bands_match_paper() {
        // Averaged over seeds: small ≈ 27.5% band, large ≈ 92.5% band.
        let (mut small, mut large) = (0.0, 0.0);
        let seeds = [1u64, 2, 3, 4, 5];
        for &s in &seeds {
            let r = run_table1(s);
            small += r.tiers[0].accuracy;
            large += r.tiers[2].accuracy;
        }
        small /= seeds.len() as f64;
        large /= seeds.len() as f64;
        assert!((0.15..=0.40).contains(&small), "small tier accuracy {small}");
        assert!((0.85..=1.0).contains(&large), "large tier accuracy {large}");
    }

    #[test]
    fn threshold_sweep_trades_accuracy_for_cost() {
        let cheap = run_table1_with(6, 0.05);
        let picky = run_table1_with(6, 0.95);
        assert!(cheap.cascade.cost <= picky.cascade.cost);
        assert!(cheap.mean_tier_used <= picky.mean_tier_used);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run_table1(9), run_table1(9));
    }
}
