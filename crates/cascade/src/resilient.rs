//! [`ResilientCascade`] — the Figure-6 cascade hardened for a faulty
//! world.
//!
//! Where [`crate::router::CascadeRouter`] assumes every tier answers,
//! this router assumes tiers *fail*: each tier is wrapped in a
//! `ResilientClient` (retries + breaker + deadline), the overall call
//! carries a latency budget that is **sliced** across tiers
//! (`Deadline::slice`, so a cheap-tier retry storm cannot starve the
//! expensive tier), and tier failure triggers **fallback** to the next
//! tier instead of failing the query. If every remaining tier fails
//! after some tier already produced a below-threshold answer, that
//! answer is served as a *degraded* best-effort result — the §III-B
//! graceful-degradation behaviour the chaos pipeline exercises.
//!
//! Metrics: `resil.fallback_tier` counts tier fallbacks,
//! `resil.degraded_answers` counts best-effort serves; the
//! `cascade.resilient` span carries `tier_used`, `fallbacks`,
//! `degraded`.

use std::sync::Arc;

use llmdm_model::resilient::ResilientClient;
use llmdm_model::{CompletionRequest, LanguageModel};
use llmdm_resil::{Deadline, SimClock};

use crate::decision::{DecisionModel, Features};

/// What happened at one tier during a resilient walk.
#[derive(Debug, Clone, PartialEq)]
pub enum TierOutcome {
    /// The tier answered; `accepted` is the decision-model verdict.
    Answered {
        /// Decision-model score for the answer.
        score: f64,
        /// Whether the answer was accepted at this tier.
        accepted: bool,
        /// Dollar cost the router observed for this attempt.
        cost: f64,
    },
    /// The tier failed past its retry budget / breaker / deadline.
    Failed {
        /// Render of the terminal error.
        error: String,
    },
}

/// One tier's record in the resilient trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientTier {
    /// Model name of the tier.
    pub model: String,
    /// What happened there.
    pub outcome: TierOutcome,
}

/// A resilient cascade's answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientAnswer {
    /// The served answer text.
    pub text: String,
    /// Index of the tier that produced the served answer.
    pub tier_used: usize,
    /// Total observed dollar cost across successful tier attempts.
    pub total_cost: f64,
    /// Tiers that failed and were skipped.
    pub fallbacks: u32,
    /// True when the served answer is best-effort: some tier failed on
    /// the way here, or the answer never met the acceptance threshold
    /// but nothing better was available.
    pub degraded: bool,
    /// Per-tier trace.
    pub trace: Vec<ResilientTier>,
}

/// Every tier failed and no best-effort answer existed.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeExhausted {
    /// `(model, error)` for every failed tier.
    pub failures: Vec<(String, String)>,
}

impl std::fmt::Display for CascadeExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "all {} cascade tiers failed:", self.failures.len())?;
        for (model, err) in &self.failures {
            write!(f, " [{model}: {err}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for CascadeExhausted {}

/// The fault-tolerant cascade router.
pub struct ResilientCascade {
    tiers: Vec<Arc<ResilientClient>>,
    decision: DecisionModel,
    threshold: f64,
    clock: SimClock,
}

impl std::fmt::Debug for ResilientCascade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientCascade")
            .field("tiers", &self.tiers.iter().map(|t| t.name().to_string()).collect::<Vec<_>>())
            .field("threshold", &self.threshold)
            .finish()
    }
}

impl ResilientCascade {
    /// Build from pre-configured per-tier clients (cheapest first).
    pub fn new(
        tiers: Vec<Arc<ResilientClient>>,
        decision: DecisionModel,
        threshold: f64,
        clock: SimClock,
    ) -> Self {
        assert!(!tiers.is_empty(), "cascade needs at least one tier");
        ResilientCascade { tiers, decision, threshold, clock }
    }

    /// Build by wrapping each model in a default `ResilientClient` on
    /// the shared `clock`.
    pub fn from_models(
        models: Vec<Arc<dyn LanguageModel>>,
        decision: DecisionModel,
        threshold: f64,
        clock: SimClock,
    ) -> Self {
        let tiers = models
            .into_iter()
            .map(|m| Arc::new(ResilientClient::with_defaults(m, clock.clone())))
            .collect();
        Self::new(tiers, decision, threshold, clock)
    }

    /// The per-tier clients.
    pub fn tiers(&self) -> &[Arc<ResilientClient>] {
        &self.tiers
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The acceptance threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Answer under a total latency budget of `budget_ms` simulated
    /// milliseconds.
    ///
    /// Tier `i` of `n` receives a sub-deadline of
    /// `remaining / (n - i)` (`Deadline::slice`): unconsumed budget
    /// rolls forward, but no tier may starve its successors.
    pub fn answer_within(
        &self,
        prompt: &str,
        budget_ms: u64,
    ) -> Result<ResilientAnswer, CascadeExhausted> {
        self.answer_with_deadline(prompt, Deadline::after(&self.clock, budget_ms))
    }

    /// Answer with an explicit absolute deadline.
    pub fn answer_with_deadline(
        &self,
        prompt: &str,
        deadline: Deadline,
    ) -> Result<ResilientAnswer, CascadeExhausted> {
        let mut span = llmdm_obs::span("cascade.resilient");
        let req = CompletionRequest::new(prompt);
        let n = self.tiers.len();
        let mut trace = Vec::with_capacity(n);
        let mut total_cost = 0.0;
        let mut fallbacks = 0u32;
        // Best below-threshold answer so far: (text, tier, score, cost).
        let mut best: Option<(String, usize, f64)> = None;

        for (i, tier) in self.tiers.iter().enumerate() {
            let sub = deadline.slice(&self.clock, i, n);
            let (res, _stats) = tier.complete_within(&req, sub);
            match res {
                Ok(c) => {
                    total_cost += c.cost;
                    let score = self.decision.predict(&Features::extract(&c, i, n));
                    let last = i + 1 == n;
                    let accepted = last || score >= self.threshold;
                    trace.push(ResilientTier {
                        model: tier.name().to_string(),
                        outcome: TierOutcome::Answered { score, accepted, cost: c.cost },
                    });
                    if accepted {
                        let degraded = fallbacks > 0;
                        if degraded {
                            llmdm_obs::counter_add("resil.degraded_answers", 1.0);
                        }
                        if span.is_recording() {
                            span.field("tier_used", i);
                            span.field("fallbacks", fallbacks);
                            span.field("degraded", if degraded { "yes" } else { "no" });
                        }
                        return Ok(ResilientAnswer {
                            text: c.text,
                            tier_used: i,
                            total_cost,
                            fallbacks,
                            degraded,
                            trace,
                        });
                    }
                    // Keep the best-scoring rejected answer for
                    // best-effort serving if everything above fails.
                    if best.as_ref().map(|(_, _, s)| score > *s).unwrap_or(true) {
                        best = Some((c.text, i, score));
                    }
                }
                Err(e) => {
                    fallbacks += 1;
                    llmdm_obs::counter_add("resil.fallback_tier", 1.0);
                    trace.push(ResilientTier {
                        model: tier.name().to_string(),
                        outcome: TierOutcome::Failed { error: e.to_string() },
                    });
                }
            }
        }

        // No tier accepted. Serve the best rejected answer, degraded.
        if let Some((text, tier_used, _score)) = best {
            llmdm_obs::counter_add("resil.degraded_answers", 1.0);
            if span.is_recording() {
                span.field("tier_used", tier_used);
                span.field("fallbacks", fallbacks);
                span.field("degraded", "best_effort");
            }
            return Ok(ResilientAnswer {
                text,
                tier_used,
                total_cost,
                fallbacks,
                degraded: true,
                trace,
            });
        }

        Err(CascadeExhausted {
            failures: trace
                .into_iter()
                .filter_map(|t| match t.outcome {
                    TierOutcome::Failed { error } => Some((t.model, error)),
                    TierOutcome::Answered { .. } => None,
                })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_model::faulty::FaultyModel;
    use llmdm_model::ModelZoo;
    use llmdm_resil::{FaultPlan, TierPlan, Window};

    fn prompt(gold: &str, nonce: u64) -> String {
        llmdm_model::PromptEnvelope::builder("oracle")
            .header("gold", gold)
            .header("difficulty", 0.1)
            .header("nonce", nonce)
            .body("q")
            .build()
    }

    fn faulty_tiers(
        plan: FaultPlan,
        clock: &SimClock,
        seed: u64,
    ) -> (ModelZoo, Vec<Arc<dyn LanguageModel>>) {
        let zoo = ModelZoo::standard(seed);
        let plan = Arc::new(plan);
        let models: Vec<Arc<dyn LanguageModel>> = zoo
            .cascade_order()
            .into_iter()
            .map(|m| {
                Arc::new(FaultyModel::new(m, Arc::clone(&plan), clock.clone()))
                    as Arc<dyn LanguageModel>
            })
            .collect();
        (zoo, models)
    }

    #[test]
    fn quiet_plan_behaves_like_a_plain_cascade() {
        let clock = SimClock::new();
        let (_zoo, models) = faulty_tiers(FaultPlan::none(), &clock, 3);
        let casc = ResilientCascade::from_models(models, DecisionModel::new(), 0.0, clock);
        let a = casc.answer_within(&prompt("paris", 0), 60_000).unwrap();
        assert_eq!(a.tier_used, 0);
        assert_eq!(a.fallbacks, 0);
        assert!(!a.degraded);
        assert!(!a.text.is_empty());
    }

    #[test]
    fn tier_zero_outage_falls_back_and_degrades() {
        let clock = SimClock::new();
        let (zoo, _) = faulty_tiers(FaultPlan::none(), &clock, 3);
        let small_name = zoo.cascade_order()[0].name().to_string();
        let plan = FaultPlan::new(
            "t0-outage",
            1,
            vec![TierPlan::quiet(&small_name).outage(Window::new(0, u64::MAX))],
        );
        let (_zoo2, models) = faulty_tiers(plan, &clock, 3);
        let casc = ResilientCascade::from_models(models, DecisionModel::new(), 0.0, clock);
        let a = casc.answer_within(&prompt("paris", 0), 600_000).unwrap();
        assert_eq!(a.tier_used, 1, "must fall back to the next tier");
        assert_eq!(a.fallbacks, 1);
        assert!(a.degraded);
        assert!(matches!(a.trace[0].outcome, TierOutcome::Failed { .. }));
    }

    #[test]
    fn total_outage_exhausts_the_cascade() {
        let clock = SimClock::new();
        let (zoo, _) = faulty_tiers(FaultPlan::none(), &clock, 3);
        let tiers: Vec<TierPlan> = zoo
            .cascade_order()
            .iter()
            .map(|m| TierPlan::quiet(m.name()).outage(Window::new(0, u64::MAX)))
            .collect();
        let (_zoo2, models) = faulty_tiers(FaultPlan::new("all-out", 2, tiers), &clock, 3);
        let casc = ResilientCascade::from_models(models, DecisionModel::new(), 0.0, clock);
        let err = casc.answer_within(&prompt("paris", 0), 600_000).unwrap_err();
        assert_eq!(err.failures.len(), 3);
        assert!(err.to_string().contains("all 3 cascade tiers failed"));
    }

    #[test]
    fn rejected_answer_is_served_best_effort_when_upper_tiers_die() {
        let clock = SimClock::new();
        let (zoo, _) = faulty_tiers(FaultPlan::none(), &clock, 3);
        let order = zoo.cascade_order();
        // Tiers 1 and 2 are down; tier 0 answers but the threshold is
        // unreachable, so its rejected answer must be served degraded.
        let plan = FaultPlan::new(
            "top-out",
            4,
            vec![
                TierPlan::quiet(order[1].name()).outage(Window::new(0, u64::MAX)),
                TierPlan::quiet(order[2].name()).outage(Window::new(0, u64::MAX)),
            ],
        );
        let (_zoo2, models) = faulty_tiers(plan, &clock, 3);
        let casc = ResilientCascade::from_models(models, DecisionModel::new(), 1.1, clock);
        let a = casc.answer_within(&prompt("paris", 0), 600_000).unwrap();
        assert!(a.degraded);
        assert_eq!(a.tier_used, 0);
        assert_eq!(a.fallbacks, 2);
        assert!(!a.text.is_empty(), "a best-effort answer must still carry text");
    }

    #[test]
    fn budget_is_sliced_so_early_storms_leave_budget_for_later_tiers() {
        let clock = SimClock::new();
        let (zoo, _) = faulty_tiers(FaultPlan::none(), &clock, 3);
        let small_name = zoo.cascade_order()[0].name().to_string();
        // Tier 0 rate-limits every call with a huge retry-after hint,
        // so its retries would love to eat the entire budget.
        let plan = FaultPlan::new(
            "storm",
            5,
            vec![TierPlan::with_rates(
                &small_name,
                llmdm_resil::FaultRates { rate_limited: 1.0, ..Default::default() },
            )
            .retry_hint(50_000)],
        );
        let (_zoo2, models) = faulty_tiers(plan, &clock, 3);
        let casc =
            ResilientCascade::from_models(models, DecisionModel::new(), 0.0, clock.clone());
        let budget = 90_000u64;
        let a = casc.answer_within(&prompt("paris", 0), budget).unwrap();
        // Tier 0's slice is budget/3; its 50s retry hint cannot fit, so
        // it fails fast and tier 1 still has budget to answer.
        assert_eq!(a.tier_used, 1);
        assert!(a.degraded);
        assert!(
            clock.now_ms() <= budget,
            "walk must respect the total budget: {}ms",
            clock.now_ms()
        );
    }
}
