//! A HotpotQA-style multi-hop QA workload.
//!
//! The paper's Table I selects 40 queries from HotpotQA (multi-hop
//! questions whose answers require chaining facts). We generate the
//! synthetic equivalent: a knowledge base of typed facts, and questions
//! needing 1, 2, or 3 hops across them. The facts needed (plus
//! distractors) ride in the prompt context, RAG-style, so the solver can
//! genuinely derive the answer.

use llmdm_model::PromptEnvelope;
use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::seq::SliceRandom;
use llmdm_rt::rand::{Rng, SeedableRng};

const FIRST: &[&str] = &[
    "alice", "bruno", "chen", "dara", "emil", "farah", "goran", "hana", "ivan", "june",
    "kofi", "lena", "marco", "nadia", "omar", "petra",
];
const LAST: &[&str] = &[
    "smith", "costa", "wei", "okafor", "novak", "haddad", "kovac", "sato", "petrov", "lindqvist",
];
const CITIES: &[&str] = &[
    "springfield", "rivertown", "lakewood", "hillcrest", "ashford", "brookfield", "eastvale",
    "northgate", "oakdale", "pinehurst", "quarry bay", "redstone",
];
const COUNTRIES: &[&str] = &[
    "freedonia", "sylvania", "aquilonia", "borduria", "carpania", "danubia",
];
const BOOK_A: &[&str] =
    &["silent", "golden", "broken", "hidden", "burning", "frozen", "scarlet", "ivory"];
const BOOK_B: &[&str] =
    &["river", "mountain", "garden", "archive", "horizon", "lantern", "compass", "orchard"];

/// A knowledge-base fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// Subject entity.
    pub subject: String,
    /// Relation: `born_in`, `located_in`, or `wrote`.
    pub relation: String,
    /// Object entity.
    pub object: String,
}

impl Fact {
    fn new(s: &str, r: &str, o: &str) -> Fact {
        Fact { subject: s.to_string(), relation: r.to_string(), object: o.to_string() }
    }

    /// Render as a context line.
    pub fn line(&self) -> String {
        format!("FACT: {} | {} | {}", self.subject, self.relation, self.object)
    }
}

/// One QA item.
#[derive(Debug, Clone, PartialEq)]
pub struct QaItem {
    /// Item id.
    pub id: usize,
    /// The question text.
    pub question: String,
    /// Context facts (supporting + distractors), shuffled.
    pub context: Vec<Fact>,
    /// The gold answer.
    pub gold: String,
    /// Reasoning hops required (1–3).
    pub hops: usize,
}

impl QaItem {
    /// The item's intrinsic difficulty for the capability model
    /// (calibrated: see `llmdm-model::zoo` docs).
    pub fn difficulty(&self) -> f64 {
        match self.hops {
            1 => 0.05,
            2 => 0.15,
            _ => 0.25,
        }
    }

    /// Build the `### task: hotpot-qa` prompt for this item.
    pub fn prompt(&self) -> String {
        let mut body = String::from("Context:\n");
        for f in &self.context {
            body.push_str(&f.line());
            body.push('\n');
        }
        body.push_str(&format!("Question: {}\n", self.question));
        PromptEnvelope::builder("hotpot-qa").header("examples", 0).body(body).build()
    }
}

/// Workload generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct HotpotConfig {
    /// Number of questions.
    pub n: usize,
    /// Distractor facts per item.
    pub distractors: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for HotpotConfig {
    fn default() -> Self {
        HotpotConfig { n: 40, distractors: 6, seed: 0 }
    }
}

/// The generated workload.
#[derive(Debug, Clone)]
pub struct HotpotWorkload {
    /// The QA items.
    pub items: Vec<QaItem>,
}

impl HotpotWorkload {
    /// Generate a workload: 40% 1-hop, 40% 2-hop, 20% 3-hop.
    pub fn generate(config: HotpotConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        // Build the world: people with birth cities; cities in countries;
        // books with authors.
        let people: Vec<String> = FIRST
            .iter()
            .flat_map(|f| LAST.iter().map(move |l| format!("{f} {l}")))
            .take(60)
            .collect();
        let city_country: Vec<(String, String)> = CITIES
            .iter()
            .enumerate()
            .map(|(i, c)| (c.to_string(), COUNTRIES[i % COUNTRIES.len()].to_string()))
            .collect();
        let books: Vec<String> = BOOK_A
            .iter()
            .flat_map(|a| BOOK_B.iter().map(move |b| format!("the {a} {b}")))
            .take(40)
            .collect();

        let mut born: Vec<(String, String)> = Vec::new(); // person -> city
        for p in &people {
            let (city, _) = &city_country[rng.gen_range(0..city_country.len())];
            born.push((p.clone(), city.clone()));
        }
        let mut wrote: Vec<(String, String)> = Vec::new(); // person -> book
        for (i, b) in books.iter().enumerate() {
            wrote.push((people[i % people.len()].clone(), b.clone()));
        }

        let country_of = |city: &str| -> String {
            city_country
                .iter()
                .find(|(c, _)| c == city)
                .map(|(_, k)| k.clone())
                .expect("city exists")
        };

        let mut items = Vec::with_capacity(config.n);
        for id in 0..config.n {
            let hops = match id % 5 {
                0 | 1 => 1,
                2 | 3 => 2,
                _ => 3,
            };
            let (question, gold, mut support) = match hops {
                1 => {
                    if rng.gen_bool(0.5) {
                        let (p, c) = born[rng.gen_range(0..born.len())].clone();
                        (
                            format!("Where was {p} born?"),
                            c.clone(),
                            vec![Fact::new(&p, "born_in", &c)],
                        )
                    } else {
                        let (p, b) = wrote[rng.gen_range(0..wrote.len())].clone();
                        (format!("Who wrote {b}?"), p.clone(), vec![Fact::new(&p, "wrote", &b)])
                    }
                }
                2 => {
                    let (p, c) = born[rng.gen_range(0..born.len())].clone();
                    let k = country_of(&c);
                    (
                        format!("In which country was {p} born?"),
                        k.clone(),
                        vec![Fact::new(&p, "born_in", &c), Fact::new(&c, "located_in", &k)],
                    )
                }
                _ => {
                    let (p, b) = wrote[rng.gen_range(0..wrote.len())].clone();
                    let c = born
                        .iter()
                        .find(|(q, _)| *q == p)
                        .map(|(_, c)| c.clone())
                        .expect("author has a birthplace");
                    let k = country_of(&c);
                    (
                        format!("In which country was the author of {b} born?"),
                        k.clone(),
                        vec![
                            Fact::new(&p, "wrote", &b),
                            Fact::new(&p, "born_in", &c),
                            Fact::new(&c, "located_in", &k),
                        ],
                    )
                }
            };
            // Distractors: random unrelated facts (other people/cities) so
            // wrong-answer alternatives exist in context.
            for _ in 0..config.distractors {
                match rng.gen_range(0..3) {
                    0 => {
                        let (p, c) = born[rng.gen_range(0..born.len())].clone();
                        support.push(Fact::new(&p, "born_in", &c));
                    }
                    1 => {
                        let (c, k) = city_country[rng.gen_range(0..city_country.len())].clone();
                        support.push(Fact::new(&c, "located_in", &k));
                    }
                    _ => {
                        let (p, b) = wrote[rng.gen_range(0..wrote.len())].clone();
                        support.push(Fact::new(&p, "wrote", &b));
                    }
                }
            }
            support.dedup();
            support.shuffle(&mut rng);
            items.push(QaItem { id, question, context: support, gold, hops });
        }
        HotpotWorkload { items }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_mix() {
        let w = HotpotWorkload::generate(HotpotConfig { n: 40, ..Default::default() });
        assert_eq!(w.items.len(), 40);
        let ones = w.items.iter().filter(|i| i.hops == 1).count();
        let twos = w.items.iter().filter(|i| i.hops == 2).count();
        let threes = w.items.iter().filter(|i| i.hops == 3).count();
        assert_eq!(ones, 16);
        assert_eq!(twos, 16);
        assert_eq!(threes, 8);
    }

    #[test]
    fn deterministic() {
        let a = HotpotWorkload::generate(HotpotConfig::default());
        let b = HotpotWorkload::generate(HotpotConfig::default());
        assert_eq!(a.items, b.items);
    }

    #[test]
    fn context_contains_support_chain() {
        let w = HotpotWorkload::generate(HotpotConfig { n: 20, seed: 3, ..Default::default() });
        for item in &w.items {
            match item.hops {
                1 => assert!(item
                    .context
                    .iter()
                    .any(|f| f.object == item.gold || f.subject == item.gold)),
                2 | _ => assert!(item
                    .context
                    .iter()
                    .any(|f| f.relation == "located_in" && f.object == item.gold)),
            }
        }
    }

    #[test]
    fn prompt_is_parseable_envelope() {
        let w = HotpotWorkload::generate(HotpotConfig { n: 5, ..Default::default() });
        let env = PromptEnvelope::parse(&w.items[0].prompt()).unwrap();
        assert_eq!(env.task, "hotpot-qa");
        assert!(env.body.contains("Question:"));
        assert!(env.body.contains("FACT:"));
    }

    #[test]
    fn difficulty_increases_with_hops() {
        let w = HotpotWorkload::generate(HotpotConfig { n: 10, ..Default::default() });
        let d1 = w.items.iter().find(|i| i.hops == 1).unwrap().difficulty();
        let d3 = w.items.iter().find(|i| i.hops == 3).unwrap().difficulty();
        assert!(d3 > d1);
    }
}
