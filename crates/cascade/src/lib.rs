//! # llmdm-cascade — the LLM cascade (§III-B1, Fig. 6, Table I)
//!
//! "We can send a query to a sequence of LLMs. These models vary in size
//! and cost, spanning from small to large. A decision model can be trained
//! to determine whether a more expensive and larger LLM is needed."
//!
//! This crate implements exactly that:
//!
//! * [`hotpot`] — a HotpotQA-style multi-hop question-answering workload:
//!   a synthetic knowledge base of `born_in` / `located_in` / `wrote`
//!   facts, questions requiring 1–3 hops of reasoning over facts supplied
//!   in the prompt context, and gold answers;
//! * [`solver::QaSolver`] — the prompt solver that genuinely answers those
//!   questions by graph search over the context facts (the simulated
//!   models' error behaviour then comes from their calibrated capability
//!   curves);
//! * [`decision`] — a trainable logistic-regression decision model over
//!   answer features (model confidence, output shape, prompt size, tier)
//!   predicting whether an answer can be *accepted* or must escalate;
//! * [`router::CascadeRouter`] — the Fig. 6 procedure: try tiers cheapest
//!   first, accept when the decision model is confident, escalate
//!   otherwise; full per-query traces for the Fig. 6 reproduction;
//! * [`eval`] — the Table I experiment: each tier alone vs the cascade,
//!   accuracy and dollar cost on the same 40-query workload.

#![warn(missing_docs)]

pub mod decision;
pub mod eval;
pub mod hotpot;
pub mod resilient;
pub mod router;
pub mod solver;

pub use decision::{DecisionModel, Features};
pub use eval::{run_table1, Table1Report, TierReport};
pub use hotpot::{HotpotConfig, HotpotWorkload, QaItem};
pub use resilient::{
    CascadeExhausted, ResilientAnswer, ResilientCascade, ResilientTier, TierOutcome,
};
pub use router::{CascadeAnswer, CascadeRouter, TierAttempt};
pub use solver::QaSolver;
