//! The multi-hop QA solver (`### task: hotpot-qa`).
//!
//! Performs genuine graph search over the facts supplied in the prompt
//! context — the "reasoning" whose reliability the simulated capability
//! curves then modulate per tier.

use llmdm_model::{ModelError, PromptEnvelope, PromptSolver, SolvedTask};

/// The QA prompt solver.
#[derive(Debug, Default)]
pub struct QaSolver;

#[derive(Debug)]
struct ParsedContext {
    facts: Vec<(String, String, String)>,
}

impl ParsedContext {
    fn parse(body: &str) -> ParsedContext {
        let facts = body
            .lines()
            .filter_map(|l| l.strip_prefix("FACT: "))
            .filter_map(|l| {
                let mut parts = l.split(" | ");
                Some((
                    parts.next()?.trim().to_string(),
                    parts.next()?.trim().to_string(),
                    parts.next()?.trim().to_string(),
                ))
            })
            .collect();
        ParsedContext { facts }
    }

    fn object_of(&self, subject: &str, relation: &str) -> Option<&str> {
        self.facts
            .iter()
            .find(|(s, r, _)| s == subject && r == relation)
            .map(|(_, _, o)| o.as_str())
    }

    fn subject_of(&self, relation: &str, object: &str) -> Option<&str> {
        self.facts
            .iter()
            .find(|(_, r, o)| r == relation && o == object)
            .map(|(s, _, _)| s.as_str())
    }

    /// All distinct objects of a relation (used for wrong-answer pools).
    fn objects(&self, relation: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .facts
            .iter()
            .filter(|(_, r, _)| r == relation)
            .map(|(_, _, o)| o.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    fn subjects(&self, relation: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .facts
            .iter()
            .filter(|(_, r, _)| r == relation)
            .map(|(s, _, _)| s.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

impl QaSolver {
    /// Answer a question against a context; returns (answer, hops,
    /// wrong-answer pool).
    fn answer(
        question: &str,
        ctx: &ParsedContext,
    ) -> Option<(String, usize, Vec<String>)> {
        let q = question.trim().trim_end_matches('?').to_lowercase();
        if let Some(book) = q.strip_prefix("in which country was the author of ") {
            let book = book.trim_end_matches(" born").trim();
            let author = ctx.subject_of("wrote", book)?;
            let city = ctx.object_of(author, "born_in")?;
            let country = ctx.object_of(city, "located_in")?;
            return Some((country.to_string(), 3, ctx.objects("located_in")));
        }
        if let Some(person) = q.strip_prefix("in which country was ") {
            let person = person.trim_end_matches(" born").trim();
            let city = ctx.object_of(person, "born_in")?;
            let country = ctx.object_of(city, "located_in")?;
            return Some((country.to_string(), 2, ctx.objects("located_in")));
        }
        if let Some(person) = q.strip_prefix("where was ") {
            let person = person.trim_end_matches(" born").trim();
            let city = ctx.object_of(person, "born_in")?;
            return Some((city.to_string(), 1, ctx.objects("born_in")));
        }
        if let Some(book) = q.strip_prefix("who wrote ") {
            let author = ctx.subject_of("wrote", book.trim())?;
            return Some((author.to_string(), 1, ctx.subjects("wrote")));
        }
        None
    }
}

impl PromptSolver for QaSolver {
    fn task_id(&self) -> &str {
        "hotpot-qa"
    }

    fn solve(&self, env: &PromptEnvelope) -> Result<SolvedTask, ModelError> {
        let ctx = ParsedContext::parse(&env.body);
        let question = env
            .body
            .lines()
            .find_map(|l| l.strip_prefix("Question: "))
            .ok_or_else(|| ModelError::MalformedPayload {
                task: "hotpot-qa".into(),
                reason: "missing `Question:` line".into(),
            })?;
        let (answer, hops, pool) =
            QaSolver::answer(question, &ctx).ok_or_else(|| ModelError::MalformedPayload {
                task: "hotpot-qa".into(),
                reason: format!("cannot answer {question:?} from context"),
            })?;
        let difficulty = match hops {
            1 => 0.05,
            2 => 0.15,
            _ => 0.25,
        };
        let alternatives: Vec<String> = pool.into_iter().filter(|a| *a != answer).collect();
        Ok(SolvedTask::new(answer, difficulty).with_alternatives(alternatives))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotpot::{HotpotConfig, HotpotWorkload};

    #[test]
    fn solves_every_generated_item_correctly() {
        let w = HotpotWorkload::generate(HotpotConfig { n: 40, seed: 9, ..Default::default() });
        for item in &w.items {
            let env = PromptEnvelope::parse(&item.prompt()).unwrap();
            let solved = QaSolver.solve(&env).unwrap();
            assert_eq!(solved.answer, item.gold, "q: {}", item.question);
            assert!((solved.difficulty - item.difficulty()).abs() < 1e-9);
        }
    }

    #[test]
    fn alternatives_exclude_gold() {
        let w = HotpotWorkload::generate(HotpotConfig { n: 20, seed: 2, ..Default::default() });
        for item in &w.items {
            let env = PromptEnvelope::parse(&item.prompt()).unwrap();
            let solved = QaSolver.solve(&env).unwrap();
            assert!(solved.alternatives.iter().all(|a| *a != item.gold));
        }
    }

    #[test]
    fn unanswerable_question_errors() {
        let prompt = PromptEnvelope::builder("hotpot-qa")
            .body("Context:\nFACT: a | born_in | b\nQuestion: Where was nobody born?\n")
            .build();
        let env = PromptEnvelope::parse(&prompt).unwrap();
        assert!(QaSolver.solve(&env).is_err());
    }

    #[test]
    fn missing_question_errors() {
        let prompt =
            PromptEnvelope::builder("hotpot-qa").body("Context:\nFACT: a | born_in | b\n").build();
        let env = PromptEnvelope::parse(&prompt).unwrap();
        assert!(QaSolver.solve(&env).is_err());
    }

    #[test]
    fn three_hop_chain() {
        let body = "Context:\n\
                    FACT: marco costa | wrote | the silent river\n\
                    FACT: marco costa | born_in | lakewood\n\
                    FACT: lakewood | located_in | sylvania\n\
                    FACT: ashford | located_in | borduria\n\
                    Question: In which country was the author of the silent river born?\n";
        let prompt = PromptEnvelope::builder("hotpot-qa").body(body).build();
        let env = PromptEnvelope::parse(&prompt).unwrap();
        let solved = QaSolver.solve(&env).unwrap();
        assert_eq!(solved.answer, "sylvania");
        assert_eq!(solved.alternatives, vec!["borduria".to_string()]);
    }
}
