//! The trainable decision model of the cascade (Fig. 6: "a decision model
//! is required to determine whether the LLM results are acceptable").
//!
//! A logistic regression over features observable *without* the gold
//! answer: the model's self-reported confidence, the answer's shape, the
//! prompt size, and which tier produced it. Trained by gradient descent on
//! a labelled calibration workload.

use llmdm_model::Completion;

/// Feature vector for one (query, completion) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Features {
    /// The model's self-reported confidence.
    pub confidence: f64,
    /// Output length in tokens, squashed to `[0, 1]`.
    pub answer_len: f64,
    /// Prompt length in tokens, squashed to `[0, 1]`.
    pub prompt_len: f64,
    /// Tier index scaled to `[0, 1]` (0 = cheapest).
    pub tier: f64,
}

impl Features {
    /// Extract features from a completion produced by tier `tier_idx` of
    /// `n_tiers`.
    pub fn extract(completion: &Completion, tier_idx: usize, n_tiers: usize) -> Features {
        Features {
            confidence: completion.confidence,
            answer_len: (completion.usage.output_tokens as f64 / 64.0).min(1.0),
            prompt_len: (completion.usage.input_tokens as f64 / 1024.0).min(1.0),
            tier: if n_tiers <= 1 { 0.0 } else { tier_idx as f64 / (n_tiers - 1) as f64 },
        }
    }

    fn as_array(&self) -> [f64; 5] {
        // Bias term last.
        [self.confidence, self.answer_len, self.prompt_len, self.tier, 1.0]
    }
}

/// Logistic-regression accept/escalate model.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionModel {
    weights: [f64; 5],
}

impl Default for DecisionModel {
    fn default() -> Self {
        // Sensible prior: trust confidence.
        DecisionModel { weights: [4.0, 0.0, 0.0, 0.0, -2.0] }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl DecisionModel {
    /// Untrained model with the confidence-trusting prior.
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicted probability that the answer is correct.
    pub fn predict(&self, f: &Features) -> f64 {
        let x = f.as_array();
        sigmoid(self.weights.iter().zip(x).map(|(w, v)| w * v).sum())
    }

    /// Train on labelled `(features, correct)` pairs with plain gradient
    /// descent on the logistic loss.
    pub fn train(&mut self, data: &[(Features, bool)], epochs: usize, lr: f64) {
        if data.is_empty() {
            return;
        }
        for _ in 0..epochs {
            let mut grad = [0f64; 5];
            for (f, y) in data {
                let x = f.as_array();
                let p = self.predict(f);
                let err = p - if *y { 1.0 } else { 0.0 };
                for (g, v) in grad.iter_mut().zip(x) {
                    *g += err * v;
                }
            }
            for (w, g) in self.weights.iter_mut().zip(grad) {
                *w -= lr * g / data.len() as f64;
            }
        }
    }

    /// Classification accuracy at a 0.5 threshold (for calibration tests).
    pub fn accuracy(&self, data: &[(Features, bool)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let ok = data
            .iter()
            .filter(|(f, y)| (self.predict(f) >= 0.5) == *y)
            .count();
        ok as f64 / data.len() as f64
    }

    /// The learned weights (confidence, answer_len, prompt_len, tier, bias).
    pub fn weights(&self) -> [f64; 5] {
        self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(conf: f64) -> Features {
        Features { confidence: conf, answer_len: 0.2, prompt_len: 0.3, tier: 0.0 }
    }

    /// Synthetic separable data: high confidence ⇒ correct.
    fn labelled() -> Vec<(Features, bool)> {
        let mut data = Vec::new();
        for i in 0..100 {
            let conf = i as f64 / 100.0;
            data.push((feat(conf), conf > 0.45));
        }
        data
    }

    #[test]
    fn training_learns_confidence_signal() {
        let mut m = DecisionModel { weights: [0.0; 5] };
        let data = labelled();
        m.train(&data, 2000, 0.5);
        assert!(m.accuracy(&data) > 0.9, "acc={}", m.accuracy(&data));
        assert!(m.weights()[0] > 0.0, "confidence weight should be positive");
    }

    #[test]
    fn prior_trusts_confidence() {
        let m = DecisionModel::new();
        assert!(m.predict(&feat(0.9)) > m.predict(&feat(0.1)));
    }

    #[test]
    fn predict_in_unit_interval() {
        let m = DecisionModel::new();
        for c in [0.0, 0.5, 1.0] {
            let p = m.predict(&feat(c));
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn empty_training_is_noop() {
        let mut m = DecisionModel::new();
        let before = m.weights();
        m.train(&[], 10, 0.1);
        assert_eq!(before, m.weights());
    }

    #[test]
    fn feature_extraction_bounds() {
        use llmdm_model::TokenUsage;
        let c = Completion {
            text: "x".into(),
            model: "m".into(),
            usage: TokenUsage { input_tokens: 5000, output_tokens: 500 },
            cost: 0.0,
            latency: std::time::Duration::ZERO,
            confidence: 0.7,
        };
        let f = Features::extract(&c, 1, 3);
        assert_eq!(f.answer_len, 1.0);
        assert_eq!(f.prompt_len, 1.0);
        assert!((f.tier - 0.5).abs() < 1e-12);
    }
}
