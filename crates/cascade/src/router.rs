//! The cascade router — the procedure of the paper's Figure 6.
//!
//! A query visits the model sequence cheapest-first. After each tier's
//! answer, the decision model scores acceptability; below-threshold
//! answers escalate. The final tier's answer is always accepted. Full
//! per-tier traces are kept for the Fig. 6 reproduction binary.

use std::sync::Arc;

use llmdm_model::{CompletionRequest, LanguageModel};

use crate::decision::{DecisionModel, Features};

/// One tier's attempt at a query.
#[derive(Debug, Clone, PartialEq)]
pub struct TierAttempt {
    /// Model name.
    pub model: String,
    /// The answer it produced.
    pub answer: String,
    /// The decision model's acceptance score.
    pub decision_score: f64,
    /// Whether the answer was accepted (always true for the last tier).
    pub accepted: bool,
    /// Dollar cost of the attempt.
    pub cost: f64,
}

/// The cascade's final answer with its escalation trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeAnswer {
    /// The accepted answer text.
    pub text: String,
    /// Index of the tier that answered.
    pub tier_used: usize,
    /// Total dollar cost across attempted tiers.
    pub total_cost: f64,
    /// Total simulated latency across attempted tiers (escalation is
    /// sequential, so latencies add — the §II-E latency cost of chasing
    /// accuracy).
    pub total_latency: std::time::Duration,
    /// Per-tier trace.
    pub trace: Vec<TierAttempt>,
}

/// A cascade over an ordered model sequence.
///
/// The router is generic at construction but stores trait objects, so
/// any [`LanguageModel`] — a bare `SimLlm`, a fault-injecting
/// `FaultyModel`, or a retry-wrapped `ResilientClient` — can fill a
/// tier.
pub struct CascadeRouter {
    models: Vec<Arc<dyn LanguageModel>>,
    decision: DecisionModel,
    threshold: f64,
}

impl std::fmt::Debug for CascadeRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CascadeRouter")
            .field("tiers", &self.models.iter().map(|m| m.name().to_string()).collect::<Vec<_>>())
            .field("threshold", &self.threshold)
            .finish()
    }
}

impl CascadeRouter {
    /// Build a router over `models` (cheapest first) with an acceptance
    /// `threshold` on the decision model's score. Accepts any concrete
    /// model type and coerces to trait objects internally.
    pub fn new<M: LanguageModel + 'static>(
        models: Vec<Arc<M>>,
        decision: DecisionModel,
        threshold: f64,
    ) -> Self {
        Self::new_dyn(
            models.into_iter().map(|m| m as Arc<dyn LanguageModel>).collect(),
            decision,
            threshold,
        )
    }

    /// Build a router over already-erased trait objects (used when
    /// tiers mix concrete types, e.g. the resilient cascade).
    pub fn new_dyn(
        models: Vec<Arc<dyn LanguageModel>>,
        decision: DecisionModel,
        threshold: f64,
    ) -> Self {
        assert!(!models.is_empty(), "cascade needs at least one model");
        CascadeRouter { models, decision, threshold }
    }

    /// The tier models, cheapest first.
    pub fn models(&self) -> &[Arc<dyn LanguageModel>] {
        &self.models
    }

    /// The acceptance threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Change the acceptance threshold (the accuracy/cost dial swept by
    /// `repro_table1 --sweep`).
    pub fn set_threshold(&mut self, t: f64) {
        self.threshold = t;
    }

    /// The decision model.
    pub fn decision(&self) -> &DecisionModel {
        &self.decision
    }

    /// Answer a prompt through the cascade.
    ///
    /// Observability: each call opens a `cascade.answer` span (fields
    /// `tier_used`, `tiers_tried`, `total_cost_usd`) with one
    /// `cascade.tier` child per attempted tier (fields `model`,
    /// `decision_score`, `accepted`), and bumps `cascade.queries`,
    /// `cascade.escalations` and `cascade.accept.<model>` counters plus
    /// the `cascade.tier_used` histogram.
    pub fn answer(&self, prompt: &str) -> Result<CascadeAnswer, llmdm_model::ModelError> {
        let mut span = llmdm_obs::span("cascade.answer");
        llmdm_obs::counter_add("cascade.queries", 1.0);
        let n = self.models.len();
        let mut trace = Vec::with_capacity(n);
        let mut total_cost = 0.0;
        let mut total_latency = std::time::Duration::ZERO;
        for (i, model) in self.models.iter().enumerate() {
            let mut tier_span = llmdm_obs::span("cascade.tier");
            let completion = model.complete(&CompletionRequest::new(prompt))?;
            total_cost += completion.cost;
            total_latency += completion.latency;
            let score = self.decision.predict(&Features::extract(&completion, i, n));
            let last = i + 1 == n;
            let accepted = last || score >= self.threshold;
            if tier_span.is_recording() {
                tier_span.field("model", model.name());
                tier_span.field("tier", i);
                tier_span.field("decision_score", score);
                tier_span.field("accepted", accepted);
            }
            drop(tier_span);
            trace.push(TierAttempt {
                model: model.name().to_string(),
                answer: completion.text.clone(),
                decision_score: score,
                accepted,
                cost: completion.cost,
            });
            if accepted {
                if span.is_recording() {
                    span.field("tier_used", i);
                    span.field("tiers_tried", i + 1);
                    span.field("total_cost_usd", total_cost);
                    llmdm_obs::counter_add("cascade.escalations", i as f64);
                    llmdm_obs::counter_add(&format!("cascade.accept.{}", model.name()), 1.0);
                    llmdm_obs::observe("cascade.tier_used", i as f64);
                }
                return Ok(CascadeAnswer {
                    text: completion.text,
                    tier_used: i,
                    total_cost,
                    total_latency,
                    trace,
                });
            }
        }
        unreachable!("last tier always accepts")
    }

    /// Collect labelled decision-model training data by running every tier
    /// on a calibration set with known gold answers.
    pub fn collect_training_data<M: LanguageModel>(
        models: &[Arc<M>],
        calibration: &[(String, String)], // (prompt, gold)
    ) -> Vec<(Features, bool)> {
        let n = models.len();
        let mut data = Vec::new();
        for (prompt, gold) in calibration {
            for (i, model) in models.iter().enumerate() {
                if let Ok(c) = model.complete(&CompletionRequest::new(prompt.clone())) {
                    let correct = c.text.trim() == gold.trim();
                    data.push((Features::extract(&c, i, n), correct));
                }
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotpot::{HotpotConfig, HotpotWorkload};
    use crate::solver::QaSolver;
    use llmdm_model::ModelZoo;

    fn setup(seed: u64) -> (ModelZoo, HotpotWorkload) {
        let zoo = ModelZoo::standard(seed);
        zoo.register_solver(Arc::new(QaSolver));
        let w = HotpotWorkload::generate(HotpotConfig { n: 40, seed, ..Default::default() });
        (zoo, w)
    }

    fn trained_router(zoo: &ModelZoo, seed: u64) -> CascadeRouter {
        let train =
            HotpotWorkload::generate(HotpotConfig { n: 160, seed: seed + 1000, ..Default::default() });
        let calibration: Vec<(String, String)> =
            train.items.iter().map(|i| (i.prompt(), i.gold.clone())).collect();
        let models = zoo.cascade_order();
        let data = CascadeRouter::collect_training_data(&models, &calibration);
        zoo.meter().reset(); // calibration is free in the experiment
        let mut dm = DecisionModel::new();
        dm.train(&data, 400, 0.8);
        CascadeRouter::new(models, dm, 0.6)
    }

    #[test]
    fn cascade_matches_large_accuracy_at_lower_cost() {
        let (zoo, w) = setup(3);
        let router = trained_router(&zoo, 3);

        // Large tier alone.
        zoo.meter().reset();
        let large = zoo.large();
        let mut large_ok = 0;
        for item in &w.items {
            let c = large.complete(&CompletionRequest::new(item.prompt())).unwrap();
            if c.text.trim() == item.gold {
                large_ok += 1;
            }
        }
        let large_cost = zoo.meter().snapshot().total_dollars();

        // Cascade.
        zoo.meter().reset();
        let mut cascade_ok = 0;
        let mut cascade_cost = 0.0;
        for item in &w.items {
            let a = router.answer(&item.prompt()).unwrap();
            cascade_cost += a.total_cost;
            if a.text.trim() == item.gold {
                cascade_ok += 1;
            }
        }

        let large_acc = large_ok as f64 / w.items.len() as f64;
        let casc_acc = cascade_ok as f64 / w.items.len() as f64;
        assert!(
            casc_acc >= large_acc - 0.08,
            "cascade {casc_acc} vs large {large_acc}"
        );
        assert!(
            cascade_cost < large_cost * 0.7,
            "cascade ${cascade_cost:.4} vs large ${large_cost:.4}"
        );
    }

    #[test]
    fn trace_records_escalations() {
        let (zoo, w) = setup(5);
        let router = trained_router(&zoo, 5);
        let mut saw_escalation = false;
        let mut saw_cheap_accept = false;
        for item in &w.items {
            let a = router.answer(&item.prompt()).unwrap();
            assert_eq!(a.trace.len(), a.tier_used + 1);
            assert!(a.trace.last().unwrap().accepted);
            if a.tier_used > 0 {
                saw_escalation = true;
                assert!(!a.trace[0].accepted);
            }
            if a.tier_used < 2 {
                saw_cheap_accept = true;
            }
        }
        assert!(saw_escalation, "no query ever escalated");
        assert!(saw_cheap_accept, "no query accepted below the top tier");
    }

    #[test]
    fn escalation_accumulates_latency() {
        let (zoo, w) = setup(9);
        let models = zoo.cascade_order();
        // Force a full walk: everything escalates to the top tier.
        let all_tiers = CascadeRouter::new(models.clone(), DecisionModel::new(), 1.1);
        let first_only = CascadeRouter::new(models, DecisionModel::new(), 0.0);
        let prompt = w.items[0].prompt();
        let slow = all_tiers.answer(&prompt).unwrap();
        let fast = first_only.answer(&prompt).unwrap();
        assert!(slow.total_latency > fast.total_latency);
        assert!(slow.total_latency > std::time::Duration::ZERO);
    }

    #[test]
    fn zero_threshold_always_uses_first_tier() {
        let (zoo, w) = setup(7);
        let models = zoo.cascade_order();
        let router = CascadeRouter::new(models, DecisionModel::new(), 0.0);
        let a = router.answer(&w.items[0].prompt()).unwrap();
        assert_eq!(a.tier_used, 0);
    }

    #[test]
    fn max_threshold_always_escalates_to_top() {
        let (zoo, w) = setup(7);
        let models = zoo.cascade_order();
        let router = CascadeRouter::new(models, DecisionModel::new(), 1.1);
        let a = router.answer(&w.items[0].prompt()).unwrap();
        assert_eq!(a.tier_used, 2);
        assert_eq!(a.trace.len(), 3);
    }
}
