//! Satellite check: the `UsageMeter` (dollar source of truth) and the
//! `llmdm-obs` counters it mirrors into must agree after a cascade run.
//!
//! This is a single-test integration binary on purpose: it enables the
//! process-global recorder, which would cross-contaminate any other
//! `#[test]` running in the same process.

use std::sync::Arc;

use llmdm_cascade::{CascadeRouter, DecisionModel, HotpotConfig, HotpotWorkload, QaSolver};
use llmdm_model::ModelZoo;

#[test]
fn meter_and_obs_counters_reconcile_after_cascade_run() {
    llmdm_obs::enable();
    llmdm_obs::reset();

    let zoo = ModelZoo::standard(11);
    zoo.register_solver(Arc::new(QaSolver));
    let workload = HotpotWorkload::generate(HotpotConfig { n: 30, seed: 11, ..Default::default() });
    let router = CascadeRouter::new(zoo.cascade_order(), DecisionModel::new(), 0.55);

    // The meter may have billed calls before this point (zoo setup); both
    // sides start from zero together.
    zoo.meter().reset();

    let mut answered = 0u64;
    for item in &workload.items {
        router.answer(&item.prompt()).expect("cascade answers");
        answered += 1;
    }
    assert_eq!(answered, 30);

    let meter = zoo.meter().snapshot();
    assert!(meter.total_calls() >= answered, "each query costs >= 1 model call");

    // Totals agree: calls exactly, tokens exactly, dollars to float noise.
    assert_eq!(llmdm_obs::counter_value("model.calls"), meter.total_calls() as f64);
    assert_eq!(llmdm_obs::counter_value("model.tokens"), meter.total_tokens() as f64);
    let d_obs = llmdm_obs::counter_value("model.cost_usd");
    let d_meter = meter.total_dollars();
    assert!(
        (d_obs - d_meter).abs() < 1e-9,
        "obs ${d_obs} vs meter ${d_meter}"
    );
    assert!(d_meter > 0.0, "run must have cost something");

    // Per-model call counts agree too.
    for (model, usage) in meter.iter() {
        assert_eq!(
            llmdm_obs::counter_value(&format!("model.calls.{model}")),
            usage.calls as f64,
            "per-model calls for {model}"
        );
        let per_obs = llmdm_obs::counter_value(&format!("model.cost_usd.{model}"));
        assert!((per_obs - usage.dollars).abs() < 1e-9, "per-model dollars for {model}");
    }

    // The span side saw the same traffic: one model.complete span per call,
    // one cascade.answer span per query.
    let rep = llmdm_obs::snapshot();
    let model_spans = rep.spans.iter().filter(|s| s.name == "model.complete").count();
    assert_eq!(model_spans as u64, meter.total_calls());
    let cascade_spans = rep.spans.iter().filter(|s| s.name == "cascade.answer").count();
    assert_eq!(cascade_spans as u64, answered);
    assert_eq!(llmdm_obs::counter_value("cascade.queries"), answered as f64);

    llmdm_obs::disable();
}
