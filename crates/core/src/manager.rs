//! The Figure-1 pipeline facade: generation → transformation →
//! integration → exploration over one shared model zoo and embedding
//! space.

use std::sync::Arc;

use llmdm_integrate::clean::{clean_report, repair_fd_violations, CleanReport};
use llmdm_model::ModelZoo;
use llmdm_sqlengine::{Database, Table, Value};
use llmdm_transform::relational::parse_scalar;
use llmdm_transform::{discover_program, Grid, JsonValue, Op};
use llmdm_vecdb::AttrValue;

/// How a pipeline stage finished (graceful-degradation contract).
///
/// A stage that processes a batch of items no longer has to be
/// all-or-nothing: under partial failure it reports `Degraded` with the
/// completed subset rather than aborting the whole pipeline — the §II-E
/// availability-over-completeness trade-off the resilience layer makes
/// throughout the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Every item succeeded.
    Complete,
    /// Some items failed; the completed subset is usable.
    Degraded,
    /// Nothing succeeded.
    Failed,
}

impl StageStatus {
    /// Short label (`"complete"` / `"degraded"` / `"failed"`).
    pub fn label(&self) -> &'static str {
        match self {
            StageStatus::Complete => "complete",
            StageStatus::Degraded => "degraded",
            StageStatus::Failed => "failed",
        }
    }
}

/// Per-stage outcome of a degradable batch operation.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name (`transformation`, `exploration`, …).
    pub stage: &'static str,
    /// The aggregate status.
    pub status: StageStatus,
    /// Items that completed.
    pub completed: usize,
    /// Items attempted.
    pub attempted: usize,
    /// One error string per failed item, `(item, error)`.
    pub errors: Vec<(String, String)>,
}

impl StageReport {
    fn from_outcomes(
        stage: &'static str,
        attempted: usize,
        errors: Vec<(String, String)>,
    ) -> Self {
        let completed = attempted - errors.len();
        let status = if errors.is_empty() {
            StageStatus::Complete
        } else if completed > 0 {
            StageStatus::Degraded
        } else {
            StageStatus::Failed
        };
        if status == StageStatus::Degraded {
            llmdm_obs::counter_add("core.stage.degraded", 1.0);
        }
        StageReport { stage, status, completed, attempted, errors }
    }

    /// Whether any usable output was produced.
    pub fn usable(&self) -> bool {
        self.completed > 0 || self.attempted == 0
    }
}

/// The end-to-end data-management pipeline of the paper's Figure 1.
pub struct DataManager {
    zoo: ModelZoo,
    seed: u64,
    db: Database,
    lake: llmdm_explore::DataLake,
    /// Tables already indexed into the lake (build_lake is idempotent per
    /// table).
    indexed_tables: Vec<String>,
}

impl std::fmt::Debug for DataManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataManager")
            .field("seed", &self.seed)
            .field("tables", &self.db.table_names())
            .field("lake_items", &self.lake.len())
            .finish()
    }
}

impl DataManager {
    /// Create a manager: builds the model zoo (with the NL2SQL and QA
    /// solvers registered) and an empty database + lake.
    pub fn new(seed: u64) -> Self {
        let zoo = ModelZoo::standard(seed);
        zoo.register_solver(Arc::new(llmdm_nlq::Nl2SqlSolver));
        zoo.register_solver(Arc::new(llmdm_cascade::QaSolver));
        DataManager {
            zoo,
            seed,
            db: Database::new(),
            lake: llmdm_explore::DataLake::new(seed),
            indexed_tables: Vec::new(),
        }
    }

    /// The shared model zoo.
    pub fn zoo(&self) -> &ModelZoo {
        &self.zoo
    }

    /// The managed relational database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable database access.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The managed multi-modal lake.
    pub fn lake(&self) -> &llmdm_explore::DataLake {
        &self.lake
    }

    /// **Transformation**: ingest a JSON document (Fig. 4's left path) —
    /// relationalize it and register every produced table. Returns the
    /// table names.
    pub fn ingest_json(&mut self, name: &str, json: &str) -> Result<Vec<String>, String> {
        let mut span = llmdm_obs::span("core.stage.transformation");
        span.field("op", "ingest_json");
        let doc = JsonValue::parse(json)?;
        let tables = llmdm_transform::json_to_tables(name, &doc)?;
        let mut names = Vec::with_capacity(tables.len());
        for t in tables {
            names.push(t.name.clone());
            self.db.create_table(t).map_err(|e| e.to_string())?;
        }
        span.field("tables", names.len());
        Ok(names)
    }

    /// **Transformation**: ingest a messy spreadsheet grid (Fig. 4's right
    /// path) — synthesize a reshaping program, apply it, and register the
    /// resulting table. Returns the program and table name.
    pub fn ingest_spreadsheet(
        &mut self,
        name: &str,
        grid: &Grid,
    ) -> Result<(Vec<Op>, String), String> {
        let mut span = llmdm_obs::span("core.stage.transformation");
        span.field("op", "ingest_spreadsheet");
        let (program, _) = discover_program(grid, 3, 8);
        span.field("program_ops", program.len());
        let reshaped = llmdm_transform::synthesize::apply_program(grid, &program);
        let table = grid_to_table(name, &reshaped)?;
        self.db.create_table(table).map_err(|e| e.to_string())?;
        Ok((program, name.to_string()))
    }

    /// **Integration**: clean a registered table (report + FD repair).
    pub fn clean_table(
        &mut self,
        name: &str,
        fds: &[(&str, &str)],
    ) -> Result<CleanReport, String> {
        let mut span = llmdm_obs::span("core.stage.integration");
        span.field("op", "clean_table");
        span.field("fds", fds.len());
        let table = self.db.table(name).map_err(|e| e.to_string())?.clone();
        let report = clean_report(&table, fds);
        let mut repaired = table;
        for (det, dep) in fds {
            repaired = repair_fd_violations(&repaired, det, dep);
        }
        *self.db.table_mut(name).map_err(|e| e.to_string())? = repaired;
        Ok(report)
    }

    /// **Exploration**: index every registered table plus free-text
    /// documents into the multi-modal lake. Idempotent per table: calling
    /// again after ingesting new sources indexes only the new tables
    /// (documents are always added).
    pub fn build_lake(&mut self, documents: &[(&str, &str)]) -> Result<usize, String> {
        let mut span = llmdm_obs::span("core.stage.exploration");
        span.field("op", "build_lake");
        span.field("documents", documents.len());
        let names: Vec<String> = self.db.table_names().iter().map(|s| s.to_string()).collect();
        for name in names {
            if self.indexed_tables.contains(&name) {
                continue;
            }
            let table = self.db.table(&name).map_err(|e| e.to_string())?.clone();
            self.lake
                .add_table(&table, vec![("source".to_string(), AttrValue::from("database"))])
                .map_err(|e| e.to_string())?;
            self.indexed_tables.push(name);
        }
        for (title, body) in documents {
            self.lake
                .add_text(title, body, vec![("source".to_string(), AttrValue::from("document"))])
                .map_err(|e| e.to_string())?;
        }
        Ok(self.lake.len())
    }

    /// **Transformation, degradable**: ingest a batch of JSON documents,
    /// continuing past per-document failures. A malformed document no
    /// longer aborts the batch — the valid ones are registered and the
    /// report says [`StageStatus::Degraded`] with one error per failure.
    pub fn ingest_json_batch(&mut self, docs: &[(&str, &str)]) -> StageReport {
        let mut span = llmdm_obs::span("core.stage.transformation");
        span.field("op", "ingest_json_batch");
        span.field("docs", docs.len());
        let mut errors = Vec::new();
        for (name, json) in docs {
            if let Err(e) = self.ingest_json(name, json) {
                errors.push((name.to_string(), e));
            }
        }
        let report = StageReport::from_outcomes("transformation", docs.len(), errors);
        span.field("status", report.status.label());
        report
    }

    /// **Exploration, degradable**: like [`DataManager::build_lake`] but
    /// continues past per-item indexing failures, returning the lake size
    /// alongside the stage report instead of aborting on the first error.
    pub fn build_lake_partial(&mut self, documents: &[(&str, &str)]) -> (usize, StageReport) {
        let mut span = llmdm_obs::span("core.stage.exploration");
        span.field("op", "build_lake_partial");
        let names: Vec<String> = self.db.table_names().iter().map(|s| s.to_string()).collect();
        let mut attempted = 0usize;
        let mut errors = Vec::new();
        for name in names {
            if self.indexed_tables.contains(&name) {
                continue;
            }
            attempted += 1;
            let table = match self.db.table(&name) {
                Ok(t) => t.clone(),
                Err(e) => {
                    errors.push((name.clone(), e.to_string()));
                    continue;
                }
            };
            match self
                .lake
                .add_table(&table, vec![("source".to_string(), AttrValue::from("database"))])
            {
                Ok(_) => self.indexed_tables.push(name),
                Err(e) => errors.push((name.clone(), e.to_string())),
            }
        }
        for (title, body) in documents {
            attempted += 1;
            if let Err(e) = self
                .lake
                .add_text(title, body, vec![("source".to_string(), AttrValue::from("document"))])
            {
                errors.push((title.to_string(), e.to_string()));
            }
        }
        let report = StageReport::from_outcomes("exploration", attempted, errors);
        span.field("status", report.status.label());
        (self.lake.len(), report)
    }

    /// **Generation**: produce executable SQL over the managed database
    /// (Fig. 2) for DBMS testing or training-data purposes.
    pub fn generate_sql(&mut self, n: usize) -> Vec<llmdm_datagen::GeneratedSql> {
        let mut span = llmdm_obs::span("core.stage.generation");
        span.field("op", "generate_sql");
        span.field("n", n);
        let mut generator = llmdm_datagen::SqlGenerator::new(self.seed);
        generator.generate(
            &self.db,
            &llmdm_datagen::SqlGenConstraints { n, ..Default::default() },
        )
    }
}

/// Convert a header-rowed grid into a typed table.
pub fn grid_to_table(name: &str, grid: &Grid) -> Result<Table, String> {
    let Some(header) = grid.first() else {
        return Err("empty grid".into());
    };
    if header.iter().any(|h| h.trim().is_empty()) {
        return Err("grid header has empty cells".into());
    }
    // Infer per-column types from the body.
    let body = &grid[1..];
    let mut schema_inference = llmdm_transform::relational::SchemaInference::default();
    let records: Vec<Vec<(String, Value)>> = body
        .iter()
        .map(|row| {
            header
                .iter()
                .enumerate()
                .map(|(i, h)| (h.clone(), parse_scalar(row.get(i).map(|s| s.as_str()).unwrap_or(""))))
                .collect()
        })
        .collect();
    for r in &records {
        schema_inference.observe(r);
    }
    let schema = schema_inference.schema();
    let mut table = Table::new(name, schema.clone());
    for record in &records {
        let row: Vec<Value> = schema
            .columns()
            .iter()
            .map(|c| {
                record
                    .iter()
                    .find(|(p, _)| p.to_lowercase() == c.name)
                    .map(|(_, v)| coerce_to(v, c.dtype))
                    .unwrap_or(Value::Null)
            })
            .collect();
        table.push_row(row).map_err(|e| e.to_string())?;
    }
    Ok(table)
}

fn coerce_to(v: &Value, dtype: llmdm_sqlengine::DataType) -> Value {
    use llmdm_sqlengine::DataType;
    match (v, dtype) {
        (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
        (Value::Int(i), DataType::Text) => Value::Str(i.to_string()),
        (Value::Float(f), DataType::Text) => Value::Str(f.to_string()),
        (Value::Bool(b), DataType::Text) => Value::Str(b.to_string()),
        _ => v.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_pipeline_end_to_end() {
        let mut dm = DataManager::new(7);
        // Transformation: JSON → tables.
        let names = dm
            .ingest_json(
                "orders",
                r#"[{"id": 1, "customer": "alice", "total": 120},
                    {"id": 2, "customer": "bob", "total": 80},
                    {"id": 3, "customer": "alice", "total": 95}]"#,
            )
            .unwrap();
        assert_eq!(names, vec!["orders".to_string()]);
        // Transformation: messy spreadsheet → table.
        let grid: Grid = vec![
            vec!["Quarterly Report".into(), "".into(), "".into()],
            vec!["product".into(), "region".into(), "units".into()],
            vec!["widget".into(), "east".into(), "10".into()],
            vec!["gadget".into(), "west".into(), "20".into()],
        ];
        let (program, name) = dm.ingest_spreadsheet("sales", &grid).unwrap();
        assert!(!program.is_empty());
        assert!(dm.database().has_table(&name));
        // Integration: clean.
        let report = dm.clean_table("orders", &[]).unwrap();
        assert_eq!(report.duplicates.len(), 0);
        // Generation: SQL over the ingested tables.
        let sql = dm.generate_sql(6);
        assert_eq!(sql.len(), 6);
        // Exploration: lake over everything.
        let n = dm.build_lake(&[("notes", "alice is our best customer")]).unwrap();
        assert_eq!(n, 3); // 2 tables + 1 document
        let hits = dm.lake().search("best customer alice", 2).unwrap();
        assert!(!hits.is_empty());
        // And the ingested data is queryable.
        let rs = dm
            .database_mut()
            .query("SELECT customer FROM orders WHERE total > 100")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Str("alice".into()));
    }

    #[test]
    fn grid_to_table_types_columns() {
        let grid: Grid = vec![
            vec!["name".into(), "units".into(), "rate".into()],
            vec!["widget".into(), "10".into(), "1.5".into()],
            vec!["gadget".into(), "20".into(), "2.5".into()],
        ];
        let t = grid_to_table("g", &grid).unwrap();
        use llmdm_sqlengine::DataType;
        assert_eq!(t.schema.column("units").unwrap().dtype, DataType::Int);
        assert_eq!(t.schema.column("rate").unwrap().dtype, DataType::Float);
        assert_eq!(t.schema.column("name").unwrap().dtype, DataType::Text);
    }

    #[test]
    fn build_lake_is_idempotent_per_table() {
        let mut dm = DataManager::new(2);
        dm.ingest_json("a", r#"[{"x": 1}]"#).unwrap();
        let n1 = dm.build_lake(&[]).unwrap();
        assert_eq!(n1, 1);
        // Second call with a new table indexes only the new table.
        dm.ingest_json("b", r#"[{"y": 2}]"#).unwrap();
        let n2 = dm.build_lake(&[]).unwrap();
        assert_eq!(n2, 2, "no duplicate items for table `a`");
    }

    #[test]
    fn invalid_json_is_reported() {
        let mut dm = DataManager::new(1);
        assert!(dm.ingest_json("bad", "{not json").is_err());
        assert!(dm.ingest_json("scalar", "42").is_err());
        assert!(dm.database().table_names().is_empty());
    }

    #[test]
    fn duplicate_table_name_is_reported() {
        let mut dm = DataManager::new(1);
        dm.ingest_json("t", r#"[{"a": 1}]"#).unwrap();
        assert!(dm.ingest_json("t", r#"[{"a": 2}]"#).is_err());
    }

    #[test]
    fn batch_ingest_degrades_instead_of_aborting() {
        let mut dm = DataManager::new(11);
        let report = dm.ingest_json_batch(&[
            ("good_a", r#"[{"x": 1}]"#),
            ("broken", "{not json"),
            ("good_b", r#"[{"y": 2}]"#),
        ]);
        assert_eq!(report.status, StageStatus::Degraded);
        assert_eq!(report.completed, 2);
        assert_eq!(report.attempted, 3);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].0, "broken");
        assert!(report.usable());
        // The good tables really landed.
        assert!(dm.database().has_table("good_a"));
        assert!(dm.database().has_table("good_b"));
        // And downstream stages keep working on the partial result.
        let (n, lake_report) = dm.build_lake_partial(&[("notes", "partial but useful")]);
        assert_eq!(lake_report.status, StageStatus::Complete);
        assert_eq!(n, 3); // 2 tables + 1 document
    }

    #[test]
    fn batch_ingest_all_good_is_complete_all_bad_is_failed() {
        let mut dm = DataManager::new(12);
        let ok = dm.ingest_json_batch(&[("a", r#"[{"x": 1}]"#)]);
        assert_eq!(ok.status, StageStatus::Complete);
        assert!(ok.usable());
        let bad = dm.ingest_json_batch(&[("b", "nope"), ("c", "{")]);
        assert_eq!(bad.status, StageStatus::Failed);
        assert_eq!(bad.completed, 0);
        assert!(!bad.usable());
        // Empty batch: trivially complete and usable.
        let empty = dm.ingest_json_batch(&[]);
        assert_eq!(empty.status, StageStatus::Complete);
        assert!(empty.usable());
    }

    #[test]
    fn clean_unknown_table_errors() {
        let mut dm = DataManager::new(1);
        assert!(dm.clean_table("missing", &[]).is_err());
    }

    #[test]
    fn grid_with_bad_header_rejected() {
        let grid: Grid = vec![vec!["a".into(), "".into()], vec!["1".into(), "2".into()]];
        assert!(grid_to_table("g", &grid).is_err());
        assert!(grid_to_table("g", &Vec::new()).is_err());
    }
}
