//! # llmdm — LLMs for data management
//!
//! A from-scratch Rust implementation of the full stack envisioned by
//! *"Applications and Challenges for Large Language Models: From Data
//! Management Perspective"* (ICDE 2024): the four application areas of the
//! paper's Figure-1 pipeline — data **generation**, **transformation**,
//! **integration**, and **exploration** — and the five systems challenges
//! — prompt optimization, query optimization (cascade +
//! decomposition/combination + hybrid vector search), cache optimization,
//! security & privacy, and output validation — together with every
//! substrate they need (a SQL engine, a vector database, and a simulated
//! LLM model zoo).
//!
//! This crate is the facade: it re-exports the subsystem crates, provides
//! the [`DataManager`] convenience pipeline (Fig. 1), and hosts the
//! composed experiments ([`experiments`]) that single crates cannot run
//! alone — notably the paper's Table III (semantic caching over the
//! decomposition pipeline).
//!
//! ## Crate map
//!
//! | module | crate | paper section |
//! |---|---|---|
//! | [`model`] | `llmdm-model` | simulated LLM substrate |
//! | [`vecdb`] | `llmdm-vecdb` | vector database, hybrid search (§III-B2) |
//! | [`sql`] | `llmdm-sqlengine` | relational engine substrate |
//! | [`nlq`] | `llmdm-nlq` | NL2SQL + decomposition/combination (§III-B1, Table II) |
//! | [`cascade`] | `llmdm-cascade` | LLM cascade (§III-B1, Fig. 6, Table I) |
//! | [`semcache`] | `llmdm-semcache` | semantic cache (§III-C, Table III) |
//! | [`promptopt`] | `llmdm-promptopt` | prompt store & selection (§III-A) |
//! | [`datagen`] | `llmdm-datagen` | data generation (§II-A, Figs. 2–3) |
//! | [`transform`] | `llmdm-transform` | data transformation (§II-B, Fig. 4) |
//! | [`integrate`] | `llmdm-integrate` | data integration (§II-C) |
//! | [`explore`] | `llmdm-explore` | data exploration (§II-D) |
//! | [`privacy`] | `llmdm-privacy` | security & privacy (§III-D) |
//! | [`validate`] | `llmdm-validate` | output validation (§III-E) |

#![warn(missing_docs)]

pub use llmdm_cascade as cascade;
pub use llmdm_datagen as datagen;
pub use llmdm_explore as explore;
pub use llmdm_integrate as integrate;
pub use llmdm_model as model;
pub use llmdm_nlq as nlq;
pub use llmdm_obs as obs;
pub use llmdm_rt as rt;
pub use llmdm_privacy as privacy;
pub use llmdm_promptopt as promptopt;
pub use llmdm_resil as resil;
pub use llmdm_semcache as semcache;
pub use llmdm_serve as serve;
pub use llmdm_sqlengine as sql;
pub use llmdm_store as store;
pub use llmdm_transform as transform;
pub use llmdm_validate as validate;
pub use llmdm_vecdb as vecdb;

pub mod experiments;
pub mod manager;

pub use experiments::{run_table3, Table3Report};
pub use manager::{DataManager, StageReport, StageStatus};
