//! Composed experiments that span multiple subsystem crates — most
//! importantly the paper's **Table III** (LLM cache optimization), which
//! needs the NL2SQL workload (`llmdm-nlq`), the decomposition pipeline,
//! and the semantic cache (`llmdm-semcache`) together.
//!
//! ## Table III protocol (following §III-C)
//!
//! "We use the same dataset as in LLM Cascade … we randomly select 10
//! queries and query them twice to verify the cache performance."
//!
//! We run the protocol over the NL2SQL workload (the paper's own
//! sub-query notion comes from §III-B's NL2SQL decomposition, which is
//! what Cache(A) caches; see DESIGN.md §2 for the substitution note):
//! 10 workload queries are asked twice (two user sessions). Three
//! configurations:
//!
//! * **w/o cache** — every ask goes to the model (origin pipeline);
//! * **Cache(O)** — whole-query semantic cache: repeat asks are reuse
//!   hits; wrong cached answers stay wrong ("Cache(O) may cache
//!   incorrectly answered queries, which are not helpful");
//! * **Cache(A)** — original *and* sub-query caching over the
//!   decomposition pipeline: sub-queries are simpler (higher accuracy)
//!   and shared across different originals, so the cache both saves money
//!   and propagates *correct* sub-answers ("caching sub-queries, which
//!   exhibits higher accuracy, is beneficial").

use std::collections::BTreeMap;
use std::sync::Arc;

use llmdm_model::{CompletionRequest, LanguageModel, ModelZoo};
use llmdm_nlq::decompose::{decompose, recompose};
use llmdm_nlq::prompt::{ExamplePool, PromptBuilder};
use llmdm_nlq::workload::{NlQuery, Workload, WorkloadConfig};
use llmdm_nlq::Nl2SqlSolver;
use llmdm_semcache::{CacheConfig, EntryKind, Lookup, SemanticCache};

/// One cache configuration's metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheRunReport {
    /// Execution accuracy over all asks.
    pub accuracy: f64,
    /// Total dollar cost.
    pub cost: f64,
    /// Model calls made.
    pub calls: u64,
    /// Cache reuse hits.
    pub reuse_hits: u64,
}

/// The Table III reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Report {
    /// No caching.
    pub without: CacheRunReport,
    /// Original-query caching only.
    pub cache_o: CacheRunReport,
    /// Original + sub-query caching over decomposition.
    pub cache_a: CacheRunReport,
}

fn gold_results(
    db: &llmdm_sqlengine::Database,
    queries: &[NlQuery],
) -> Vec<llmdm_sqlengine::ResultSet> {
    queries
        .iter()
        .map(|q| {
            match llmdm_sqlengine::parse_statement(&q.gold_sql).expect("gold parses") {
                llmdm_sqlengine::Statement::Select(s) => {
                    llmdm_sqlengine::exec::execute_select(db, &s).expect("gold executes")
                }
                _ => unreachable!(),
            }
        })
        .collect()
}

fn exec_sql(
    db: &llmdm_sqlengine::Database,
    sql: &str,
) -> Option<llmdm_sqlengine::ResultSet> {
    match llmdm_sqlengine::parse_statement(sql).ok()? {
        llmdm_sqlengine::Statement::Select(s) => {
            llmdm_sqlengine::exec::execute_select(db, &s).ok()
        }
        _ => None,
    }
}

/// Run the Table III experiment.
pub fn run_table3(seed: u64) -> Table3Report {
    let db = llmdm_nlq::concert_domain(seed);
    // 10 queries, asked twice (the paper's protocol).
    let workload = Workload::generate(WorkloadConfig { n: 10, seed, ..Default::default() });
    let asks: Vec<&NlQuery> =
        workload.queries.iter().chain(workload.queries.iter()).collect();
    let gold = gold_results(&db, &workload.queries);
    let gold_of = |q: &NlQuery| &gold[q.id];

    let zoo = ModelZoo::standard(seed);
    zoo.register_solver(Arc::new(Nl2SqlSolver));
    let model = zoo.large();
    let builder = PromptBuilder::new(ExamplePool::generate(seed), db.schema_summary());

    // ---- w/o cache: origin pipeline per ask ----
    zoo.meter().reset();
    let mut ok = 0usize;
    for q in &asks {
        let prompt = builder.single(&q.text);
        if let Ok(c) = model.complete(&CompletionRequest::new(prompt)) {
            if exec_sql(&db, c.text.trim()).map(|rs| rs.bag_eq(gold_of(q))).unwrap_or(false) {
                ok += 1;
            }
        }
    }
    let snap = zoo.meter().snapshot();
    let without = CacheRunReport {
        accuracy: ok as f64 / asks.len() as f64,
        cost: snap.total_dollars(),
        calls: snap.total_calls(),
        reuse_hits: 0,
    };

    // ---- Cache(O): whole-query caching ----
    // Whole queries need a near-exact reuse threshold: the workload's
    // templates differ only in a year or event word, and serving a
    // cached answer across those would be a false reuse.
    zoo.meter().reset();
    let mut cache =
        SemanticCache::new(CacheConfig { seed, reuse_threshold: 0.995, ..Default::default() });
    let mut ok = 0usize;
    for q in &asks {
        let answer = match cache.lookup(&q.text) {
            Lookup::Hit { response, kind: llmdm_semcache::HitKind::Reuse, .. } => response,
            _ => {
                let prompt = builder.single(&q.text);
                match model.complete(&CompletionRequest::new(prompt)) {
                    Ok(c) => {
                        let text = c.text.trim().to_string();
                        cache.insert(&q.text, &text, EntryKind::Original);
                        text
                    }
                    Err(_) => continue,
                }
            }
        };
        if exec_sql(&db, &answer).map(|rs| rs.bag_eq(gold_of(q))).unwrap_or(false) {
            ok += 1;
        }
    }
    let snap = zoo.meter().snapshot();
    let cache_o = CacheRunReport {
        accuracy: ok as f64 / asks.len() as f64,
        cost: snap.total_dollars(),
        calls: snap.total_calls(),
        reuse_hits: cache.stats().reuse_hits,
    };

    // ---- Cache(A): decomposition with original + sub-query caching ----
    zoo.meter().reset();
    let mut cache =
        SemanticCache::new(CacheConfig { seed, reuse_threshold: 0.995, ..Default::default() });
    let mut ok = 0usize;
    for q in &asks {
        let d = decompose(q);
        let mut answers: BTreeMap<String, String> = BTreeMap::new();
        let mut complete = true;
        for (key, atom) in d.atom_keys.iter().zip(q.shape.atoms()) {
            let sub_q = atom.sub_question();
            let sql = match cache.lookup(&sub_q) {
                Lookup::Hit { response, kind: llmdm_semcache::HitKind::Reuse, .. } => response,
                _ => match model.complete(&CompletionRequest::new(builder.single(&sub_q))) {
                    Ok(c) => {
                        let text = c.text.trim().to_string();
                        cache.insert(&sub_q, &text, EntryKind::SubQuery);
                        text
                    }
                    Err(_) => {
                        complete = false;
                        break;
                    }
                },
            };
            answers.insert(key.clone(), sql);
        }
        if !complete {
            continue;
        }
        if let Ok(rs) = recompose(&db, &d, &answers) {
            if rs.bag_eq(gold_of(q)) {
                ok += 1;
            }
        }
    }
    let snap = zoo.meter().snapshot();
    let cache_a = CacheRunReport {
        accuracy: ok as f64 / asks.len() as f64,
        cost: snap.total_dollars(),
        calls: snap.total_calls(),
        reuse_hits: cache.stats().reuse_hits,
    };

    Table3Report { without, cache_o, cache_a }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_holds() {
        // Average over a few seeds (10-query runs are small, as in the
        // paper's own preliminary experiment).
        let seeds: Vec<u64> = (1..=10).collect();
        let mut without = (0.0, 0.0);
        let mut cache_o = (0.0, 0.0);
        let mut cache_a = (0.0, 0.0);
        for &s in &seeds {
            let r = run_table3(s);
            without.0 += r.without.accuracy;
            without.1 += r.without.cost;
            cache_o.0 += r.cache_o.accuracy;
            cache_o.1 += r.cache_o.cost;
            cache_a.0 += r.cache_a.accuracy;
            cache_a.1 += r.cache_a.cost;
        }
        let n = seeds.len() as f64;
        // Cache(O) keeps accuracy (same answers, reused) but cuts cost.
        assert!((cache_o.0 - without.0).abs() / n < 0.08, "O acc {} vs w/o {}", cache_o.0 / n, without.0 / n);
        assert!(cache_o.1 < without.1 * 0.75, "O cost {} vs w/o {}", cache_o.1 / n, without.1 / n);
        // Cache(A) improves accuracy (decomposed sub-queries are easier
        // and correct sub-answers propagate).
        assert!(
            cache_a.0 / n > cache_o.0 / n + 0.04,
            "A acc {} vs O acc {}",
            cache_a.0 / n,
            cache_o.0 / n
        );
        // And still far cheaper than no cache at all.
        assert!(cache_a.1 < without.1, "A cost {} vs w/o {}", cache_a.1 / n, without.1 / n);
    }

    #[test]
    fn cache_o_reuse_hits_cover_second_session() {
        let r = run_table3(5);
        // The second session's 10 asks are verbatim repeats → at least 10
        // reuse hits (more when the workload itself repeats a template),
        // and every ask is either a call or a reuse.
        assert!(r.cache_o.reuse_hits >= 10, "reuse {}", r.cache_o.reuse_hits);
        assert_eq!(r.cache_o.calls + r.cache_o.reuse_hits, 20);
        assert_eq!(r.without.calls, 20);
    }

    #[test]
    fn cache_a_exploits_shared_sub_queries() {
        let r = run_table3(6);
        // Sub-query sharing: strictly more reuse hits than the 10 repeats
        // alone would give is not guaranteed per seed, but calls must be
        // no more than distinct sub-queries.
        assert!(r.cache_a.calls <= 20, "calls {}", r.cache_a.calls);
        assert!(r.cache_a.reuse_hits >= 10, "reuse {}", r.cache_a.reuse_hits);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run_table3(9), run_table3(9));
    }
}
