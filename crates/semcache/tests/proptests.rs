//! Property-based tests for semantic-cache invariants.

use llmdm_semcache::{AccessPredictor, CacheConfig, EntryKind, EvictionPolicy, Lookup, SemanticCache};
use llmdm_rt::proptest;
use llmdm_rt::proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = EvictionPolicy> {
    prop_oneof![
        Just(EvictionPolicy::Lru),
        Just(EvictionPolicy::Lfu),
        (1.0f64..8.0, 0.1f64..2.0).prop_map(|(r, a)| EvictionPolicy::Weighted {
            reuse_weight: r,
            augment_weight: a
        }),
    ]
}

proptest! {
    /// The cache never exceeds its capacity, whatever the op sequence.
    #[test]
    fn capacity_invariant(
        capacity in 1usize..12,
        policy in any_policy(),
        ops in proptest::collection::vec(("[a-z]{3,12} [a-z]{3,12} [0-9]{1,3}", any::<bool>()), 1..80),
    ) {
        let mut cache = SemanticCache::new(CacheConfig {
            capacity,
            policy,
            ..Default::default()
        });
        for (query, do_insert) in ops {
            if do_insert {
                cache.insert(&query, "resp", EntryKind::Original);
            } else {
                let _ = cache.lookup(&query);
            }
            prop_assert!(cache.len() <= capacity, "len {} > cap {}", cache.len(), capacity);
        }
    }

    /// Inserting then immediately looking up the exact same text is a
    /// reuse hit with the inserted response, for every policy.
    #[test]
    fn insert_then_lookup_hits(
        policy in any_policy(),
        query in "[a-z]{4,12} [a-z]{4,12} [a-z]{4,12}",
        response in "[a-zA-Z0-9 ]{1,30}",
    ) {
        let mut cache =
            SemanticCache::new(CacheConfig { capacity: 8, policy, ..Default::default() });
        cache.insert(&query, &response, EntryKind::SubQuery);
        match cache.lookup(&query) {
            Lookup::Hit { response: got, similarity, .. } => {
                prop_assert_eq!(got, response);
                prop_assert!(similarity > 0.999);
            }
            Lookup::Miss => prop_assert!(false, "fresh insert must hit"),
        }
    }

    /// Stats counters are consistent: every lookup lands in exactly one
    /// bucket.
    #[test]
    fn stats_partition_lookups(
        queries in proptest::collection::vec("[a-z]{3,10} [a-z]{3,10}", 1..40),
    ) {
        let mut cache = SemanticCache::new(CacheConfig::default());
        let mut lookups = 0u64;
        for (i, q) in queries.iter().enumerate() {
            let _ = cache.lookup(q);
            lookups += 1;
            if i % 2 == 0 {
                cache.insert(q, "r", EntryKind::Original);
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.reuse_hits + s.augment_hits + s.misses, lookups);
    }

    /// The access predictor's probability is monotone in observations and
    /// bounded in [0, 1].
    #[test]
    fn predictor_monotone(n in 0usize..40, query in "[a-z]{3,12} [0-9]{1,4}") {
        let mut p = AccessPredictor::new();
        let mut last = p.predict(&query);
        prop_assert!((0.0..=1.0).contains(&last));
        for _ in 0..n {
            p.observe(&query);
            let now = p.predict(&query);
            prop_assert!(now >= last - 1e-12);
            prop_assert!((0.0..=1.0).contains(&now));
            last = now;
        }
    }
}
