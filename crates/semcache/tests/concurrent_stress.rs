//! Stress test for the lock-striped [`ShardedCache`] under real thread
//! contention: 8 workers × 1 000 requests against one shared
//! [`ConcurrentCachedLlm`].
//!
//! Two invariants must survive arbitrary interleavings:
//!
//! * **counter reconciliation** — `reuse + augment + stale + misses ==
//!   lookups` holds on every shard independently AND on the global sum
//!   (racing threads may both miss the same key and both insert; that
//!   shifts the reuse/miss split, never the sum);
//! * **dollar reconciliation** — the costs the cache reported to its
//!   callers sum to exactly what the zoo's usage meter billed, to 1e-9:
//!   reuse and stale serves are free, every model call is metered once.

use std::sync::Mutex;

use llmdm_model::prelude::*;
use llmdm_model::PromptEnvelope;
use llmdm_semcache::{CacheConfig, ConcurrentCachedLlm, EntryKind, ShardedCache};

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 1_000;
const TEMPLATES: usize = 100;
const SEED: u64 = 42;

fn oracle_prompt(q: &str) -> String {
    PromptEnvelope::builder("oracle")
        .header("gold", "the-answer")
        .header("difficulty", "0.0")
        .header("examples", 2)
        .body(q)
        .build()
}

#[test]
fn eight_threads_thousand_requests_reconcile() {
    let zoo = ModelZoo::standard(SEED);
    let llm = ConcurrentCachedLlm::new(
        zoo.medium(),
        ShardedCache::new(CacheConfig { capacity: 256, seed: SEED, ..Default::default() }, 8),
        None,
    );

    // Each thread walks the shared template set from its own offset, so
    // every key is hammered by all 8 threads in different orders.
    let reported_cost = Mutex::new(0.0f64);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let llm = &llm;
            let reported_cost = &reported_cost;
            scope.spawn(move || {
                let mut local_cost = 0.0f64;
                for i in 0..REQUESTS_PER_THREAD {
                    let q = format!(
                        "stress query template {} with shared phrasing",
                        (t * 37 + i) % TEMPLATES
                    );
                    let a = llm.ask(&q, &oracle_prompt(&q), EntryKind::Original).unwrap();
                    local_cost += a.cost;
                }
                *reported_cost.lock().unwrap() += local_cost;
            });
        }
    });

    // Counter reconciliation: per shard, then globally.
    assert_eq!(llm.cache().shard_count(), 8);
    for (i, s) in llm.cache().stats_per_shard().into_iter().enumerate() {
        assert!(s.reconciles(), "shard {i} failed to reconcile: {s:?}");
    }
    let g = llm.cache().stats();
    assert!(g.reconciles(), "global stats failed to reconcile: {g:?}");
    assert_eq!(g.lookups as usize, THREADS * REQUESTS_PER_THREAD);

    // With 100 templates behind 8 000 requests, the steady state is
    // overwhelmingly reuse hits — losing them would mean shards stopped
    // seeing their own inserts under contention.
    assert!(
        g.reuse_hits as usize > THREADS * REQUESTS_PER_THREAD / 2,
        "reuse collapsed under contention: {g:?}"
    );

    // Dollar reconciliation: what the cache told its callers it spent is
    // exactly what the meter billed.
    let reported = *reported_cost.lock().unwrap();
    let metered = zoo.meter().snapshot().total_dollars();
    let diff = (reported - metered).abs();
    assert!(diff < 1e-9, "reported ${reported:.9} != metered ${metered:.9} (diff {diff:e})");
    assert!(metered > 0.0, "the model was never actually called");
}
