//! Durable cache snapshots: [`PersistentCache`] saves a
//! [`SemanticCache`]'s entries and lifetime counters into an
//! `llmdm-store` [`Store`], so a restarted process re-opens with a warm
//! cache — first lookup after restart is a hit, not a cold miss — and
//! with cumulative [`CacheStats`] whose reconciliation invariant
//! (`reuse + augment + stale + misses == lookups`) still holds.
//!
//! Entries are serialized sorted by query text so the saved bytes are a
//! deterministic function of cache content (embeddings are re-derived
//! on load — the embedder is seeded, so re-embedding reproduces the
//! same vectors). The save itself is one store transaction: a crash
//! mid-save recovers to the previous complete snapshot, never a torn
//! one.

use llmdm_store::{SharedVfs, Store, StoreConfig, StoreError};

use crate::cache::{CacheConfig, CacheStats, EntryKind, SemanticCache};

const ENTRIES_SPACE: &str = "semcache:entries";
const STATS_SPACE: &str = "semcache:stats";

fn encode_entry(query: &str, response: &str, kind: EntryKind) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + query.len() + response.len());
    out.push(match kind {
        EntryKind::Original => 0,
        EntryKind::SubQuery => 1,
    });
    out.extend_from_slice(&(query.len() as u32).to_le_bytes());
    out.extend_from_slice(query.as_bytes());
    out.extend_from_slice(&(response.len() as u32).to_le_bytes());
    out.extend_from_slice(response.as_bytes());
    out
}

fn decode_entry(bytes: &[u8]) -> Result<(String, String, EntryKind), StoreError> {
    let corrupt = |m: &str| StoreError::Corrupt(format!("cache entry record: {m}"));
    let kind = match bytes.first() {
        Some(0) => EntryKind::Original,
        Some(1) => EntryKind::SubQuery,
        _ => return Err(corrupt("bad kind tag")),
    };
    let mut off = 1usize;
    let take_str = |off: &mut usize| -> Result<String, StoreError> {
        let len_bytes =
            bytes.get(*off..*off + 4).ok_or_else(|| corrupt("short length"))?;
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        *off += 4;
        let s = bytes.get(*off..*off + len).ok_or_else(|| corrupt("short payload"))?;
        *off += len;
        String::from_utf8(s.to_vec()).map_err(|_| corrupt("not utf-8"))
    };
    let query = take_str(&mut off)?;
    let response = take_str(&mut off)?;
    if off != bytes.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok((query, response, kind))
}

fn encode_stats(s: &CacheStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(56);
    for v in [
        s.lookups,
        s.reuse_hits,
        s.augment_hits,
        s.stale_serves,
        s.misses,
        s.evictions,
        s.rejected,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_stats(bytes: &[u8]) -> Result<CacheStats, StoreError> {
    if bytes.len() != 56 {
        return Err(StoreError::Corrupt(format!(
            "cache stats record: expected 56 bytes, got {}",
            bytes.len()
        )));
    }
    let word = |i: usize| {
        u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8 bytes"))
    };
    Ok(CacheStats {
        lookups: word(0),
        reuse_hits: word(1),
        augment_hits: word(2),
        stale_serves: word(3),
        misses: word(4),
        evictions: word(5),
        rejected: word(6),
    })
}

/// Durable backing for a [`SemanticCache`] (see module docs).
#[derive(Debug)]
pub struct PersistentCache {
    store: Store,
}

impl PersistentCache {
    /// Open the snapshot store on `vfs` (runs crash recovery).
    pub fn open(vfs: SharedVfs, cfg: StoreConfig) -> Result<Self, StoreError> {
        Ok(PersistentCache { store: Store::open(vfs, cfg)? })
    }

    /// Open on real files under `dir` with default store settings.
    pub fn open_dir(dir: impl Into<std::path::PathBuf>) -> Result<Self, StoreError> {
        PersistentCache::open(llmdm_store::DirVfs::shared(dir)?, StoreConfig::default())
    }

    /// The underlying store (recovery report, pool stats).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Snapshot `cache` (entries + stats) in one atomic store
    /// transaction, replacing any previous snapshot.
    pub fn save(&mut self, cache: &SemanticCache) -> Result<(), StoreError> {
        let mut entries: Vec<(&str, &str, EntryKind)> = cache.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let records: Vec<Vec<u8>> =
            entries.iter().map(|(q, r, k)| encode_entry(q, r, *k)).collect();
        let stats = encode_stats(&cache.stats());
        self.store.with_txn(|s| {
            for space in [ENTRIES_SPACE, STATS_SPACE] {
                if s.has_space(space) {
                    s.truncate_space(space)?;
                } else {
                    s.create_space(space)?;
                }
            }
            for r in &records {
                s.append(ENTRIES_SPACE, r)?;
            }
            s.append(STATS_SPACE, &stats)
        })?;
        llmdm_obs::counter_add("semcache.persist.saves", 1.0);
        Ok(())
    }

    /// Whether a snapshot exists to load.
    pub fn has_snapshot(&self) -> bool {
        self.store.has_space(ENTRIES_SPACE)
    }

    /// Rebuild a cache from the last snapshot: re-insert every entry
    /// (the seeded embedder reproduces the same vectors) and restore
    /// the lifetime counters. Returns an empty cache if nothing was
    /// ever saved.
    pub fn load(&mut self, config: CacheConfig) -> Result<SemanticCache, StoreError> {
        let mut cache = SemanticCache::new(config);
        if !self.has_snapshot() {
            return Ok(cache);
        }
        for rec in self.store.scan(ENTRIES_SPACE)? {
            let (query, response, kind) = decode_entry(&rec)?;
            cache.insert(&query, &response, kind);
        }
        let stats_recs = self.store.scan(STATS_SPACE)?;
        if let Some(rec) = stats_recs.last() {
            let stats = decode_stats(rec)?;
            cache.restore_stats(stats).map_err(StoreError::Corrupt)?;
        }
        llmdm_obs::counter_add("semcache.persist.loads", 1.0);
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Lookup;
    use llmdm_store::MemVfs;

    fn cfg() -> CacheConfig {
        CacheConfig::default()
    }

    #[test]
    fn entry_and_stats_records_round_trip() {
        let rec = encode_entry("what is a WAL?", "a write-ahead log", EntryKind::Original);
        let (q, r, k) = decode_entry(&rec).unwrap();
        assert_eq!((q.as_str(), r.as_str(), k), ("what is a WAL?", "a write-ahead log", EntryKind::Original));

        let stats = CacheStats {
            lookups: 10,
            reuse_hits: 4,
            augment_hits: 2,
            stale_serves: 1,
            misses: 3,
            evictions: 7,
            rejected: 2,
        };
        assert_eq!(decode_stats(&encode_stats(&stats)).unwrap(), stats);
        assert!(decode_stats(&[0u8; 3]).is_err());
    }

    #[test]
    fn restarted_process_serves_a_warm_hit_with_stats_intact() {
        let vfs = MemVfs::shared();
        let saved_stats;
        {
            let mut cache = SemanticCache::new(cfg());
            cache.insert("capital of france", "Paris", EntryKind::Original);
            cache.insert("largest ocean", "the Pacific", EntryKind::Original);
            // Generate some history so the restored stats are non-trivial.
            assert!(matches!(cache.lookup("capital of france"), Lookup::Hit { .. }));
            assert!(matches!(cache.lookup("airspeed of a swallow"), Lookup::Miss));
            saved_stats = cache.stats();
            assert!(saved_stats.reconciles());
            let mut pc = PersistentCache::open(vfs.clone(), StoreConfig::default()).unwrap();
            pc.save(&cache).unwrap();
        }
        // "Restart": a fresh PersistentCache over the same disk.
        let mut pc = PersistentCache::open(vfs, StoreConfig::default()).unwrap();
        assert!(pc.has_snapshot());
        let mut warm = pc.load(cfg()).unwrap();
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.stats(), saved_stats, "counters survive the restart");
        // The very first lookup after restart is a warm hit.
        match warm.lookup("capital of france") {
            Lookup::Hit { response, .. } => assert_eq!(response, "Paris"),
            other => panic!("expected a warm hit, got {other:?}"),
        }
        assert!(warm.stats().reconciles(), "invariant holds across restart + new lookups");
        assert_eq!(warm.stats().lookups, saved_stats.lookups + 1);
    }

    #[test]
    fn save_is_atomic_under_a_mid_commit_kill() {
        use llmdm_store::{KillPoint, StorageFaults};
        let vfs = MemVfs::shared();
        // First snapshot succeeds.
        {
            let mut cache = SemanticCache::new(cfg());
            cache.insert("q1", "r1", EntryKind::Original);
            let mut pc = PersistentCache::open(vfs.clone(), StoreConfig::default()).unwrap();
            pc.save(&cache).unwrap();
        }
        // Second snapshot dies before its WAL sync.
        {
            let mut cache = SemanticCache::new(cfg());
            cache.insert("q2", "r2", EntryKind::Original);
            let mut pc = PersistentCache::open(
                vfs.clone(),
                StoreConfig::with_faults(StorageFaults::kill_at(KillPoint::PostWalAppend, 1)),
            )
            .unwrap();
            assert!(matches!(pc.save(&cache), Err(StoreError::Killed(_))));
        }
        llmdm_rt::lock_recover(&vfs).crash();
        // Recovery serves the previous complete snapshot.
        let mut pc = PersistentCache::open(vfs, StoreConfig::default()).unwrap();
        let mut cache = pc.load(cfg()).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(matches!(cache.lookup("q1"), Lookup::Hit { .. }));
    }

    #[test]
    fn empty_store_loads_an_empty_cache() {
        let vfs = MemVfs::shared();
        let mut pc = PersistentCache::open(vfs, StoreConfig::default()).unwrap();
        assert!(!pc.has_snapshot());
        let cache = pc.load(cfg()).unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
