//! # llmdm-semcache — the semantic LLM cache (§III-C, Table III)
//!
//! "Different from traditional cache systems, which utilize an exact match
//! between the new query and cached queries, for LLMs … identifying
//! similar query vectors instead of exactly the same query vector is a
//! more practical solution."
//!
//! This crate implements that cache:
//!
//! * **similarity matching** ([`cache::SemanticCache`]): queries are
//!   embedded with the shared deterministic encoder; a lookup returns a
//!   *reuse* hit (similarity ≥ reuse threshold — serve the cached
//!   response, no model call) or an *augment* hit (similarity in the
//!   augment band — the cached pair is worth adding to the new prompt as
//!   an extra example, the paper's "case (2)"), else a miss;
//! * **weighted eviction** ([`cache::EvictionPolicy::Weighted`]): the
//!   paper's observation that reuse hits and augment hits "should have
//!   different weights when considering eviction", alongside classic LRU
//!   and LFU baselines for the ablation bench;
//! * **admission prediction** ([`predictor::AccessPredictor`]): "predict
//!   the probability of future access" to decide whether to cache a new
//!   entry at all;
//! * a [`client::CachedLlm`] wrapper that puts the cache in front of any
//!   simulated model, counting saved calls and dollars.
//!
//! The Table III experiment itself (original-only vs original+sub-query
//! caching over the decomposition pipeline) lives in the `llmdm` facade
//! crate, which composes this cache with `llmdm-nlq`.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod persist;
pub mod predictor;
pub mod sharded;
pub mod stack;

pub use cache::{CacheConfig, CacheStats, EvictionPolicy, EntryKind, HitKind, Lookup, SemanticCache};
pub use persist::PersistentCache;
pub use client::CachedLlm;
pub use predictor::AccessPredictor;
pub use sharded::{ConcurrentCachedLlm, ShardedCache};
pub use stack::{shared_cache, CacheStackExt, CachedModel, SharedCache};
