//! The similarity-matched cache with weighted eviction.

use std::collections::HashMap;

use llmdm_model::Embedder;
use llmdm_vecdb::{FlatIndex, Metric, VectorIndex};

/// What kind of entry this is (the Cache(O)/Cache(A) distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A full user query.
    Original,
    /// A decomposed sub-query.
    SubQuery,
}

/// How a lookup hit the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitKind {
    /// Similar enough to reuse the cached response outright — no model
    /// call (the paper's case 1).
    Reuse,
    /// Similar enough that the cached (query, response) pair should
    /// augment the new prompt as an extra example (the paper's case 2).
    Augment,
}

/// The result of a cache lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A hit with the cached query/response and the match similarity.
    Hit {
        /// The cached query text.
        query: String,
        /// The cached response.
        response: String,
        /// Cosine similarity of the match.
        similarity: f32,
        /// Reuse or augment.
        kind: HitKind,
    },
    /// No cached entry was similar enough.
    Miss,
}

/// Eviction policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvictionPolicy {
    /// Least-recently-used.
    Lru,
    /// Least-frequently-used.
    Lfu,
    /// The paper's weighted policy: reuse hits add `reuse_weight`,
    /// augment hits add `augment_weight` (reuse ≫ augment since a reuse
    /// hit saves a whole model call); evict the minimum accumulated
    /// weight, ties broken by recency.
    Weighted {
        /// Weight added per reuse hit.
        reuse_weight: f64,
        /// Weight added per augment hit.
        augment_weight: f64,
    },
}

impl Default for EvictionPolicy {
    fn default() -> Self {
        EvictionPolicy::Weighted { reuse_weight: 4.0, augment_weight: 1.0 }
    }
}

/// Cache configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Maximum number of entries.
    pub capacity: usize,
    /// Similarity at or above which a hit is a [`HitKind::Reuse`].
    pub reuse_threshold: f32,
    /// Similarity at or above which a hit is at least an
    /// [`HitKind::Augment`].
    pub augment_threshold: f32,
    /// Similarity at or above which [`SemanticCache::serve_stale`] will
    /// serve an entry during an upstream outage. Deliberately *below*
    /// the augment threshold: when the model is down, a vaguely-related
    /// cached answer beats no answer (§III-C availability trade-off).
    pub stale_threshold: f32,
    /// Also match new queries against cached *responses* (§III-C footnote:
    /// "both the original queries and responses are also stored" as search
    /// keys) — useful when a user pastes a previous answer back as a
    /// follow-up query. Response matches never count as reuse, only
    /// augment.
    pub match_responses: bool,
    /// Eviction policy.
    pub policy: EvictionPolicy,
    /// Embedding seed (must be shared with the rest of the system for
    /// similarity spaces to align).
    pub seed: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 256,
            reuse_threshold: 0.95,
            augment_threshold: 0.70,
            stale_threshold: 0.55,
            match_responses: false,
            policy: EvictionPolicy::default(),
            seed: 0,
        }
    }
}

/// Lifetime counters.
///
/// Invariant (checked by `reconciliation_invariant_holds` and the chaos
/// pipeline): every [`SemanticCache::lookup`] or
/// [`SemanticCache::serve_stale`] call increments `lookups` and exactly
/// one of `reuse_hits` / `augment_hits` / `stale_serves` / `misses`, so
///
/// ```text
/// reuse_hits + augment_hits + stale_serves + misses == lookups
/// ```
///
/// always holds. (The previous accounting derived the denominator as
/// `hits + misses`, which silently *under*-counted lookups that errored
/// mid-probe — e.g. an embedder failure — and would have ignored stale
/// serves entirely, inflating the hit ratio.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookup probes (regular + stale).
    pub lookups: u64,
    /// Lookups that returned a reuse hit.
    pub reuse_hits: u64,
    /// Lookups that returned an augment hit.
    pub augment_hits: u64,
    /// Stale entries served during upstream outages.
    pub stale_serves: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted.
    pub evictions: u64,
    /// Inserts rejected by the admission predicate.
    pub rejected: u64,
}

impl CacheStats {
    /// Hit ratio over all lookups (stale serves count as hits — they
    /// did serve an answer). An empty (never-looked-up) cache has a hit
    /// ratio of exactly `0.0`, not NaN — callers embed this straight
    /// into reports.
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.reuse_hits + self.augment_hits + self.stale_serves;
        if self.lookups == 0 {
            0.0
        } else {
            hits as f64 / self.lookups as f64
        }
    }

    /// The accounting invariant: every lookup has exactly one outcome.
    pub fn reconciles(&self) -> bool {
        self.reuse_hits + self.augment_hits + self.stale_serves + self.misses == self.lookups
    }
}

impl llmdm_rt::json::ToJson for CacheStats {
    /// Serialize the counters (plus the derived `hit_ratio`) so trace
    /// reports can embed a cache section next to the span tree.
    fn to_json(&self) -> llmdm_rt::json::Json {
        use llmdm_rt::json::Json;
        Json::Obj(vec![
            ("lookups".to_string(), Json::Num(self.lookups as f64)),
            ("reuse_hits".to_string(), Json::Num(self.reuse_hits as f64)),
            ("augment_hits".to_string(), Json::Num(self.augment_hits as f64)),
            ("stale_serves".to_string(), Json::Num(self.stale_serves as f64)),
            ("misses".to_string(), Json::Num(self.misses as f64)),
            ("evictions".to_string(), Json::Num(self.evictions as f64)),
            ("rejected".to_string(), Json::Num(self.rejected as f64)),
            ("hit_ratio".to_string(), Json::Num(self.hit_ratio())),
        ])
    }
}

#[derive(Debug, Clone)]
struct Entry {
    query: String,
    response: String,
    kind: EntryKind,
    hits: u64,
    last_access: u64,
    weight: f64,
}

/// The semantic cache.
#[derive(Debug)]
pub struct SemanticCache {
    config: CacheConfig,
    embedder: Embedder,
    index: FlatIndex,
    /// Response-keyed index (populated when `match_responses` is on).
    response_index: FlatIndex,
    entries: HashMap<u64, Entry>,
    next_id: u64,
    clock: u64,
    stats: CacheStats,
}

impl SemanticCache {
    /// Create a cache.
    pub fn new(config: CacheConfig) -> Self {
        let embedder = Embedder::standard(config.seed);
        let index = FlatIndex::new(embedder.dim(), Metric::Cosine);
        let response_index = FlatIndex::new(embedder.dim(), Metric::Cosine);
        SemanticCache {
            config,
            embedder,
            index,
            response_index,
            entries: HashMap::new(),
            next_id: 0,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Look up a query; updates recency/frequency/weight on hits.
    ///
    /// Observability: every call opens a `semcache.lookup` span with a
    /// `cache=hit|miss` field (hits add `kind` and `similarity`) and bumps
    /// one of the `semcache.lookup.{reuse,augment,miss}` counters.
    pub fn lookup(&mut self, query: &str) -> Lookup {
        let mut span = llmdm_obs::span("semcache.lookup");
        let miss = |span: &mut llmdm_obs::Span<'_>| {
            if span.is_recording() {
                span.field("cache", "miss");
                llmdm_obs::counter_add("semcache.lookup.miss", 1.0);
            }
            Lookup::Miss
        };
        self.clock += 1;
        self.stats.lookups += 1;
        let Ok(v) = self.embedder.embed(query) else {
            self.stats.misses += 1;
            return miss(&mut span);
        };
        let best = self.index.search(&v, 1).ok().and_then(|hits| hits.into_iter().next());
        // Optional response-keyed match: taken only when it beats the
        // query-keyed match, and only ever as an augment.
        let response_best = if self.config.match_responses {
            self.response_index.search(&v, 1).ok().and_then(|hits| hits.into_iter().next())
        } else {
            None
        };
        let (best, via_response) = match (best, response_best) {
            (Some(q), Some(r)) if r.score > q.score => (Some(r), true),
            (q, None) => (q, false),
            (None, r) => (r, true),
            (q, _) => (q, false),
        };
        let Some(best) = best else {
            self.stats.misses += 1;
            return miss(&mut span);
        };
        if best.score < self.config.augment_threshold {
            self.stats.misses += 1;
            return miss(&mut span);
        }
        let kind = if !via_response && best.score >= self.config.reuse_threshold {
            HitKind::Reuse
        } else {
            HitKind::Augment
        };
        let entry = self.entries.get_mut(&best.id).expect("index and entries are in sync");
        entry.hits += 1;
        entry.last_access = self.clock;
        if let EvictionPolicy::Weighted { reuse_weight, augment_weight } = self.config.policy {
            entry.weight += match kind {
                HitKind::Reuse => reuse_weight,
                HitKind::Augment => augment_weight,
            };
        }
        match kind {
            HitKind::Reuse => self.stats.reuse_hits += 1,
            HitKind::Augment => self.stats.augment_hits += 1,
        }
        if span.is_recording() {
            span.field("cache", "hit");
            span.field(
                "kind",
                match kind {
                    HitKind::Reuse => "reuse",
                    HitKind::Augment => "augment",
                },
            );
            span.field("similarity", best.score as f64);
            match kind {
                HitKind::Reuse => llmdm_obs::counter_add("semcache.lookup.reuse", 1.0),
                HitKind::Augment => llmdm_obs::counter_add("semcache.lookup.augment", 1.0),
            }
        }
        Lookup::Hit {
            query: entry.query.clone(),
            response: entry.response.clone(),
            similarity: best.score,
            kind,
        }
    }

    /// Serve the best *stale-but-similar* entry for `query` during an
    /// upstream outage (§III-C availability trade-off: when the model is
    /// down, a vaguely-related cached answer beats no answer).
    ///
    /// Uses the relaxed [`CacheConfig::stale_threshold`] instead of the
    /// augment threshold, so entries that would normally miss can still
    /// be served. Counts as its own lookup event — `lookups` plus exactly
    /// one of `stale_serves` / `misses` — so the [`CacheStats`]
    /// reconciliation invariant keeps holding even when a caller does a
    /// regular `lookup` (miss) followed by a `serve_stale` for the same
    /// query. Bumps the `resil.stale_serves` counter on success.
    ///
    /// Returns `(cached_query, cached_response, similarity)`.
    pub fn serve_stale(&mut self, query: &str) -> Option<(String, String, f32)> {
        let mut span = llmdm_obs::span("semcache.serve_stale");
        self.clock += 1;
        self.stats.lookups += 1;
        let found = self
            .embedder
            .embed(query)
            .ok()
            .and_then(|v| self.index.search(&v, 1).ok().and_then(|hits| hits.into_iter().next()))
            .filter(|best| best.score >= self.config.stale_threshold);
        let Some(best) = found else {
            self.stats.misses += 1;
            if span.is_recording() {
                span.field("cache", "miss");
            }
            return None;
        };
        let entry = self.entries.get_mut(&best.id).expect("index and entries are in sync");
        entry.hits += 1;
        entry.last_access = self.clock;
        self.stats.stale_serves += 1;
        if span.is_recording() {
            span.field("cache", "stale");
            span.field("similarity", best.score as f64);
        }
        llmdm_obs::counter_add("resil.stale_serves", 1.0);
        Some((entry.query.clone(), entry.response.clone(), best.score))
    }

    /// Insert a (query, response) pair, evicting if full. A query already
    /// cached verbatim is refreshed instead of duplicated.
    pub fn insert(&mut self, query: &str, response: &str, kind: EntryKind) {
        let _span = llmdm_obs::span("semcache.insert");
        llmdm_obs::counter_add("semcache.insert", 1.0);
        self.clock += 1;
        if let Some((&id, _)) = self.entries.iter().find(|(_, e)| e.query == query) {
            let e = self.entries.get_mut(&id).expect("just found");
            e.response = response.to_string();
            e.last_access = self.clock;
            // Keep the response-keyed index in step with the new response.
            if self.config.match_responses {
                let _ = self.response_index.remove(id);
                if let Ok(rv) = self.embedder.embed(response) {
                    let _ = self.response_index.insert(id, rv);
                }
            }
            return;
        }
        let Ok(v) = self.embedder.embed(query) else {
            return;
        };
        while self.entries.len() >= self.config.capacity.max(1) {
            self.evict_one();
        }
        let id = self.next_id;
        self.next_id += 1;
        self.index.insert(id, v).expect("fresh id");
        if self.config.match_responses {
            if let Ok(rv) = self.embedder.embed(response) {
                self.response_index.insert(id, rv).expect("fresh id");
            }
        }
        self.entries.insert(
            id,
            Entry {
                query: query.to_string(),
                response: response.to_string(),
                kind,
                hits: 0,
                last_access: self.clock,
                weight: 1.0,
            },
        );
    }

    /// Record that the admission predictor rejected an insert (for stats).
    pub fn note_rejected(&mut self) {
        self.stats.rejected += 1;
        llmdm_obs::counter_add("semcache.rejected", 1.0);
    }

    /// Iterate cached entries as `(query, response, kind)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, EntryKind)> {
        self.entries.values().map(|e| (e.query.as_str(), e.response.as_str(), e.kind))
    }

    /// Overwrite the lifetime counters — used when rehydrating a cache
    /// from durable storage, so a restarted process keeps reporting
    /// cumulative stats. The replacement must itself reconcile; a
    /// non-reconciling snapshot is rejected to keep the accounting
    /// invariant unbreakable.
    pub fn restore_stats(&mut self, stats: CacheStats) -> Result<(), String> {
        if !stats.reconciles() {
            return Err(format!(
                "refusing to restore non-reconciling stats: {} + {} + {} + {} != {}",
                stats.reuse_hits, stats.augment_hits, stats.stale_serves, stats.misses,
                stats.lookups
            ));
        }
        self.stats = stats;
        Ok(())
    }

    fn evict_one(&mut self) {
        let victim = match self.config.policy {
            EvictionPolicy::Lru => self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_access)
                .map(|(&id, _)| id),
            EvictionPolicy::Lfu => self
                .entries
                .iter()
                .min_by_key(|(_, e)| (e.hits, e.last_access))
                .map(|(&id, _)| id),
            EvictionPolicy::Weighted { .. } => self
                .entries
                .iter()
                .min_by(|(_, a), (_, b)| {
                    a.weight
                        .total_cmp(&b.weight)
                        .then_with(|| a.last_access.cmp(&b.last_access))
                })
                .map(|(&id, _)| id),
        };
        if let Some(id) = victim {
            self.entries.remove(&id);
            let _ = self.index.remove(id);
            let _ = self.response_index.remove(id);
            self.stats.evictions += 1;
            llmdm_obs::counter_add("semcache.evictions", 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize, policy: EvictionPolicy) -> SemanticCache {
        SemanticCache::new(CacheConfig { capacity, policy, ..Default::default() })
    }

    #[test]
    fn exact_repeat_is_reuse_hit() {
        let mut c = cache(16, EvictionPolicy::Lru);
        c.insert("what are the names of stadiums that had concerts in 2014", "SQL-A", EntryKind::Original);
        match c.lookup("what are the names of stadiums that had concerts in 2014") {
            Lookup::Hit { response, kind, similarity, .. } => {
                assert_eq!(response, "SQL-A");
                assert_eq!(kind, HitKind::Reuse);
                assert!(similarity > 0.99);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn similar_query_is_augment_hit() {
        let mut c = cache(16, EvictionPolicy::Lru);
        c.insert(
            "What are the names of stadiums that had concerts in 2014?",
            "SQL-A",
            EntryKind::Original,
        );
        // Same template, different year: similar but not near-identical.
        match c.lookup("What are the names of stadiums that had concerts in 2016?") {
            Lookup::Hit { kind, similarity, .. } => {
                assert_eq!(kind, HitKind::Augment, "similarity was {similarity}");
            }
            other => panic!("expected augment hit, got {other:?}"),
        }
    }

    #[test]
    fn unrelated_query_misses() {
        let mut c = cache(16, EvictionPolicy::Lru);
        c.insert("stadium concerts in 2014", "SQL-A", EntryKind::Original);
        assert_eq!(c.lookup("median household income by postal region"), Lookup::Miss);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn empty_cache_misses() {
        let mut c = cache(4, EvictionPolicy::Lru);
        assert_eq!(c.lookup("anything"), Lookup::Miss);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = cache(2, EvictionPolicy::Lru);
        c.insert("alpha bravo charlie", "1", EntryKind::Original);
        c.insert("delta echo foxtrot", "2", EntryKind::Original);
        // Touch the first so the second becomes LRU.
        let _ = c.lookup("alpha bravo charlie");
        c.insert("golf hotel india", "3", EntryKind::Original);
        assert_eq!(c.len(), 2);
        assert!(matches!(c.lookup("alpha bravo charlie"), Lookup::Hit { .. }));
        assert_eq!(c.lookup("delta echo foxtrot"), Lookup::Miss);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lfu_evicts_least_hit() {
        let mut c = cache(2, EvictionPolicy::Lfu);
        c.insert("alpha bravo charlie", "1", EntryKind::Original);
        c.insert("delta echo foxtrot", "2", EntryKind::Original);
        for _ in 0..3 {
            let _ = c.lookup("delta echo foxtrot");
        }
        c.insert("golf hotel india", "3", EntryKind::Original);
        assert_eq!(c.lookup("alpha bravo charlie"), Lookup::Miss);
        assert!(matches!(c.lookup("delta echo foxtrot"), Lookup::Hit { .. }));
    }

    #[test]
    fn weighted_prefers_keeping_reuse_heavy_entries() {
        let mut c = cache(2, EvictionPolicy::Weighted { reuse_weight: 4.0, augment_weight: 1.0 });
        c.insert("alpha bravo charlie delta", "1", EntryKind::Original);
        c.insert("echo foxtrot golf hotel", "2", EntryKind::Original);
        // Entry 1 gets one reuse hit (weight +4); entry 2 gets two augment
        // hits — lower total weight despite more accesses.
        let _ = c.lookup("alpha bravo charlie delta"); // reuse
        match c.lookup("echo foxtrot golf hotel kilo lima mike november oscar papa") {
            Lookup::Hit { kind: HitKind::Augment, .. } | Lookup::Miss => {}
            other => panic!("unexpected {other:?}"),
        }
        c.insert("papa quebec romeo sierra", "3", EntryKind::Original);
        assert!(matches!(c.lookup("alpha bravo charlie delta"), Lookup::Hit { .. }));
    }

    #[test]
    fn duplicate_insert_refreshes() {
        let mut c = cache(4, EvictionPolicy::Lru);
        c.insert("same query text", "old", EntryKind::Original);
        c.insert("same query text", "new", EntryKind::Original);
        assert_eq!(c.len(), 1);
        match c.lookup("same query text") {
            Lookup::Hit { response, .. } => assert_eq!(response, "new"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hit_ratio_on_empty_cache_is_zero() {
        // No lookups ever: the ratio must be exactly 0.0, never NaN.
        let c = cache(4, EvictionPolicy::Lru);
        let r = c.stats().hit_ratio();
        assert_eq!(r, 0.0);
        assert!(!r.is_nan());
        // Default-constructed stats behave identically.
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn cache_stats_serialize_to_json() {
        use llmdm_rt::json::{Json, ToJson};
        let mut c = cache(4, EvictionPolicy::Lru);
        c.insert("alpha bravo charlie", "1", EntryKind::Original);
        let _ = c.lookup("alpha bravo charlie"); // reuse hit
        let _ = c.lookup("completely unrelated words"); // miss
        c.note_rejected();
        let j = c.stats().to_json();
        let parsed = Json::parse(&j.render()).expect("round-trips");
        assert_eq!(parsed.get("reuse_hits").unwrap().as_u64().unwrap(), 1);
        assert_eq!(parsed.get("misses").unwrap().as_u64().unwrap(), 1);
        assert_eq!(parsed.get("rejected").unwrap().as_u64().unwrap(), 1);
        let ratio = parsed.get("hit_ratio").unwrap().as_f64().unwrap();
        assert!((ratio - 0.5).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn hit_ratio_counts() {
        let mut c = cache(4, EvictionPolicy::Lru);
        c.insert("alpha bravo charlie", "1", EntryKind::SubQuery);
        let _ = c.lookup("alpha bravo charlie");
        let _ = c.lookup("totally different words here");
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn response_matching_yields_augment_hits() {
        let mut c = SemanticCache::new(CacheConfig {
            match_responses: true,
            ..Default::default()
        });
        c.insert(
            "list the stadiums that held concerts",
            "SELECT name FROM stadium WHERE stadium_id IN (SELECT stadium_id FROM concert)",
            EntryKind::Original,
        );
        // A follow-up query phrased like the cached *response*.
        match c.lookup("SELECT name FROM stadium WHERE stadium_id IN (SELECT stadium_id FROM concert WHERE year = 2014)") {
            Lookup::Hit { kind, .. } => assert_eq!(kind, HitKind::Augment),
            Lookup::Miss => panic!("response-similar query should hit"),
        }
        // Without the flag, the same lookup misses.
        let mut plain = SemanticCache::new(CacheConfig::default());
        plain.insert(
            "list the stadiums that held concerts",
            "SELECT name FROM stadium WHERE stadium_id IN (SELECT stadium_id FROM concert)",
            EntryKind::Original,
        );
        assert_eq!(
            plain.lookup("SELECT name FROM stadium WHERE stadium_id IN (SELECT stadium_id FROM concert WHERE year = 2014)"),
            Lookup::Miss
        );
    }

    #[test]
    fn refresh_updates_response_index() {
        let mut c = SemanticCache::new(CacheConfig {
            match_responses: true,
            ..Default::default()
        });
        c.insert("the question", "completely original first response text", EntryKind::Original);
        c.insert("the question", "entirely different second answer body", EntryKind::Original);
        // The stale first response must no longer match…
        assert_eq!(c.lookup("completely original first response text"), Lookup::Miss);
        // …and the fresh one must.
        assert!(matches!(
            c.lookup("entirely different second answer body"),
            Lookup::Hit { .. }
        ));
    }

    #[test]
    fn response_match_never_reuses() {
        let mut c = SemanticCache::new(CacheConfig {
            match_responses: true,
            ..Default::default()
        });
        c.insert("the question", "the exact response text", EntryKind::Original);
        match c.lookup("the exact response text") {
            Lookup::Hit { kind, .. } => assert_eq!(kind, HitKind::Augment),
            Lookup::Miss => panic!("exact response text should at least augment"),
        }
    }

    #[test]
    fn reconciliation_invariant_holds() {
        let mut c = cache(8, EvictionPolicy::Lru);
        c.insert("What are the names of stadiums that had concerts in 2014?", "A", EntryKind::Original);
        c.insert("median household income by postal region", "B", EntryKind::Original);
        // Reuse hit, augment hit, miss, stale-serve, stale-miss.
        let _ = c.lookup("What are the names of stadiums that had concerts in 2014?");
        let _ = c.lookup("What are the names of stadiums that had concerts in 2016?");
        let _ = c.lookup("zzz qqq unrelated garble xyzzy");
        let _ = c.serve_stale("What are the names of stadiums that had concerts in 2015?");
        let _ = c.serve_stale("zzz qqq unrelated garble xyzzy");
        let s = c.stats();
        assert_eq!(s.lookups, 5);
        assert!(
            s.reconciles(),
            "reuse {} + augment {} + stale {} + miss {} != lookups {}",
            s.reuse_hits,
            s.augment_hits,
            s.stale_serves,
            s.misses,
            s.lookups
        );
        assert!(s.stale_serves >= 1, "similar query should stale-serve: {s:?}");
        assert!(s.hit_ratio() > 0.0 && s.hit_ratio() < 1.0);
    }

    #[test]
    fn stale_serve_uses_relaxed_threshold() {
        // A query similar enough for stale service but (possibly) not for
        // augment: serve_stale must succeed whenever similarity clears the
        // lower stale threshold.
        let mut c = SemanticCache::new(CacheConfig {
            stale_threshold: 0.2,
            ..Default::default()
        });
        c.insert("list stadium concert attendance figures", "A", EntryKind::Original);
        let got = c.serve_stale("stadium concert attendance");
        assert!(got.is_some(), "relaxed threshold should serve");
        let (_, resp, sim) = got.unwrap();
        assert_eq!(resp, "A");
        assert!(sim >= 0.2);
        // An empty cache can never stale-serve.
        let mut empty = SemanticCache::new(CacheConfig::default());
        assert!(empty.serve_stale("anything").is_none());
        assert!(empty.stats().reconciles());
    }

    #[test]
    fn capacity_one_still_works() {
        let mut c = cache(1, EvictionPolicy::Lru);
        c.insert("first entry text", "1", EntryKind::Original);
        c.insert("second entry text", "2", EntryKind::Original);
        assert_eq!(c.len(), 1);
    }
}
