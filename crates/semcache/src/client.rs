//! [`CachedLlm`]: a semantic cache in front of a simulated model.
//!
//! Reuse hits short-circuit the model entirely; augment hits extend the
//! prompt with the cached (query, response) pair as an extra example
//! before calling the model (the paper's case 2, which still calls the
//! model but helps it reason); misses call the model unmodified. Responses
//! are inserted subject to the admission predictor.

use std::sync::Arc;

use llmdm_model::prelude::*;
use llmdm_model::PriceTable;

use crate::cache::{EntryKind, HitKind, Lookup, SemanticCache};
use crate::predictor::AccessPredictor;

/// Outcome of a cached ask.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedAnswer {
    /// The answer text.
    pub text: String,
    /// Whether it came from cache (reuse hit or stale serve).
    pub from_cache: bool,
    /// Dollar cost actually incurred (0 for reuse hits and stale serves).
    pub cost: f64,
    /// Whether this was a *stale* serve: the model was unreachable and a
    /// below-augment-threshold cached answer was returned instead of an
    /// error (degraded availability, §III-C).
    pub stale: bool,
}

/// A model wrapped with a semantic cache and an admission predictor.
///
/// The model is held as a trait object, so any [`LanguageModel`] — a bare
/// `SimLlm`, a fault-injecting `FaultyModel`, or a retry-wrapped
/// `ResilientClient` — can sit behind the cache. When the model fails
/// with a *retryable* error (rate limit, timeout, outage), the cache
/// falls back to [`SemanticCache::serve_stale`] before surfacing the
/// error.
pub struct CachedLlm {
    model: Arc<dyn LanguageModel>,
    cache: SemanticCache,
    predictor: Option<AccessPredictor>,
    prices: Option<PriceTable>,
}

impl std::fmt::Debug for CachedLlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedLlm").field("entries", &self.cache.len()).finish()
    }
}

impl CachedLlm {
    /// Wrap `model` with `cache`; `predictor = None` admits everything.
    /// Accepts any concrete model type and erases it internally.
    pub fn new<M: LanguageModel + 'static>(
        model: Arc<M>,
        cache: SemanticCache,
        predictor: Option<AccessPredictor>,
    ) -> Self {
        Self::new_dyn(model, cache, predictor)
    }

    /// Wrap an already-erased trait object.
    pub fn new_dyn(
        model: Arc<dyn LanguageModel>,
        cache: SemanticCache,
        predictor: Option<AccessPredictor>,
    ) -> Self {
        CachedLlm { model, cache, predictor, prices: None }
    }

    /// Supply a price table for [`CachedLlm::hypothetical_cost`] savings
    /// reports (the erased model no longer exposes its meter).
    pub fn with_prices(mut self, prices: PriceTable) -> Self {
        self.prices = Some(prices);
        self
    }

    /// The underlying cache (stats, inspection).
    pub fn cache(&self) -> &SemanticCache {
        &self.cache
    }

    /// The wrapped model.
    pub fn model(&self) -> &Arc<dyn LanguageModel> {
        &self.model
    }

    /// Ask with caching. `key` is the cache key (the user-level question);
    /// `prompt` is the full model prompt to send on a miss; `kind` tags
    /// the entry for the Cache(O)/Cache(A) experiments.
    pub fn ask(
        &mut self,
        key: &str,
        prompt: &str,
        kind: EntryKind,
    ) -> Result<CachedAnswer, ModelError> {
        if let Some(p) = &mut self.predictor {
            p.observe(key);
        }
        let lookup = self.cache.lookup(key);
        match lookup {
            Lookup::Hit { response, kind: HitKind::Reuse, .. } => {
                return Ok(CachedAnswer {
                    text: response,
                    from_cache: true,
                    cost: 0.0,
                    stale: false,
                });
            }
            Lookup::Hit { query, response, kind: HitKind::Augment, .. } => {
                // Extend the prompt with the cached pair as one more
                // example, bumping the examples header so the model's ICL
                // benefit applies.
                let augmented = augment_prompt(prompt, &query, &response);
                let completion = match self.model.complete(&CompletionRequest::new(augmented)) {
                    Ok(c) => c,
                    Err(e) => return self.stale_fallback(key, e),
                };
                self.maybe_insert(key, &completion, kind);
                return Ok(CachedAnswer {
                    text: completion.text,
                    from_cache: false,
                    cost: completion.cost,
                    stale: false,
                });
            }
            Lookup::Miss => {}
        }
        let completion = match self.model.complete(&CompletionRequest::new(prompt.to_string())) {
            Ok(c) => c,
            Err(e) => return self.stale_fallback(key, e),
        };
        self.maybe_insert(key, &completion, kind);
        Ok(CachedAnswer { text: completion.text, from_cache: false, cost: completion.cost, stale: false })
    }

    /// On a *retryable* model failure (rate limit, timeout, outage), try
    /// to serve a stale-but-similar cached answer instead of erroring —
    /// graceful degradation under upstream outage. Non-retryable errors
    /// (bad request, malformed payload) surface unchanged: stale data
    /// can't fix a broken request.
    fn stale_fallback(&mut self, key: &str, err: ModelError) -> Result<CachedAnswer, ModelError> {
        if !err.is_retryable() {
            return Err(err);
        }
        match self.cache.serve_stale(key) {
            Some((_, response, _)) => {
                Ok(CachedAnswer { text: response, from_cache: true, cost: 0.0, stale: true })
            }
            None => Err(err),
        }
    }

    fn maybe_insert(&mut self, key: &str, completion: &Completion, kind: EntryKind) {
        let admit = self.predictor.as_ref().map(|p| p.should_admit(key)).unwrap_or(true);
        if admit {
            self.cache.insert(key, &completion.text, kind);
        } else {
            self.cache.note_rejected();
        }
    }

    /// Tokens that would have been billed for the given usage had the
    /// cache missed — used in savings reports. Requires a price table
    /// supplied via [`CachedLlm::with_prices`]; returns `0.0` otherwise.
    pub fn hypothetical_cost(&self, usage: TokenUsage) -> f64 {
        self.prices
            .as_ref()
            .and_then(|t| t.get(self.model.name()))
            .map(|p| p.cost(usage.input_tokens, usage.output_tokens))
            .unwrap_or(0.0)
    }
}

/// Append a cached example pair to an envelope prompt, incrementing its
/// `examples` header. Shared with the sharded concurrent client so both
/// paths produce byte-identical augmented prompts.
pub(crate) fn augment_prompt(prompt: &str, cached_query: &str, cached_response: &str) -> String {
    let example = format!("Example Q: {cached_query}\nExample SQL: {cached_response}\n");
    // Bump the `### examples:` header if present; else append one.
    let mut out = String::with_capacity(prompt.len() + example.len() + 32);
    let mut bumped = false;
    for line in prompt.split_inclusive('\n') {
        if !bumped {
            if let Some(rest) = line.strip_prefix("### examples: ") {
                if let Ok(n) = rest.trim().parse::<usize>() {
                    out.push_str(&format!("### examples: {}\n", n + 1));
                    bumped = true;
                    continue;
                }
            }
        }
        out.push_str(line);
    }
    out.push('\n');
    out.push_str(&example);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, SemanticCache};
    use llmdm_model::{ModelZoo, PromptEnvelope};

    fn client() -> (ModelZoo, CachedLlm) {
        let zoo = ModelZoo::standard(5);
        let cache = SemanticCache::new(CacheConfig::default());
        let model = zoo.medium();
        (zoo, CachedLlm::new(model, cache, None))
    }

    fn oracle_prompt(q: &str) -> String {
        PromptEnvelope::builder("oracle")
            .header("gold", "the-answer")
            .header("difficulty", "0.0")
            .header("examples", 2)
            .body(q)
            .build()
    }

    #[test]
    fn second_identical_ask_is_free() {
        let (zoo, mut c) = client();
        let q = "what are the names of stadiums that had concerts in 2014";
        let a1 = c.ask(q, &oracle_prompt(q), EntryKind::Original).unwrap();
        assert!(!a1.from_cache);
        assert!(a1.cost > 0.0);
        let calls_before = zoo.meter().snapshot().total_calls();
        let a2 = c.ask(q, &oracle_prompt(q), EntryKind::Original).unwrap();
        assert!(a2.from_cache);
        assert_eq!(a2.cost, 0.0);
        assert_eq!(a2.text, a1.text);
        assert_eq!(zoo.meter().snapshot().total_calls(), calls_before, "no model call on reuse");
    }

    #[test]
    fn similar_ask_augments_and_still_calls_model() {
        let (zoo, mut c) = client();
        let q1 = "What are the names of stadiums that had concerts in 2014?";
        let q2 = "What are the names of stadiums that had concerts in 2016?";
        c.ask(q1, &oracle_prompt(q1), EntryKind::Original).unwrap();
        let calls_before = zoo.meter().snapshot().total_calls();
        let a2 = c.ask(q2, &oracle_prompt(q2), EntryKind::Original).unwrap();
        assert!(!a2.from_cache);
        assert_eq!(zoo.meter().snapshot().total_calls(), calls_before + 1);
        assert_eq!(c.cache().stats().augment_hits, 1);
    }

    #[test]
    fn predictor_gates_admission() {
        let zoo = ModelZoo::standard(5);
        let cache = SemanticCache::new(CacheConfig::default());
        // Very strict admission: needs several observations.
        let predictor = AccessPredictor::with_params(5.0, 0.5);
        let mut c = CachedLlm::new(zoo.medium(), cache, Some(predictor));
        let q = "rarely repeated query shape";
        c.ask(q, &oracle_prompt(q), EntryKind::Original).unwrap();
        assert_eq!(c.cache().len(), 0, "cold shape should not be admitted");
        assert_eq!(c.cache().stats().rejected, 1);
        // Hammer the shape; eventually admitted.
        for _ in 0..6 {
            c.ask(q, &oracle_prompt(q), EntryKind::Original).unwrap();
        }
        assert_eq!(c.cache().len(), 1);
    }

    #[test]
    fn outage_serves_stale_answer_for_free() {
        use llmdm_model::FaultyModel;
        use llmdm_resil::{FaultPlan, FaultRates, SimClock, TierPlan};

        let zoo = ModelZoo::standard(5);
        let q = "What are the names of stadiums that had concerts in 2014?";

        // Warm the cache through a healthy model.
        let mut healthy = CachedLlm::new(
            zoo.medium(),
            SemanticCache::new(CacheConfig::default()),
            None,
        );
        let warm = healthy.ask(q, &oracle_prompt(q), EntryKind::Original).unwrap();
        assert!(!warm.stale);

        // Rebuild the client around a 100%-rate-limited model, carrying
        // the warmed cache over (simulates the upstream going down
        // mid-session).
        let plan = Arc::new(FaultPlan::new(
            "total-outage",
            7,
            vec![TierPlan::with_rates(
                "sim-medium",
                FaultRates { rate_limited: 1.0, ..FaultRates::none() },
            )],
        ));
        let faulty = Arc::new(FaultyModel::new(zoo.medium(), plan, SimClock::new()));
        let CachedLlm { cache, predictor, .. } = healthy;
        let mut down = CachedLlm::new(faulty, cache, predictor);

        // A *similar* (not identical) query: regular lookup augments →
        // model call fails → stale serve kicks in.
        let q2 = "What are the names of stadiums that had concerts in 2016?";
        let a = down.ask(q2, &oracle_prompt(q2), EntryKind::Original).unwrap();
        assert!(a.stale, "outage should degrade to a stale serve");
        assert!(a.from_cache);
        assert_eq!(a.cost, 0.0);
        assert_eq!(a.text, warm.text);
        assert_eq!(down.cache().stats().stale_serves, 1);
        assert!(down.cache().stats().reconciles());

        // A totally unrelated query has nothing stale to serve: the
        // retryable error surfaces.
        let e = down.ask("zzz qqq unrelated", &oracle_prompt("zzz"), EntryKind::Original);
        assert!(e.is_err());
        assert!(e.unwrap_err().is_retryable());
        assert!(down.cache().stats().reconciles());
    }

    #[test]
    fn non_retryable_errors_do_not_stale_serve() {
        use llmdm_model::FaultyModel;
        use llmdm_resil::{FaultPlan, FaultRates, SimClock, TierPlan};

        let zoo = ModelZoo::standard(5);
        let plan = Arc::new(FaultPlan::new(
            "malformed",
            3,
            vec![TierPlan::with_rates(
                "sim-medium",
                FaultRates { malformed: 1.0, ..FaultRates::none() },
            )],
        ));
        let faulty = Arc::new(FaultyModel::new(zoo.medium(), plan, SimClock::new()));
        let mut c = CachedLlm::new(faulty, SemanticCache::new(CacheConfig::default()), None);
        // Even with a perfectly-matching entry available, a non-retryable
        // error must surface rather than mask a broken request.
        c.cache.insert("the query", "cached answer", EntryKind::Original);
        let got = c.ask("the query different year", &oracle_prompt("q"), EntryKind::Original);
        assert!(got.is_err());
        assert_eq!(c.cache().stats().stale_serves, 0);
    }

    #[test]
    fn hypothetical_cost_needs_price_table() {
        let zoo = ModelZoo::standard(5);
        let usage = TokenUsage { input_tokens: 1000, output_tokens: 100 };
        let bare = CachedLlm::new(zoo.medium(), SemanticCache::new(CacheConfig::default()), None);
        assert_eq!(bare.hypothetical_cost(usage), 0.0);
        let priced = CachedLlm::new(zoo.medium(), SemanticCache::new(CacheConfig::default()), None)
            .with_prices(zoo.meter().prices().clone());
        assert!(priced.hypothetical_cost(usage) > 0.0);
    }

    #[test]
    fn augment_prompt_bumps_examples_header() {
        let p = PromptEnvelope::builder("nl2sql").header("examples", 4).body("Q: x\n").build();
        let out = augment_prompt(&p, "cached q", "cached sql");
        let env = PromptEnvelope::parse(&out).unwrap();
        assert_eq!(env.examples(), 5);
        assert!(out.contains("Example Q: cached q"));
    }
}
