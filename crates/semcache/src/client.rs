//! [`CachedLlm`]: a semantic cache in front of a simulated model.
//!
//! Reuse hits short-circuit the model entirely; augment hits extend the
//! prompt with the cached (query, response) pair as an extra example
//! before calling the model (the paper's case 2, which still calls the
//! model but helps it reason); misses call the model unmodified. Responses
//! are inserted subject to the admission predictor.

use std::sync::Arc;

use llmdm_model::{Completion, CompletionRequest, LanguageModel, ModelError, SimLlm, TokenUsage};

use crate::cache::{EntryKind, HitKind, Lookup, SemanticCache};
use crate::predictor::AccessPredictor;

/// Outcome of a cached ask.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedAnswer {
    /// The answer text.
    pub text: String,
    /// Whether it came from cache (reuse hit).
    pub from_cache: bool,
    /// Dollar cost actually incurred (0 for reuse hits).
    pub cost: f64,
}

/// A model wrapped with a semantic cache and an admission predictor.
pub struct CachedLlm {
    model: Arc<SimLlm>,
    cache: SemanticCache,
    predictor: Option<AccessPredictor>,
}

impl std::fmt::Debug for CachedLlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedLlm").field("entries", &self.cache.len()).finish()
    }
}

impl CachedLlm {
    /// Wrap `model` with `cache`; `predictor = None` admits everything.
    pub fn new(model: Arc<SimLlm>, cache: SemanticCache, predictor: Option<AccessPredictor>) -> Self {
        CachedLlm { model, cache, predictor }
    }

    /// The underlying cache (stats, inspection).
    pub fn cache(&self) -> &SemanticCache {
        &self.cache
    }

    /// Ask with caching. `key` is the cache key (the user-level question);
    /// `prompt` is the full model prompt to send on a miss; `kind` tags
    /// the entry for the Cache(O)/Cache(A) experiments.
    pub fn ask(
        &mut self,
        key: &str,
        prompt: &str,
        kind: EntryKind,
    ) -> Result<CachedAnswer, ModelError> {
        if let Some(p) = &mut self.predictor {
            p.observe(key);
        }
        let lookup = self.cache.lookup(key);
        match lookup {
            Lookup::Hit { response, kind: HitKind::Reuse, .. } => {
                return Ok(CachedAnswer { text: response, from_cache: true, cost: 0.0 });
            }
            Lookup::Hit { query, response, kind: HitKind::Augment, .. } => {
                // Extend the prompt with the cached pair as one more
                // example, bumping the examples header so the model's ICL
                // benefit applies.
                let augmented = augment_prompt(prompt, &query, &response);
                let completion = self.model.complete(&CompletionRequest::new(augmented))?;
                self.maybe_insert(key, &completion, kind);
                return Ok(CachedAnswer {
                    text: completion.text,
                    from_cache: false,
                    cost: completion.cost,
                });
            }
            Lookup::Miss => {}
        }
        let completion = self.model.complete(&CompletionRequest::new(prompt.to_string()))?;
        self.maybe_insert(key, &completion, kind);
        Ok(CachedAnswer { text: completion.text, from_cache: false, cost: completion.cost })
    }

    fn maybe_insert(&mut self, key: &str, completion: &Completion, kind: EntryKind) {
        let admit = self.predictor.as_ref().map(|p| p.should_admit(key)).unwrap_or(true);
        if admit {
            self.cache.insert(key, &completion.text, kind);
        } else {
            self.cache.note_rejected();
        }
    }

    /// Tokens that would have been billed for the given usage had the
    /// cache missed — used in savings reports.
    pub fn hypothetical_cost(&self, usage: TokenUsage) -> f64 {
        self.model
            .meter()
            .prices()
            .get(self.model.name())
            .map(|p| p.cost(usage.input_tokens, usage.output_tokens))
            .unwrap_or(0.0)
    }
}

/// Append a cached example pair to an envelope prompt, incrementing its
/// `examples` header.
fn augment_prompt(prompt: &str, cached_query: &str, cached_response: &str) -> String {
    let example = format!("Example Q: {cached_query}\nExample SQL: {cached_response}\n");
    // Bump the `### examples:` header if present; else append one.
    let mut out = String::with_capacity(prompt.len() + example.len() + 32);
    let mut bumped = false;
    for line in prompt.split_inclusive('\n') {
        if !bumped {
            if let Some(rest) = line.strip_prefix("### examples: ") {
                if let Ok(n) = rest.trim().parse::<usize>() {
                    out.push_str(&format!("### examples: {}\n", n + 1));
                    bumped = true;
                    continue;
                }
            }
        }
        out.push_str(line);
    }
    out.push('\n');
    out.push_str(&example);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, SemanticCache};
    use llmdm_model::{ModelZoo, PromptEnvelope};

    fn client() -> (ModelZoo, CachedLlm) {
        let zoo = ModelZoo::standard(5);
        let cache = SemanticCache::new(CacheConfig::default());
        let model = zoo.medium();
        (zoo, CachedLlm::new(model, cache, None))
    }

    fn oracle_prompt(q: &str) -> String {
        PromptEnvelope::builder("oracle")
            .header("gold", "the-answer")
            .header("difficulty", "0.0")
            .header("examples", 2)
            .body(q)
            .build()
    }

    #[test]
    fn second_identical_ask_is_free() {
        let (zoo, mut c) = client();
        let q = "what are the names of stadiums that had concerts in 2014";
        let a1 = c.ask(q, &oracle_prompt(q), EntryKind::Original).unwrap();
        assert!(!a1.from_cache);
        assert!(a1.cost > 0.0);
        let calls_before = zoo.meter().snapshot().total_calls();
        let a2 = c.ask(q, &oracle_prompt(q), EntryKind::Original).unwrap();
        assert!(a2.from_cache);
        assert_eq!(a2.cost, 0.0);
        assert_eq!(a2.text, a1.text);
        assert_eq!(zoo.meter().snapshot().total_calls(), calls_before, "no model call on reuse");
    }

    #[test]
    fn similar_ask_augments_and_still_calls_model() {
        let (zoo, mut c) = client();
        let q1 = "What are the names of stadiums that had concerts in 2014?";
        let q2 = "What are the names of stadiums that had concerts in 2016?";
        c.ask(q1, &oracle_prompt(q1), EntryKind::Original).unwrap();
        let calls_before = zoo.meter().snapshot().total_calls();
        let a2 = c.ask(q2, &oracle_prompt(q2), EntryKind::Original).unwrap();
        assert!(!a2.from_cache);
        assert_eq!(zoo.meter().snapshot().total_calls(), calls_before + 1);
        assert_eq!(c.cache().stats().augment_hits, 1);
    }

    #[test]
    fn predictor_gates_admission() {
        let zoo = ModelZoo::standard(5);
        let cache = SemanticCache::new(CacheConfig::default());
        // Very strict admission: needs several observations.
        let predictor = AccessPredictor::with_params(5.0, 0.5);
        let mut c = CachedLlm::new(zoo.medium(), cache, Some(predictor));
        let q = "rarely repeated query shape";
        c.ask(q, &oracle_prompt(q), EntryKind::Original).unwrap();
        assert_eq!(c.cache().len(), 0, "cold shape should not be admitted");
        assert_eq!(c.cache().stats().rejected, 1);
        // Hammer the shape; eventually admitted.
        for _ in 0..6 {
            c.ask(q, &oracle_prompt(q), EntryKind::Original).unwrap();
        }
        assert_eq!(c.cache().len(), 1);
    }

    #[test]
    fn augment_prompt_bumps_examples_header() {
        let p = PromptEnvelope::builder("nl2sql").header("examples", 4).body("Q: x\n").build();
        let out = augment_prompt(&p, "cached q", "cached sql");
        let env = PromptEnvelope::parse(&out).unwrap();
        assert_eq!(env.examples(), 5);
        assert!(out.contains("Example Q: cached q"));
    }
}
