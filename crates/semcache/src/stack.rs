//! [`CacheStackExt`] — grafts a semantic cache onto
//! [`llmdm_model::ModelStack`] without a circular dependency.
//!
//! `llmdm-model` cannot depend on this crate, so the builder exposes a
//! generic [`ModelStack::with_layer`] escape hatch; this module supplies
//! the concrete cache layer: [`CachedModel`], a [`LanguageModel`]
//! decorator that probes a [`SharedCache`] before delegating, and the
//! extension trait adding the fluent `.with_cache(…)` verb:
//!
//! ```
//! use llmdm_model::prelude::*;
//! use llmdm_semcache::{shared_cache, CacheConfig, CacheStackExt};
//!
//! let zoo = ModelZoo::standard(42);
//! let cache = shared_cache(CacheConfig::default());
//! let model = ModelStack::new(&zoo)
//!     .with_default_retry()
//!     .with_cache(cache.clone()) // outermost: probes before retrying
//!     .build();
//! let req = CompletionRequest::new("### task: echo\nhello");
//! let a = model.complete(&req).unwrap();
//! let b = model.complete(&req).unwrap(); // reuse hit, free
//! assert_eq!(a.text, b.text);
//! assert_eq!(b.cost, 0.0);
//! assert_eq!(llmdm_rt::lock_recover(&cache).stats().reuse_hits, 1);
//! ```
//!
//! Unlike [`crate::CachedLlm`] (whose cache *key* can differ from the
//! model *prompt* — the decomposition experiments key on the user
//! question), this layer keys on the full prompt, which is the right
//! semantics inside a generic decorator chain where no out-of-band key
//! exists. Reuse hits synthesize a zero-cost [`Completion`]; augment
//! hits rewrite the prompt with the cached example before delegating.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use llmdm_model::prelude::*;
use llmdm_model::ModelStack;

use crate::cache::{CacheConfig, EntryKind, HitKind, Lookup, SemanticCache};
use crate::client::augment_prompt;

/// A semantic cache shareable between the stack layer and the caller
/// (who keeps a handle for stats/inspection after `build()` erases the
/// stack).
pub type SharedCache = Arc<Mutex<SemanticCache>>;

/// Construct a [`SharedCache`] from a config.
pub fn shared_cache(config: CacheConfig) -> SharedCache {
    Arc::new(Mutex::new(SemanticCache::new(config)))
}

/// A [`LanguageModel`] decorator that consults a [`SharedCache`] keyed on
/// the request prompt before delegating to the inner model.
pub struct CachedModel {
    inner: Arc<dyn LanguageModel>,
    cache: SharedCache,
}

impl CachedModel {
    /// Wrap `inner` with `cache`.
    pub fn new(inner: Arc<dyn LanguageModel>, cache: SharedCache) -> Self {
        CachedModel { inner, cache }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SemanticCache> {
        llmdm_rt::lock_recover(&self.cache)
    }
}

impl LanguageModel for CachedModel {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, req: &CompletionRequest) -> Result<Completion, ModelError> {
        let hit = self.lock().lookup(&req.prompt);
        match hit {
            Lookup::Hit { response, kind: HitKind::Reuse, .. } => Ok(Completion {
                text: response,
                model: format!("{}+cache", self.inner.name()),
                usage: TokenUsage::default(),
                cost: 0.0,
                latency: Duration::ZERO,
                confidence: 1.0,
            }),
            Lookup::Hit { query, response, kind: HitKind::Augment, .. } => {
                let augmented = augment_prompt(&req.prompt, &query, &response);
                let inner_req = CompletionRequest {
                    prompt: augmented,
                    max_output_tokens: req.max_output_tokens,
                };
                let c = self.inner.complete(&inner_req)?;
                self.lock().insert(&req.prompt, &c.text, EntryKind::Original);
                Ok(c)
            }
            Lookup::Miss => {
                let c = self.inner.complete(req)?;
                self.lock().insert(&req.prompt, &c.text, EntryKind::Original);
                Ok(c)
            }
        }
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
}

/// Adds the `.with_cache(…)` verb to [`ModelStack`].
pub trait CacheStackExt {
    /// Wrap the current top of the stack in a prompt-keyed semantic
    /// cache. Apply *last* so the cache probes before any retry/fault
    /// layers burn budget.
    fn with_cache(self, cache: SharedCache) -> Self;
}

impl CacheStackExt for ModelStack {
    fn with_cache(self, cache: SharedCache) -> Self {
        self.with_layer(|inner, _clock| Arc::new(CachedModel::new(inner, cache)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_model::PromptEnvelope;

    fn oracle_req(q: &str) -> CompletionRequest {
        CompletionRequest::new(
            PromptEnvelope::builder("oracle")
                .header("gold", "the-answer")
                .header("difficulty", "0.0")
                .header("examples", 2)
                .body(q)
                .build(),
        )
    }

    #[test]
    fn reuse_hit_is_free_and_identical() {
        let zoo = ModelZoo::standard(3);
        let cache = shared_cache(CacheConfig::default());
        let model = ModelStack::new(&zoo).with_cache(cache.clone()).build();
        let req = oracle_req("what stadiums had concerts in 2014");
        let a = model.complete(&req).unwrap();
        let calls = zoo.meter().snapshot().total_calls();
        let b = model.complete(&req).unwrap();
        assert_eq!(a.text, b.text);
        assert_eq!(b.cost, 0.0);
        assert_eq!(zoo.meter().snapshot().total_calls(), calls, "reuse must not call the model");
        assert!(llmdm_rt::lock_recover(&cache).stats().reconciles());
    }

    #[test]
    fn augment_hit_still_calls_model() {
        let zoo = ModelZoo::standard(3);
        // Prompt-keyed caching shares envelope boilerplate between keys,
        // which inflates similarity — a tighter reuse threshold keeps
        // near-duplicates in the augment band.
        let cache = shared_cache(CacheConfig { reuse_threshold: 0.995, ..Default::default() });
        let model = ModelStack::new(&zoo).with_cache(cache.clone()).build();
        model
            .complete(&oracle_req("What are the names of stadiums that had concerts in 2014?"))
            .unwrap();
        let calls = zoo.meter().snapshot().total_calls();
        let b = model
            .complete(&oracle_req("What are the names of stadiums that had concerts in 2016?"))
            .unwrap();
        assert!(b.cost > 0.0);
        assert_eq!(zoo.meter().snapshot().total_calls(), calls + 1);
        assert_eq!(llmdm_rt::lock_recover(&cache).stats().augment_hits, 1);
    }

    #[test]
    fn cache_composes_with_fault_and_retry_layers() {
        use llmdm_resil::FaultPlan;
        let zoo = ModelZoo::standard(3);
        let cache = shared_cache(CacheConfig::default());
        let stack = ModelStack::new(&zoo)
            .with_faults(Arc::new(FaultPlan::none()))
            .with_default_retry()
            .with_cache(cache.clone());
        let faulty = stack.faulty().unwrap().clone();
        let model = stack.build();
        let req = oracle_req("concert attendance by year");
        model.complete(&req).unwrap();
        model.complete(&req).unwrap(); // reuse
        assert_eq!(
            zoo.meter().snapshot().total_calls(),
            1,
            "second ask must be served from cache"
        );
        let diff = (faulty.executed_cost() - zoo.meter().snapshot().total_dollars()).abs();
        assert!(diff < 1e-9);
    }
}
