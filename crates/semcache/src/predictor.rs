//! Admission prediction: should a new (query, response) pair be cached?
//!
//! §III-C: "we need to decide whether to cache the original queries and
//! sub-queries, or refrain from caching based on the likelihood of future
//! access. Predictive methods, such as machine learning models, can be
//! designed to predict the probability of future access."
//!
//! [`AccessPredictor`] is an online frequency model over *template
//! buckets*: queries are reduced to a shape signature (numbers and rare
//! tokens dropped), and the predictor estimates future-access probability
//! from how often the bucket has been seen: `p = 1 - exp(-n/τ)`. Workloads
//! with recurring templates (the paper's premise: "different users may
//! process similar tasks") quickly push recurring buckets over the
//! admission threshold.

use std::collections::HashMap;

/// Online future-access predictor.
#[derive(Debug, Clone)]
pub struct AccessPredictor {
    counts: HashMap<u64, u32>,
    /// Temperature τ of the saturation curve.
    tau: f64,
    /// Admission threshold on predicted probability.
    threshold: f64,
}

impl Default for AccessPredictor {
    fn default() -> Self {
        AccessPredictor { counts: HashMap::new(), tau: 2.0, threshold: 0.3 }
    }
}

impl AccessPredictor {
    /// Predictor with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Predictor with explicit saturation temperature and threshold.
    pub fn with_params(tau: f64, threshold: f64) -> Self {
        AccessPredictor { counts: HashMap::new(), tau: tau.max(1e-6), threshold }
    }

    /// The template-shape signature of a query: lowercase alphabetic
    /// tokens only, digits replaced by `#`.
    fn signature(query: &str) -> u64 {
        let mut sig = String::new();
        for tok in query.to_lowercase().split_whitespace() {
            if tok.chars().all(|c| c.is_ascii_digit()) {
                sig.push_str("# ");
            } else {
                sig.push_str(tok);
                sig.push(' ');
            }
        }
        llmdm_model::hash::fnv1a_str(&sig)
    }

    /// Record an observation of this query shape.
    pub fn observe(&mut self, query: &str) {
        *self.counts.entry(Self::signature(query)).or_insert(0) += 1;
    }

    /// Predicted probability this query shape will be accessed again.
    pub fn predict(&self, query: &str) -> f64 {
        let n = self.counts.get(&Self::signature(query)).copied().unwrap_or(0) as f64;
        1.0 - (-n / self.tau).exp()
    }

    /// Whether a pair with this query should be admitted to the cache.
    pub fn should_admit(&self, query: &str) -> bool {
        self.predict(query) >= self.threshold
    }

    /// Number of distinct shapes seen.
    pub fn shapes(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_shapes_gain_probability() {
        let mut p = AccessPredictor::new();
        assert_eq!(p.predict("show stadiums for 2014"), 0.0);
        p.observe("show stadiums for 2014");
        let one = p.predict("show stadiums for 2014");
        p.observe("show stadiums for 2014");
        let two = p.predict("show stadiums for 2014");
        assert!(two > one);
        assert!(one > 0.0);
    }

    #[test]
    fn numbers_are_templated() {
        let mut p = AccessPredictor::new();
        p.observe("show stadiums for 2014");
        // Different year, same template → shares the bucket.
        assert!(p.predict("show stadiums for 2016") > 0.0);
        // Different template → cold.
        assert_eq!(p.predict("delete all users"), 0.0);
    }

    #[test]
    fn admission_threshold() {
        let mut p = AccessPredictor::with_params(1.0, 0.5);
        p.observe("q template");
        assert!(p.should_admit("q template")); // 1 - e^-1 ≈ 0.63 ≥ 0.5
        assert!(!p.should_admit("never seen template"));
    }

    #[test]
    fn shape_count() {
        let mut p = AccessPredictor::new();
        p.observe("a b 1");
        p.observe("a b 2");
        p.observe("c d");
        assert_eq!(p.shapes(), 2);
    }

    #[test]
    fn probability_bounded() {
        let mut p = AccessPredictor::new();
        for _ in 0..1000 {
            p.observe("hot template");
        }
        let pr = p.predict("hot template");
        assert!((0.0..=1.0).contains(&pr));
        assert!(pr > 0.99);
    }
}
