//! [`ShardedCache`] — a lock-striped [`SemanticCache`] for concurrent
//! serving, plus [`ConcurrentCachedLlm`], the `&self` counterpart of
//! [`crate::CachedLlm`].
//!
//! The single-threaded cache takes `&mut self` on every probe, which
//! would serialize an entire worker pool behind one lock. Instead the
//! serving layer shards the cache into `N` independent
//! `RwLock<SemanticCache>` stripes and routes each query to exactly one
//! shard by locality-sensitive hashing: the **sign bits of the leading
//! embedding dimensions** form the shard key, so
//!
//! * an exact repeat always routes to the same shard and therefore still
//!   gets its reuse hit, and
//! * near-duplicate queries (which differ in a few characters and hence
//!   barely move the embedding) usually share leading signs and
//!   co-locate, preserving most augment hits.
//!
//! Cross-shard similarity is sacrificed by design — that is the standard
//! price of sharding a similarity index, and the paper's reuse case
//! (§III-C case 1) is exact-repeat dominated.
//!
//! **Accounting invariant.** Each shard is a full [`SemanticCache`], so
//! `reuse + augment + stale + misses == lookups` holds *per shard* by
//! construction; [`ShardedCache::stats`] sums the per-shard counters, and
//! a sum of reconciling stats reconciles, so the invariant also holds
//! globally under arbitrary interleavings (stress-tested in
//! `tests/concurrent_stress.rs`).

use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use llmdm_model::prelude::*;
use llmdm_model::Embedder;

use crate::cache::{CacheConfig, CacheStats, EntryKind, HitKind, Lookup, SemanticCache};
use crate::client::{augment_prompt, CachedAnswer};
use crate::predictor::AccessPredictor;

/// How many leading embedding dimensions contribute a sign bit to the
/// shard key (2^8 = 256 raw buckets, folded mod `shards`).
const ROUTE_BITS: usize = 8;

/// A semantic cache split into independently-locked shards.
pub struct ShardedCache {
    shards: Vec<RwLock<SemanticCache>>,
    /// Routing embedder — a clone of the per-shard embedder (same seed),
    /// so routing and in-shard similarity live in the same space.
    router: Embedder,
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache").field("shards", &self.shards.len()).finish()
    }
}

impl ShardedCache {
    /// Create a cache with `shards` stripes. The configured capacity is
    /// the *global* budget: each shard gets `capacity / shards` slots
    /// (at least one). `shards` is clamped to ≥ 1.
    pub fn new(config: CacheConfig, shards: usize) -> Self {
        let n = shards.max(1);
        let per_shard =
            CacheConfig { capacity: (config.capacity / n).max(1), ..config };
        ShardedCache {
            shards: (0..n).map(|_| RwLock::new(SemanticCache::new(per_shard))).collect(),
            router: Embedder::standard(config.seed),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Deterministic shard index for `query`: the sign bits of the first
    /// [`ROUTE_BITS`] embedding dimensions, folded mod the shard count.
    /// Falls back to FNV-1a of the raw bytes if embedding fails, so every
    /// query routes somewhere and repeats stay sticky.
    pub fn route(&self, query: &str) -> usize {
        match self.router.embed(query) {
            Ok(v) => {
                let mut key = 0usize;
                for x in v.iter().take(ROUTE_BITS) {
                    key = (key << 1) | usize::from(*x >= 0.0);
                }
                key % self.shards.len()
            }
            Err(_) => {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in query.as_bytes() {
                    h ^= u64::from(*b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                (h as usize) % self.shards.len()
            }
        }
    }

    fn write(&self, shard: usize) -> RwLockWriteGuard<'_, SemanticCache> {
        llmdm_rt::write_recover(&self.shards[shard])
    }

    fn read(&self, shard: usize) -> RwLockReadGuard<'_, SemanticCache> {
        llmdm_rt::read_recover(&self.shards[shard])
    }

    /// Look up a query on its home shard. Exactly one shard is locked.
    pub fn lookup(&self, query: &str) -> Lookup {
        self.write(self.route(query)).lookup(query)
    }

    /// Stale-serve from the query's home shard (outage degradation).
    pub fn serve_stale(&self, query: &str) -> Option<(String, String, f32)> {
        self.write(self.route(query)).serve_stale(query)
    }

    /// Insert on the query's home shard.
    pub fn insert(&self, query: &str, response: &str, kind: EntryKind) {
        self.write(self.route(query)).insert(query, response, kind);
    }

    /// Record an admission rejection against the query's home shard (the
    /// shard that *would* have stored it).
    pub fn note_rejected(&self, query: &str) {
        self.write(self.route(query)).note_rejected();
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.read(i).len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard lifetime counters (each reconciles independently).
    pub fn stats_per_shard(&self) -> Vec<CacheStats> {
        (0..self.shards.len()).map(|i| self.read(i).stats()).collect()
    }

    /// Global counters: the field-wise sum over shards. Because each
    /// shard reconciles, the sum reconciles too.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in self.stats_per_shard() {
            total.lookups += s.lookups;
            total.reuse_hits += s.reuse_hits;
            total.augment_hits += s.augment_hits;
            total.stale_serves += s.stale_serves;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.rejected += s.rejected;
        }
        total
    }
}

/// The `&self` (shareable) counterpart of [`crate::CachedLlm`]: a sharded
/// semantic cache in front of a thread-safe model, usable directly from a
/// serving worker pool without an outer lock.
///
/// Semantics mirror [`crate::CachedLlm::ask`] exactly — reuse hits are
/// free, augment hits extend the prompt via the same
/// `augment_prompt` helper, retryable model failures degrade to stale
/// serves — the only difference is which shard's lock each cache
/// operation takes.
pub struct ConcurrentCachedLlm {
    model: Arc<dyn LanguageModel>,
    cache: ShardedCache,
    predictor: Option<Mutex<AccessPredictor>>,
}

impl std::fmt::Debug for ConcurrentCachedLlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentCachedLlm").field("entries", &self.cache.len()).finish()
    }
}

impl ConcurrentCachedLlm {
    /// Wrap `model` with a sharded cache; `predictor = None` admits all.
    pub fn new(
        model: Arc<dyn LanguageModel>,
        cache: ShardedCache,
        predictor: Option<AccessPredictor>,
    ) -> Self {
        ConcurrentCachedLlm { model, cache, predictor: predictor.map(Mutex::new) }
    }

    /// The underlying sharded cache (stats, inspection).
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// The wrapped model.
    pub fn model(&self) -> &Arc<dyn LanguageModel> {
        &self.model
    }

    /// Ask with caching; see [`crate::CachedLlm::ask`] for the contract.
    /// Takes `&self`, so any number of workers may call it concurrently.
    pub fn ask(
        &self,
        key: &str,
        prompt: &str,
        kind: EntryKind,
    ) -> Result<CachedAnswer, ModelError> {
        if let Some(p) = &self.predictor {
            llmdm_rt::lock_recover(p).observe(key);
        }
        match self.cache.lookup(key) {
            Lookup::Hit { response, kind: HitKind::Reuse, .. } => {
                return Ok(CachedAnswer {
                    text: response,
                    from_cache: true,
                    cost: 0.0,
                    stale: false,
                });
            }
            Lookup::Hit { query, response, kind: HitKind::Augment, .. } => {
                let augmented = augment_prompt(prompt, &query, &response);
                let completion = match self.model.complete(&CompletionRequest::new(augmented)) {
                    Ok(c) => c,
                    Err(e) => return self.stale_fallback(key, e),
                };
                self.maybe_insert(key, &completion, kind);
                return Ok(CachedAnswer {
                    text: completion.text,
                    from_cache: false,
                    cost: completion.cost,
                    stale: false,
                });
            }
            Lookup::Miss => {}
        }
        let completion = match self.model.complete(&CompletionRequest::new(prompt.to_string())) {
            Ok(c) => c,
            Err(e) => return self.stale_fallback(key, e),
        };
        self.maybe_insert(key, &completion, kind);
        Ok(CachedAnswer {
            text: completion.text,
            from_cache: false,
            cost: completion.cost,
            stale: false,
        })
    }

    fn stale_fallback(&self, key: &str, err: ModelError) -> Result<CachedAnswer, ModelError> {
        if !err.is_retryable() {
            return Err(err);
        }
        match self.cache.serve_stale(key) {
            Some((_, response, _)) => {
                Ok(CachedAnswer { text: response, from_cache: true, cost: 0.0, stale: true })
            }
            None => Err(err),
        }
    }

    fn maybe_insert(&self, key: &str, completion: &Completion, kind: EntryKind) {
        let admit = self
            .predictor
            .as_ref()
            .map(|p| llmdm_rt::lock_recover(p).should_admit(key))
            .unwrap_or(true);
        if admit {
            self.cache.insert(key, &completion.text, kind);
        } else {
            self.cache.note_rejected(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_model::PromptEnvelope;

    fn sharded(n: usize) -> ShardedCache {
        ShardedCache::new(CacheConfig::default(), n)
    }

    fn oracle_prompt(q: &str) -> String {
        PromptEnvelope::builder("oracle")
            .header("gold", "the-answer")
            .header("difficulty", "0.0")
            .header("examples", 2)
            .body(q)
            .build()
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let c = sharded(4);
        for q in ["alpha bravo", "charlie delta", "echo foxtrot", ""] {
            let s = c.route(q);
            assert!(s < 4);
            assert_eq!(s, c.route(q), "same query must route to the same shard");
        }
    }

    #[test]
    fn exact_repeat_reuses_across_any_shard_count() {
        for n in [1, 2, 4, 8] {
            let c = sharded(n);
            c.insert("what stadiums had concerts in 2014", "SQL-A", EntryKind::Original);
            match c.lookup("what stadiums had concerts in 2014") {
                Lookup::Hit { kind: HitKind::Reuse, response, .. } => {
                    assert_eq!(response, "SQL-A");
                }
                other => panic!("n={n}: expected reuse, got {other:?}"),
            }
        }
    }

    #[test]
    fn similar_queries_colocate_and_augment() {
        let c = sharded(4);
        let q1 = "What are the names of stadiums that had concerts in 2014?";
        let q2 = "What are the names of stadiums that had concerts in 2016?";
        // The LSH routing must send the near-duplicate to the same shard…
        assert_eq!(c.route(q1), c.route(q2), "near-duplicates must co-locate");
        c.insert(q1, "SQL-A", EntryKind::Original);
        // …so it still gets its augment hit.
        match c.lookup(q2) {
            Lookup::Hit { kind: HitKind::Augment, .. } => {}
            other => panic!("expected augment, got {other:?}"),
        }
    }

    #[test]
    fn per_shard_and_global_stats_reconcile() {
        let c = sharded(4);
        let queries = [
            "What are the names of stadiums that had concerts in 2014?",
            "median household income by postal region",
            "list all singers ordered by age",
            "total concert attendance per year",
        ];
        for q in queries {
            c.insert(q, "A", EntryKind::Original);
        }
        for q in queries {
            let _ = c.lookup(q); // reuse
        }
        let _ = c.lookup("zzz qqq unrelated garble xyzzy");
        let _ = c.serve_stale("list all the singers ordered by their age");
        for (i, s) in c.stats_per_shard().into_iter().enumerate() {
            assert!(s.reconciles(), "shard {i} does not reconcile: {s:?}");
        }
        let g = c.stats();
        assert!(g.reconciles(), "global stats do not reconcile: {g:?}");
        assert_eq!(g.lookups, 6);
        assert_eq!(g.reuse_hits, 4);
    }

    #[test]
    fn concurrent_asks_stay_consistent() {
        let zoo = ModelZoo::standard(11);
        let llm = ConcurrentCachedLlm::new(
            zoo.medium(),
            ShardedCache::new(CacheConfig { capacity: 512, ..Default::default() }, 4),
            None,
        );
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let llm = &llm;
                scope.spawn(move || {
                    for i in 0..50usize {
                        let q = format!("query template number {} for worker", (t * 50 + i) % 20);
                        llm.ask(&q, &oracle_prompt(&q), EntryKind::Original).unwrap();
                    }
                });
            }
        });
        let g = llm.cache().stats();
        assert_eq!(g.lookups, 200);
        assert!(g.reconciles(), "{g:?}");
        assert!(g.reuse_hits > 0, "repeated templates must produce reuse hits");
        // Every dollar the cache paid is on the zoo's meter (reuse hits
        // are free, model calls are billed) — the cache can't have spent
        // money the meter didn't see.
        assert!(zoo.meter().snapshot().total_dollars() > 0.0);
    }

    #[test]
    fn capacity_splits_across_shards() {
        let c = ShardedCache::new(CacheConfig { capacity: 8, ..Default::default() }, 4);
        // 30 distinct inserts through 4 shards of capacity 2 each: never
        // more than 8 entries survive.
        for i in 0..30 {
            c.insert(&format!("wholly distinct query text number {i}"), "r", EntryKind::Original);
        }
        assert!(c.len() <= 8, "len {} exceeds global budget", c.len());
        assert!(c.stats().evictions > 0);
    }
}
