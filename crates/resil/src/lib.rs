//! # llmdm-resil — deterministic fault injection + resilience machinery
//!
//! The paper's challenge sections (§III-B query optimization, §III-C
//! cache optimization, §III-D output validation) all presume LLM calls
//! that *fail*: they rate-limit, time out, truncate, and return
//! malformed payloads. This crate supplies both sides of that coin for
//! the whole workspace, with the same determinism guarantees as the
//! rest of the stack (seeded xoshiro streams from `llmdm-rt`, metrics
//! through `llmdm-obs`):
//!
//! * **Fault injection** ([`plan`]): a declarative [`FaultPlan`] —
//!   per-tier rates for rate-limit / timeout / truncation / malformed
//!   payloads, plus burst multipliers and hard outage windows on a
//!   simulated clock ([`SimClock`]) — and a pure, seeded decision
//!   function: identical `(seed, plan, call sequence)` ⇒ byte-identical
//!   fault sequence.
//! * **Resilience** ([`backoff`], [`deadline`], [`breaker`], [`retry`]):
//!   capped exponential backoff with deterministic full jitter,
//!   deadline budgets measured on the simulated clock, a
//!   closed→open→half-open circuit breaker, and a generic retry
//!   executor ([`retry::execute`]) that composes all three around any
//!   fallible operation.
//!
//! ## Layering
//!
//! This crate deliberately depends **only** on `llmdm-rt` and
//! `llmdm-obs` (enforced by `tests/hermetic.rs::
//! resil_crate_depends_only_on_rt_and_obs`), so every other crate can
//! use it without cycles. The `LanguageModel`-shaped adapters —
//! `FaultyModel` (injects faults from a [`FaultPlan`]) and
//! `ResilientClient` (wraps a model with [`retry::execute`]) — live in
//! `llmdm-model::{faulty, resilient}`, and the tier-aware fallback
//! router lives in `llmdm-cascade::resilient`. The error taxonomy this
//! crate classifies against is abstracted behind the [`Retryable`]
//! trait, which `llmdm_model::ModelError` implements.
//!
//! ## Metric names
//!
//! `resil.retries`, `resil.breaker_open` (trips),
//! `resil.breaker_rejected` (calls refused while open),
//! `resil.breaker_transition`, `resil.fallback_tier`,
//! `resil.stale_serves` (bumped by semcache), `resil.faults.<kind>`
//! (bumped by the injector), and the `resil.backoff_ms` histogram.
//! See DESIGN.md §9.

#![warn(missing_docs)]

pub mod backoff;
pub mod breaker;
pub mod clock;
pub mod deadline;
pub mod plan;
pub mod retry;

pub use backoff::Backoff;
pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker, Transition};
pub use clock::SimClock;
pub use deadline::Deadline;
pub use plan::{FaultKind, FaultPlan, FaultRates, TierPlan, Window};
pub use retry::{execute, CallStats, ResilError, Retryable, RetryPolicy};

/// Stable, seed-friendly FNV-1a hash (local copy so this crate stays
/// free of non-rt/obs dependencies; the constants match
/// `llmdm_model::hash`).
#[inline]
pub(crate) fn fnv1a_str(s: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// SplitMix64 finalizer for decorrelating derived seeds.
#[inline]
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Order-sensitive combination of two hashes.
#[inline]
pub(crate) fn combine(a: u64, b: u64) -> u64 {
    splitmix(a ^ b.rotate_left(17).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}
