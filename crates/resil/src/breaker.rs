//! A closed → open → half-open circuit breaker on the simulated clock.
//!
//! When a model tier fails repeatedly, continuing to hammer it wastes
//! budget (timeouts are billed!) and deepens provider-side overload.
//! The breaker trips after `failure_threshold` *consecutive* failures,
//! rejects calls for a (seeded-jittered) cooldown, then admits exactly
//! one probe; the probe's outcome decides between re-closing and
//! re-opening. By construction the breaker can never transition
//! `Open → Closed` directly — only a half-open probe success closes it
//! — which is exactly the property `tests/proptests.rs` checks against
//! the transition log.

use crate::{combine, splitmix};

/// Breaker state machine states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Healthy: all calls admitted.
    Closed,
    /// Tripped: calls rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe in flight decides the next state.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label (used in metrics and reports).
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// The admission decision for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: proceed normally.
    Allowed,
    /// Breaker half-open: proceed, but this call is the probe.
    Probe,
    /// Breaker open: do not call; retry no sooner than the hint.
    Rejected {
        /// Milliseconds until the cooldown elapses (0 = imminent).
        retry_after_ms: u64,
    },
}

/// Configuration for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures in `Closed` that trip the breaker.
    pub failure_threshold: u32,
    /// Base cooldown before a tripped breaker admits a probe.
    pub cooldown_ms: u64,
    /// Fractional jitter on the cooldown in `[0, 1]`: each opening
    /// draws a deterministic cooldown in
    /// `[cooldown_ms, cooldown_ms * (1 + jitter)]`.
    pub jitter: f64,
    /// Seed for the cooldown jitter stream.
    pub seed: u64,
}

impl Default for BreakerConfig {
    /// Trip after 3 consecutive failures; 1s cooldown, 25% jitter.
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, cooldown_ms: 1_000, jitter: 0.25, seed: 0 }
    }
}

/// One recorded state transition (for tests and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Simulated time of the transition.
    pub at_ms: u64,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// Cap on the retained transition log (oldest entries drop first).
const MAX_TRANSITIONS: usize = 256;

/// A per-tier circuit breaker driven by explicit `poll` / `record_*`
/// calls on the simulated timeline (no interior threads, no real time).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// Absolute time at which an `Open` breaker admits a probe.
    probe_at_ms: u64,
    /// How many times the breaker has opened (drives jitter stream).
    openings: u64,
    transitions: Vec<Transition>,
}

impl CircuitBreaker {
    /// A closed breaker with the given configuration.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_at_ms: 0,
            openings: 0,
            transitions: Vec::new(),
        }
    }

    /// Current state (after any time-driven `Open → HalfOpen` move
    /// would apply; use [`Self::poll`] to actually advance it).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The breaker's configuration.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// The recorded transition log (capped at 256 entries).
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// How many times the breaker has tripped open.
    pub fn openings(&self) -> u64 {
        self.openings
    }

    /// Decide admission for a call at simulated time `now_ms`.
    ///
    /// An `Open` breaker whose cooldown has elapsed transitions to
    /// `HalfOpen` here and admits the caller as the probe.
    pub fn poll(&mut self, now_ms: u64) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Allowed,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => {
                if now_ms >= self.probe_at_ms {
                    self.transition(now_ms, BreakerState::HalfOpen);
                    Admission::Probe
                } else {
                    Admission::Rejected { retry_after_ms: self.probe_at_ms - now_ms }
                }
            }
        }
    }

    /// Record a successful call at `now_ms`.
    ///
    /// * `Closed`: resets the consecutive-failure count.
    /// * `HalfOpen`: the probe succeeded — re-close.
    /// * `Open`: ignored (a straggler finishing after the trip must not
    ///   close the breaker without a probe).
    pub fn record_success(&mut self, now_ms: u64) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.consecutive_failures = 0;
                self.transition(now_ms, BreakerState::Closed);
            }
            BreakerState::Open => {}
        }
    }

    /// Record a failed call at `now_ms`.
    ///
    /// * `Closed`: bump the streak; trip at the threshold.
    /// * `HalfOpen`: the probe failed — re-open with a fresh cooldown.
    /// * `Open`: ignored.
    pub fn record_failure(&mut self, now_ms: u64) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now_ms);
                }
            }
            BreakerState::HalfOpen => self.trip(now_ms),
            BreakerState::Open => {}
        }
    }

    /// Reset to a pristine closed breaker (keeps config, clears log).
    pub fn reset(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.probe_at_ms = 0;
        self.openings = 0;
        self.transitions.clear();
    }

    fn trip(&mut self, now_ms: u64) {
        self.openings += 1;
        self.probe_at_ms = now_ms + self.cooldown_for(self.openings);
        self.consecutive_failures = 0;
        self.transition(now_ms, BreakerState::Open);
    }

    /// Deterministic jittered cooldown for the `opening`-th trip:
    /// `cooldown_ms * (1 + jitter * u)` with `u` hashed from
    /// `(seed, opening)`.
    fn cooldown_for(&self, opening: u64) -> u64 {
        let jitter = self.config.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return self.config.cooldown_ms;
        }
        let h = splitmix(combine(self.config.seed, opening));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        let scaled = self.config.cooldown_ms as f64 * (1.0 + jitter * unit);
        scaled.floor() as u64
    }

    fn transition(&mut self, now_ms: u64, to: BreakerState) {
        let from = self.state;
        self.state = to;
        if self.transitions.len() >= MAX_TRANSITIONS {
            self.transitions.remove(0);
        }
        self.transitions.push(Transition { at_ms: now_ms, from, to });
        let mut g = llmdm_obs::span("resil.breaker_transition");
        if g.is_recording() {
            g.field("from", from.label());
            g.field("to", to.label());
            g.field("at_ms", now_ms);
        }
        llmdm_obs::counter_add("resil.breaker_transition", 1.0);
        if to == BreakerState::Open {
            llmdm_obs::counter_add("resil.breaker_open", 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 1_000,
            jitter: 0.0,
            seed: 0,
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(1);
        b.record_success(2); // streak broken
        b.record_failure(3);
        b.record_failure(4);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(5);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.openings(), 1);
    }

    #[test]
    fn open_rejects_with_retry_hint_then_probes() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        match b.poll(100) {
            Admission::Rejected { retry_after_ms } => assert_eq!(retry_after_ms, 1_002 - 100),
            other => panic!("expected rejection, got {other:?}"),
        }
        // Cooldown (jitter=0 ⇒ exactly 1000ms from trip at t=2).
        assert_eq!(b.poll(1_002), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        assert_eq!(b.poll(2_000), Admission::Probe);
        b.record_success(2_001);
        assert_eq!(b.state(), BreakerState::Closed);

        for t in 3_000..3_003 {
            b.record_failure(t);
        }
        assert_eq!(b.poll(5_000), Admission::Probe);
        b.record_failure(5_001);
        assert_eq!(b.state(), BreakerState::Open);
        // trip1 at t=2, trip2 at t=3002, trip3 (probe failure) at t=5001.
        assert_eq!(b.openings(), 3);
    }

    #[test]
    fn success_while_open_is_ignored() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        b.record_success(10); // straggler
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn never_open_to_closed_in_transition_log() {
        let mut b = breaker();
        // Thrash the breaker through many cycles.
        let mut t = 0;
        for cycle in 0..20 {
            for _ in 0..3 {
                b.record_failure(t);
                t += 1;
            }
            t += 2_000; // wait out cooldown
            assert_eq!(b.poll(t), Admission::Probe);
            if cycle % 2 == 0 {
                b.record_success(t);
            } else {
                b.record_failure(t);
            }
            t += 10;
        }
        for w in b.transitions() {
            assert!(
                !(w.from == BreakerState::Open && w.to == BreakerState::Closed),
                "illegal Open→Closed at t={}",
                w.at_ms
            );
        }
    }

    #[test]
    fn jittered_cooldowns_are_deterministic_and_bounded() {
        let cfg =
            BreakerConfig { failure_threshold: 1, cooldown_ms: 1_000, jitter: 0.5, seed: 77 };
        let a = CircuitBreaker::new(cfg);
        let b = CircuitBreaker::new(cfg);
        for opening in 1..=5u64 {
            let ca = a.cooldown_for(opening);
            let cb = b.cooldown_for(opening);
            assert_eq!(ca, cb, "same seed must give same cooldown");
            assert!((1_000..=1_500).contains(&ca), "cooldown {ca} out of jitter range");
        }
    }

    #[test]
    fn reset_restores_pristine_closed() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        b.reset();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.openings(), 0);
        assert!(b.transitions().is_empty());
        assert_eq!(b.poll(0), Admission::Allowed);
    }
}
