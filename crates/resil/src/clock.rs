//! The simulated wall clock shared by the fault injector, backoff
//! sleeps, deadlines, and breaker cooldowns.
//!
//! Nothing in the workspace ever sleeps for real (determinism and test
//! speed both forbid it), so time is a shared millisecond counter that
//! components *advance*: the fault injector advances it by each call's
//! simulated latency, the retry executor advances it by backoff delays.
//! Deadlines and outage windows are then exact arithmetic on one
//! timeline instead of racy `Instant` reads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cloneable, thread-safe simulated clock (milliseconds since the
/// start of the run). Clones share the same timeline.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ms: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at t = 0 ms.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock starting at `start_ms`.
    pub fn starting_at(start_ms: u64) -> Self {
        let c = SimClock::new();
        c.now_ms.store(start_ms, Ordering::Relaxed);
        c
    }

    /// The current simulated time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::Relaxed)
    }

    /// Advance the clock by `delta_ms`; returns the new time.
    pub fn advance(&self, delta_ms: u64) -> u64 {
        self.now_ms.fetch_add(delta_ms, Ordering::Relaxed) + delta_ms
    }

    /// Reset to t = 0 (test and per-schedule run isolation).
    pub fn reset(&self) {
        self.now_ms.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_a_timeline() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(100);
        b.advance(20);
        assert_eq!(a.now_ms(), 120);
        assert_eq!(b.now_ms(), 120);
    }

    #[test]
    fn starting_at_and_reset() {
        let c = SimClock::starting_at(500);
        assert_eq!(c.now_ms(), 500);
        c.reset();
        assert_eq!(c.now_ms(), 0);
    }

    #[test]
    fn advance_returns_new_time() {
        let c = SimClock::new();
        assert_eq!(c.advance(7), 7);
        assert_eq!(c.advance(3), 10);
    }
}
