//! Capped exponential backoff with deterministic full jitter.
//!
//! The classic AWS "full jitter" schedule draws the delay for attempt
//! `k` uniformly from `[0, min(cap, base * 2^k)]`. Here the "uniform
//! draw" is a pure hash of `(seed, attempt)`, so a fixed seed yields a
//! byte-identical schedule on every run — the property the chaos
//! pipeline's determinism invariant depends on — while different seeds
//! decorrelate concurrent clients exactly like real jitter would.

use crate::{combine, splitmix};

/// A deterministic capped-exponential-backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Base delay in milliseconds for attempt 0 (pre-jitter).
    pub base_ms: u64,
    /// Upper bound on the pre-jitter delay for any attempt.
    pub cap_ms: u64,
    /// Seed decorrelating this schedule's jitter from other clients'.
    pub seed: u64,
}

impl Backoff {
    /// A schedule with the given base and cap, jittered from `seed`.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Backoff { base_ms, cap_ms, seed }
    }

    /// The un-jittered ceiling for `attempt`: `min(cap, base * 2^attempt)`,
    /// saturating on overflow.
    pub fn ceiling_ms(&self, attempt: u32) -> u64 {
        let exp = if attempt >= 63 {
            if self.base_ms == 0 { 0 } else { u64::MAX }
        } else {
            self.base_ms.saturating_mul(1u64 << attempt)
        };
        exp.min(self.cap_ms)
    }

    /// The jittered delay for `attempt`: a deterministic "uniform" draw
    /// from `[0, ceiling_ms(attempt)]`.
    ///
    /// Properties (checked by `tests/proptests.rs`):
    /// * `delay_ms(a) <= cap_ms` always;
    /// * for fixed `(seed, base, attempt)`, the delay is non-decreasing
    ///   in `cap_ms`;
    /// * identical seeds give identical schedules.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let ceil = self.ceiling_ms(attempt);
        if ceil == 0 {
            return 0;
        }
        // A 53-bit unit fraction from the hash, scaled to [0, ceil].
        let h = splitmix(combine(self.seed, attempt as u64 + 1));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        (unit * ceil as f64).floor() as u64
    }
}

impl Default for Backoff {
    /// 50ms base, 5s cap, seed 0.
    fn default() -> Self {
        Backoff::new(50, 5_000, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceiling_doubles_then_caps() {
        let b = Backoff::new(100, 1_000, 7);
        assert_eq!(b.ceiling_ms(0), 100);
        assert_eq!(b.ceiling_ms(1), 200);
        assert_eq!(b.ceiling_ms(2), 400);
        assert_eq!(b.ceiling_ms(3), 800);
        assert_eq!(b.ceiling_ms(4), 1_000); // capped
        assert_eq!(b.ceiling_ms(63), 1_000);
        assert_eq!(b.ceiling_ms(64), 1_000); // shl overflow saturates
    }

    #[test]
    fn delay_is_within_ceiling() {
        let b = Backoff::new(50, 5_000, 42);
        for attempt in 0..20 {
            let d = b.delay_ms(attempt);
            assert!(d <= b.ceiling_ms(attempt), "attempt {attempt}: {d}");
            assert!(d <= b.cap_ms);
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = Backoff::new(50, 5_000, 9);
        let b = Backoff::new(50, 5_000, 9);
        let sched_a: Vec<u64> = (0..10).map(|k| a.delay_ms(k)).collect();
        let sched_b: Vec<u64> = (0..10).map(|k| b.delay_ms(k)).collect();
        assert_eq!(sched_a, sched_b);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = Backoff::new(50, 5_000, 1);
        let b = Backoff::new(50, 5_000, 2);
        let sched_a: Vec<u64> = (0..10).map(|k| a.delay_ms(k)).collect();
        let sched_b: Vec<u64> = (0..10).map(|k| b.delay_ms(k)).collect();
        assert_ne!(sched_a, sched_b);
    }

    #[test]
    fn zero_base_means_zero_delay() {
        let b = Backoff::new(0, 5_000, 3);
        assert_eq!(b.delay_ms(0), 0);
        assert_eq!(b.delay_ms(10), 0);
    }
}
