//! Deadline budgets measured on the simulated clock.
//!
//! A [`Deadline`] is an absolute point on the [`SimClock`] timeline.
//! The retry executor refuses to start a backoff sleep that would blow
//! past it, and the resilient cascade *slices* the remaining budget
//! across tiers so a cheap-tier retry storm cannot starve the
//! expensive tier (DESIGN.md §9's deadline-propagation rule:
//! tier `i` of `n` gets `remaining / (n - i)`).

use crate::clock::SimClock;

/// An absolute deadline in simulated milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline {
    at_ms: u64,
}

impl Deadline {
    /// A deadline at the absolute simulated time `at_ms`.
    pub fn at(at_ms: u64) -> Self {
        Deadline { at_ms }
    }

    /// A deadline `budget_ms` from the clock's current time.
    pub fn after(clock: &SimClock, budget_ms: u64) -> Self {
        Deadline { at_ms: clock.now_ms().saturating_add(budget_ms) }
    }

    /// A deadline that never expires.
    pub fn unbounded() -> Self {
        Deadline { at_ms: u64::MAX }
    }

    /// The absolute deadline in milliseconds.
    pub fn at_ms(&self) -> u64 {
        self.at_ms
    }

    /// Milliseconds left before the deadline (0 if already past).
    pub fn remaining(&self, clock: &SimClock) -> u64 {
        self.at_ms.saturating_sub(clock.now_ms())
    }

    /// Whether the deadline has passed.
    pub fn expired(&self, clock: &SimClock) -> bool {
        clock.now_ms() >= self.at_ms
    }

    /// The deadline-propagation rule: the sub-deadline for stage
    /// `index` of `total` sequential stages, giving each remaining
    /// stage an equal share of what's left (`remaining / (total - index)`).
    ///
    /// Later stages automatically inherit whatever earlier stages did
    /// not consume, but no single stage may eat the whole budget while
    /// successors still wait.
    pub fn slice(&self, clock: &SimClock, index: usize, total: usize) -> Deadline {
        if self.at_ms == u64::MAX {
            return *self;
        }
        let stages_left = total.saturating_sub(index).max(1) as u64;
        let share = self.remaining(clock) / stages_left;
        Deadline::after(clock, share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_counts_down_and_saturates() {
        let clock = SimClock::new();
        let d = Deadline::after(&clock, 100);
        assert_eq!(d.remaining(&clock), 100);
        clock.advance(60);
        assert_eq!(d.remaining(&clock), 40);
        assert!(!d.expired(&clock));
        clock.advance(60);
        assert_eq!(d.remaining(&clock), 0);
        assert!(d.expired(&clock));
    }

    #[test]
    fn unbounded_never_expires() {
        let clock = SimClock::new();
        let d = Deadline::unbounded();
        clock.advance(1_000_000);
        assert!(!d.expired(&clock));
        assert_eq!(d.slice(&clock, 0, 3), d);
    }

    #[test]
    fn slice_shares_budget_equally_among_remaining_stages() {
        let clock = SimClock::new();
        let d = Deadline::after(&clock, 900);
        // First of three stages: 900 / 3 = 300.
        let s0 = d.slice(&clock, 0, 3);
        assert_eq!(s0.remaining(&clock), 300);
        // Stage 0 used only 100 of its 300; stage 1 inherits the slack:
        // (900 - 100) / 2 = 400.
        clock.advance(100);
        let s1 = d.slice(&clock, 1, 3);
        assert_eq!(s1.remaining(&clock), 400);
        // Stage 1 used all 400; the final stage gets the rest: 400.
        clock.advance(400);
        let s2 = d.slice(&clock, 2, 3);
        assert_eq!(s2.remaining(&clock), 400);
    }

    #[test]
    fn slice_of_expired_deadline_is_expired() {
        let clock = SimClock::new();
        let d = Deadline::after(&clock, 10);
        clock.advance(20);
        let s = d.slice(&clock, 0, 4);
        assert!(s.expired(&clock));
    }
}
