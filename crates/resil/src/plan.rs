//! Declarative fault plans and the pure, seeded fault-decision
//! function.
//!
//! A [`FaultPlan`] describes *what goes wrong*: per-tier rates for each
//! [`FaultKind`], burst windows that multiply those rates, and hard
//! outage windows during which a tier is simply down. The decision
//! function [`FaultPlan::decide`] is pure in `(plan, tier, call_index,
//! now_ms)` — every bit of randomness is hashed from the plan seed, the
//! tier name, and the per-tier call index — so an identical plan and
//! call sequence reproduces a byte-identical fault sequence. That
//! purity is what lets `examples/chaos_pipeline.rs` assert run-to-run
//! determinism.

use llmdm_rt::rand::{Rng, SeedableRng, SmallRng};

use crate::{combine, fnv1a_str};

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The provider rejected the call up front (HTTP 429). Not billed.
    RateLimited,
    /// The call ran past its wall-clock budget. The request *executed*
    /// (and is billed) but the caller never sees the completion.
    Timeout,
    /// The response came back truncated: billed in full, returned as a
    /// "successful" completion with the tail cut off.
    TruncatedOutput,
    /// The response decoded to garbage (malformed payload). Injected
    /// before execution in simulation, so not billed.
    MalformedPayload,
    /// The tier is inside a hard outage window: every call fails as
    /// `Unavailable`. Not billed.
    Outage,
}

impl FaultKind {
    /// Stable lowercase label (metric suffix: `resil.faults.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::RateLimited => "rate_limited",
            FaultKind::Timeout => "timeout",
            FaultKind::TruncatedOutput => "truncated",
            FaultKind::MalformedPayload => "malformed",
            FaultKind::Outage => "outage",
        }
    }

    /// All kinds, in the order the decision function draws them.
    pub fn all() -> [FaultKind; 5] {
        [
            FaultKind::RateLimited,
            FaultKind::Timeout,
            FaultKind::TruncatedOutput,
            FaultKind::MalformedPayload,
            FaultKind::Outage,
        ]
    }
}

/// Per-call fault probabilities for one tier (each in `[0, 1]`; their
/// sum is clamped during the draw so they stay mutually exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// P(rate-limit rejection).
    pub rate_limited: f64,
    /// P(timeout after execution).
    pub timeout: f64,
    /// P(truncated output).
    pub truncated: f64,
    /// P(malformed payload).
    pub malformed: f64,
}

impl FaultRates {
    /// All-zero rates (no faults).
    pub fn none() -> Self {
        FaultRates::default()
    }

    /// Sum of all rates (pre-clamp).
    pub fn total(&self) -> f64 {
        self.rate_limited + self.timeout + self.truncated + self.malformed
    }
}

/// A half-open window `[start_ms, end_ms)` on the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Inclusive start (simulated ms).
    pub start_ms: u64,
    /// Exclusive end (simulated ms).
    pub end_ms: u64,
}

impl Window {
    /// A window covering `[start_ms, end_ms)`.
    pub fn new(start_ms: u64, end_ms: u64) -> Self {
        Window { start_ms, end_ms }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: u64) -> bool {
        t >= self.start_ms && t < self.end_ms
    }
}

/// The fault configuration for one model tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TierPlan {
    /// The tier (model) name this plan applies to.
    pub tier: String,
    /// Baseline per-call fault rates.
    pub rates: FaultRates,
    /// Hard outage windows (every call inside fails as `Outage`).
    pub outages: Vec<Window>,
    /// `retry_after_ms` hint attached to rate-limit faults (0 = none).
    pub retry_after_ms: u64,
    /// Simulated latency a timed-out call burns before failing.
    pub timeout_ms: u64,
}

impl TierPlan {
    /// A fault-free tier plan.
    pub fn quiet(tier: &str) -> Self {
        TierPlan {
            tier: tier.to_string(),
            rates: FaultRates::none(),
            outages: Vec::new(),
            retry_after_ms: 0,
            timeout_ms: 0,
        }
    }

    /// A tier plan with the given rates and defaults elsewhere.
    pub fn with_rates(tier: &str, rates: FaultRates) -> Self {
        TierPlan { rates, ..TierPlan::quiet(tier) }
    }

    /// Add an outage window.
    pub fn outage(mut self, w: Window) -> Self {
        self.outages.push(w);
        self
    }

    /// Set the rate-limit retry hint.
    pub fn retry_hint(mut self, ms: u64) -> Self {
        self.retry_after_ms = ms;
        self
    }

    /// Set the simulated latency of a timed-out call.
    pub fn timeout_latency(mut self, ms: u64) -> Self {
        self.timeout_ms = ms;
        self
    }
}

/// Ceiling on the effective per-call fault probability after burst
/// multipliers, so some traffic always gets through.
const MAX_EFFECTIVE_RATE: f64 = 0.95;

/// A complete, named fault schedule for a run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Human-readable schedule name (`quiet`, `lossy`, `outage`, ...).
    pub name: String,
    /// Master seed for every fault draw.
    pub seed: u64,
    /// Per-tier configurations. Tiers not listed never fault.
    pub tiers: Vec<TierPlan>,
    /// Burst windows: while `now_ms` is inside the window, all rates
    /// are multiplied by the factor (then clamped).
    pub bursts: Vec<(Window, f64)>,
}

impl FaultPlan {
    /// The fault-free plan (fast path: [`FaultPlan::decide`] returns
    /// `None` without hashing anything).
    pub fn none() -> Self {
        FaultPlan { name: "none".into(), seed: 0, tiers: Vec::new(), bursts: Vec::new() }
    }

    /// A named plan with the given seed and tier configs.
    pub fn new(name: &str, seed: u64, tiers: Vec<TierPlan>) -> Self {
        FaultPlan { name: name.to_string(), seed, tiers, bursts: Vec::new() }
    }

    /// Add a burst window multiplying all rates by `factor`.
    pub fn burst(mut self, w: Window, factor: f64) -> Self {
        self.bursts.push((w, factor));
        self
    }

    /// Whether this plan can never produce a fault (the no-op fast
    /// path the `resil_overhead` bench pins below 5%).
    pub fn is_noop(&self) -> bool {
        self.tiers.iter().all(|t| t.rates.total() == 0.0 && t.outages.is_empty())
    }

    /// The tier plan for `tier`, if configured.
    pub fn tier(&self, tier: &str) -> Option<&TierPlan> {
        self.tiers.iter().find(|t| t.tier == tier)
    }

    /// The burst multiplier in effect at `now_ms` (1.0 outside bursts;
    /// overlapping bursts multiply).
    pub fn burst_factor(&self, now_ms: u64) -> f64 {
        let mut f = 1.0;
        for (w, factor) in &self.bursts {
            if w.contains(now_ms) {
                f *= factor;
            }
        }
        f
    }

    /// The pure fault decision for the `call_index`-th call to `tier`
    /// at simulated time `now_ms`.
    ///
    /// Deterministic: the draw is seeded from
    /// `combine(seed ^ fnv1a(tier), call_index)`, so identical
    /// `(plan, tier, call_index, now_ms)` always yields the same
    /// decision, independent of interleaving with other tiers.
    ///
    /// Precedence: outage windows are absolute (probability 1 inside);
    /// otherwise one cumulative-threshold draw picks among the rate
    /// faults or none.
    pub fn decide(&self, tier: &str, call_index: u64, now_ms: u64) -> Option<FaultKind> {
        let tp = self.tier(tier)?;
        if tp.outages.iter().any(|w| w.contains(now_ms)) {
            return Some(FaultKind::Outage);
        }
        let base = tp.rates;
        if base.total() == 0.0 {
            return None;
        }
        let factor = self.burst_factor(now_ms);
        // Bursts cannot push a plan past the effective-rate ceiling,
        // but an *explicitly* configured rate (e.g. 1.0 in a test plan)
        // is honored as written.
        let cap = MAX_EFFECTIVE_RATE.max(base.total().min(1.0));
        let total = (base.total() * factor).min(cap);
        let scale = if base.total() > 0.0 { total / base.total() } else { 0.0 };

        let mut rng = SmallRng::seed_from_u64(combine(self.seed ^ fnv1a_str(tier), call_index));
        let u = rng.gen_f64();
        let mut acc = 0.0;
        for (rate, kind) in [
            (base.rate_limited, FaultKind::RateLimited),
            (base.timeout, FaultKind::Timeout),
            (base.truncated, FaultKind::TruncatedOutput),
            (base.malformed, FaultKind::MalformedPayload),
        ] {
            acc += rate * scale;
            if u < acc {
                return Some(kind);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(
            "lossy",
            seed,
            vec![TierPlan::with_rates(
                "sim-small",
                FaultRates { rate_limited: 0.2, timeout: 0.1, truncated: 0.1, malformed: 0.1 },
            )],
        )
    }

    #[test]
    fn noop_plan_never_faults() {
        let p = FaultPlan::none();
        assert!(p.is_noop());
        for i in 0..100 {
            assert_eq!(p.decide("sim-small", i, i * 10), None);
        }
    }

    #[test]
    fn unlisted_tier_never_faults() {
        let p = lossy_plan(1);
        for i in 0..100 {
            assert_eq!(p.decide("sim-large", i, 0), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_in_plan_and_index() {
        let a = lossy_plan(42);
        let b = lossy_plan(42);
        let seq_a: Vec<_> = (0..200).map(|i| a.decide("sim-small", i, 0)).collect();
        let seq_b: Vec<_> = (0..200).map(|i| b.decide("sim-small", i, 0)).collect();
        assert_eq!(seq_a, seq_b);
        let c = lossy_plan(43);
        let seq_c: Vec<_> = (0..200).map(|i| c.decide("sim-small", i, 0)).collect();
        assert_ne!(seq_a, seq_c, "different seeds should differ");
    }

    #[test]
    fn rates_roughly_match_draws() {
        let p = lossy_plan(7);
        let n = 4_000u64;
        let faults = (0..n).filter(|&i| p.decide("sim-small", i, 0).is_some()).count();
        let frac = faults as f64 / n as f64;
        assert!((0.4..0.6).contains(&frac), "expected ~0.5 fault rate, got {frac}");
    }

    #[test]
    fn outage_window_is_absolute() {
        let p = FaultPlan::new(
            "outage",
            3,
            vec![TierPlan::quiet("sim-small").outage(Window::new(100, 200))],
        );
        assert!(!p.is_noop());
        assert_eq!(p.decide("sim-small", 0, 99), None);
        assert_eq!(p.decide("sim-small", 0, 100), Some(FaultKind::Outage));
        assert_eq!(p.decide("sim-small", 0, 199), Some(FaultKind::Outage));
        assert_eq!(p.decide("sim-small", 0, 200), None);
    }

    #[test]
    fn bursts_multiply_rates_with_cap() {
        let base = FaultPlan::new(
            "b",
            5,
            vec![TierPlan::with_rates(
                "m",
                FaultRates { rate_limited: 0.1, ..FaultRates::default() },
            )],
        );
        let bursty = base.clone().burst(Window::new(0, 1_000), 5.0);
        assert_eq!(bursty.burst_factor(500), 5.0);
        assert_eq!(bursty.burst_factor(1_000), 1.0);
        let n = 4_000u64;
        let count = |p: &FaultPlan| (0..n).filter(|&i| p.decide("m", i, 500).is_some()).count();
        let f_base = count(&base) as f64 / n as f64;
        let f_burst = count(&bursty) as f64 / n as f64;
        assert!(f_burst > f_base * 3.0, "burst {f_burst} vs base {f_base}");
        // Cap: a 100x burst on 10% still leaves some traffic through.
        let insane = base.burst(Window::new(0, 1_000), 100.0);
        let f_insane = count(&insane) as f64 / n as f64;
        assert!(f_insane <= MAX_EFFECTIVE_RATE + 0.02, "cap violated: {f_insane}");
        assert!(f_insane > 0.85);
    }

    #[test]
    fn fault_kind_labels_are_stable() {
        let labels: Vec<_> = FaultKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["rate_limited", "timeout", "truncated", "malformed", "outage"]);
    }
}
