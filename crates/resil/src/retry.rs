//! The generic retry executor: backoff + deadline + breaker composed
//! around any fallible operation.
//!
//! [`execute`] is deliberately generic over the error type via the
//! [`Retryable`] trait so this crate stays free of `llmdm-model`
//! (the layering test `resil_crate_depends_only_on_rt_and_obs`
//! enforces that). `llmdm_model::ModelError` implements [`Retryable`]
//! and `llmdm_model::resilient::ResilientClient` wires this executor
//! around a `LanguageModel`.

use crate::backoff::Backoff;
use crate::breaker::{Admission, CircuitBreaker};
use crate::clock::SimClock;
use crate::deadline::Deadline;

/// Error classification the executor needs from the wrapped operation.
pub trait Retryable {
    /// Whether retrying the *same* request can plausibly succeed.
    fn is_retryable(&self) -> bool;

    /// A provider-suggested minimum delay before the next attempt.
    fn retry_after_ms(&self) -> Option<u64> {
        None
    }
}

/// Retry policy: how many *re*tries (attempts = retries + 1) and the
/// backoff schedule between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt.
    pub max_retries: u32,
    /// Backoff schedule for the gaps between attempts.
    pub backoff: Backoff,
}

impl RetryPolicy {
    /// A policy with `max_retries` and the given backoff.
    pub fn new(max_retries: u32, backoff: Backoff) -> Self {
        RetryPolicy { max_retries, backoff }
    }

    /// No retries at all (single attempt).
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, backoff: Backoff::new(0, 0, 0) }
    }
}

impl Default for RetryPolicy {
    /// 3 retries over the default backoff.
    fn default() -> Self {
        RetryPolicy { max_retries: 3, backoff: Backoff::default() }
    }
}

/// Why [`execute`] gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilError<E> {
    /// The circuit breaker rejected the call before any attempt.
    BreakerOpen {
        /// Milliseconds until the breaker will admit a probe.
        retry_after_ms: u64,
    },
    /// The deadline expired (either before an attempt or before a
    /// backoff sleep could complete). Carries the last error if at
    /// least one attempt ran.
    DeadlineExceeded {
        /// Attempts that ran before the budget ran out.
        attempts: u32,
        /// The error from the final attempt, if any ran.
        last_error: Option<E>,
    },
    /// All attempts failed; retries exhausted (or the error was not
    /// retryable).
    Exhausted {
        /// Total attempts made.
        attempts: u32,
        /// The error from the final attempt.
        last_error: E,
    },
}

impl<E: std::fmt::Display> std::fmt::Display for ResilError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilError::BreakerOpen { retry_after_ms } => {
                write!(f, "circuit breaker open, retry after {retry_after_ms}ms")
            }
            ResilError::DeadlineExceeded { attempts, last_error } => {
                write!(f, "deadline exceeded after {attempts} attempts")?;
                if let Some(e) = last_error {
                    write!(f, " (last error: {e})")?;
                }
                Ok(())
            }
            ResilError::Exhausted { attempts, last_error } => {
                write!(f, "retries exhausted after {attempts} attempts: {last_error}")
            }
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for ResilError<E> {}

/// Accounting for one [`execute`] run (drives the chaos invariants:
/// `retries <= policy.max_retries` always).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallStats {
    /// Attempts actually made (0 if the breaker rejected up front).
    pub attempts: u32,
    /// Retries (attempts beyond the first).
    pub retries: u32,
    /// Total simulated backoff delay consumed.
    pub backoff_ms_total: u64,
}

/// Run `op` under the composed resilience machinery.
///
/// Sequence per call:
/// 1. **Breaker gate** — a rejected admission returns
///    [`ResilError::BreakerOpen`] without invoking `op` (and bumps the
///    `resil.breaker_rejected` counter).
/// 2. **Deadline gate** — an already-expired deadline returns
///    [`ResilError::DeadlineExceeded`].
/// 3. **Attempt loop** — `op(attempt)` runs; success is recorded on
///    the breaker and returned. A failure is recorded on the breaker,
///    then the executor decides: not retryable → `Exhausted`; retries
///    spent → `Exhausted`; breaker tripped open mid-loop →
///    `BreakerOpen`; otherwise it computes the backoff delay
///    (`max(backoff.delay_ms(attempt), provider retry-after hint)`),
///    refuses to sleep past the deadline (`DeadlineExceeded`), advances
///    the simulated clock by the delay, and loops.
///
/// Metrics: `resil.retries` counts every retry, `resil.backoff_ms`
/// observes each delay, `resil.breaker_rejected` counts breaker
/// rejections.
pub fn execute<T, E, F>(
    policy: &RetryPolicy,
    breaker: &mut CircuitBreaker,
    clock: &SimClock,
    deadline: Deadline,
    mut op: F,
) -> (Result<T, ResilError<E>>, CallStats)
where
    E: Retryable,
    F: FnMut(u32) -> Result<T, E>,
{
    let mut stats = CallStats::default();

    match breaker.poll(clock.now_ms()) {
        Admission::Rejected { retry_after_ms } => {
            llmdm_obs::counter_add("resil.breaker_rejected", 1.0);
            return (Err(ResilError::BreakerOpen { retry_after_ms }), stats);
        }
        Admission::Allowed | Admission::Probe => {}
    }

    if deadline.expired(clock) {
        return (Err(ResilError::DeadlineExceeded { attempts: 0, last_error: None }), stats);
    }

    let mut attempt: u32 = 0;
    loop {
        stats.attempts = attempt + 1;
        stats.retries = attempt;
        match op(attempt) {
            Ok(value) => {
                breaker.record_success(clock.now_ms());
                return (Ok(value), stats);
            }
            Err(err) => {
                breaker.record_failure(clock.now_ms());
                if !err.is_retryable() || attempt >= policy.max_retries {
                    return (Err(ResilError::Exhausted { attempts: attempt + 1, last_error: err }), stats);
                }
                // The breaker may have tripped on this very failure;
                // if it now rejects, stop the storm immediately.
                if let Admission::Rejected { retry_after_ms } = breaker.poll(clock.now_ms()) {
                    llmdm_obs::counter_add("resil.breaker_rejected", 1.0);
                    return (Err(ResilError::BreakerOpen { retry_after_ms }), stats);
                }
                let mut delay = policy.backoff.delay_ms(attempt);
                if let Some(hint) = err.retry_after_ms() {
                    delay = delay.max(hint);
                }
                if delay > deadline.remaining(clock) {
                    return (
                        Err(ResilError::DeadlineExceeded {
                            attempts: attempt + 1,
                            last_error: Some(err),
                        }),
                        stats,
                    );
                }
                clock.advance(delay);
                stats.backoff_ms_total += delay;
                llmdm_obs::counter_add("resil.retries", 1.0);
                llmdm_obs::observe("resil.backoff_ms", delay as f64);
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerConfig;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct TestErr {
        retryable: bool,
        hint: u64,
    }

    impl std::fmt::Display for TestErr {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "test error (retryable={})", self.retryable)
        }
    }

    impl Retryable for TestErr {
        fn is_retryable(&self) -> bool {
            self.retryable
        }
        fn retry_after_ms(&self) -> Option<u64> {
            (self.hint > 0).then_some(self.hint)
        }
    }

    fn harness() -> (RetryPolicy, CircuitBreaker, SimClock) {
        (
            RetryPolicy::new(3, Backoff::new(10, 100, 7)),
            CircuitBreaker::new(BreakerConfig {
                failure_threshold: 10,
                cooldown_ms: 1_000,
                jitter: 0.0,
                seed: 0,
            }),
            SimClock::new(),
        )
    }

    #[test]
    fn success_on_first_attempt_makes_no_retries() {
        let (policy, mut breaker, clock) = harness();
        let (res, stats) = execute(&policy, &mut breaker, &clock, Deadline::unbounded(), |_| {
            Ok::<_, TestErr>(42)
        });
        assert_eq!(res.unwrap(), 42);
        assert_eq!(stats, CallStats { attempts: 1, retries: 0, backoff_ms_total: 0 });
        assert_eq!(clock.now_ms(), 0, "no backoff time should pass");
    }

    #[test]
    fn retries_until_success_and_advances_clock() {
        let (policy, mut breaker, clock) = harness();
        let (res, stats) =
            execute(&policy, &mut breaker, &clock, Deadline::unbounded(), |attempt| {
                if attempt < 2 {
                    Err(TestErr { retryable: true, hint: 0 })
                } else {
                    Ok(attempt)
                }
            });
        assert_eq!(res.unwrap(), 2);
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.retries, 2);
        assert_eq!(clock.now_ms(), stats.backoff_ms_total);
    }

    #[test]
    fn non_retryable_error_fails_fast() {
        let (policy, mut breaker, clock) = harness();
        let mut calls = 0;
        let (res, stats) = execute(&policy, &mut breaker, &clock, Deadline::unbounded(), |_| {
            calls += 1;
            Err::<(), _>(TestErr { retryable: false, hint: 0 })
        });
        assert_eq!(calls, 1);
        assert_eq!(stats.retries, 0);
        match res {
            Err(ResilError::Exhausted { attempts: 1, .. }) => {}
            other => panic!("expected exhausted after 1 attempt, got {other:?}"),
        }
    }

    #[test]
    fn retries_are_bounded_by_the_cap() {
        let (policy, mut breaker, clock) = harness();
        let mut calls = 0;
        let (res, stats) = execute(&policy, &mut breaker, &clock, Deadline::unbounded(), |_| {
            calls += 1;
            Err::<(), _>(TestErr { retryable: true, hint: 0 })
        });
        assert_eq!(calls, policy.max_retries + 1);
        assert_eq!(stats.retries, policy.max_retries);
        assert!(matches!(res, Err(ResilError::Exhausted { attempts: 4, .. })));
    }

    #[test]
    fn provider_hint_floors_the_backoff_delay() {
        let (policy, mut breaker, clock) = harness();
        let (_, stats) = execute(&policy, &mut breaker, &clock, Deadline::unbounded(), |attempt| {
            if attempt == 0 {
                Err(TestErr { retryable: true, hint: 5_000 })
            } else {
                Ok(())
            }
        });
        assert!(stats.backoff_ms_total >= 5_000, "hint must floor delay: {stats:?}");
    }

    #[test]
    fn deadline_stops_the_backoff_sleep() {
        let (policy, mut breaker, clock) = harness();
        let deadline = Deadline::after(&clock, 3); // tighter than any backoff
        let (res, _) = execute(&policy, &mut breaker, &clock, deadline, |_| {
            Err::<(), _>(TestErr { retryable: true, hint: 50 })
        });
        match res {
            Err(ResilError::DeadlineExceeded { attempts: 1, last_error: Some(_) }) => {}
            other => panic!("expected deadline exceeded, got {other:?}"),
        }
        assert!(clock.now_ms() <= 3, "must not sleep past the deadline");
    }

    #[test]
    fn expired_deadline_prevents_any_attempt() {
        let (policy, mut breaker, clock) = harness();
        let deadline = Deadline::after(&clock, 10);
        clock.advance(20);
        let mut calls = 0;
        let (res, stats) = execute(&policy, &mut breaker, &clock, deadline, |_| {
            calls += 1;
            Ok::<_, TestErr>(())
        });
        assert_eq!(calls, 0);
        assert_eq!(stats.attempts, 0);
        assert!(matches!(res, Err(ResilError::DeadlineExceeded { attempts: 0, last_error: None })));
    }

    #[test]
    fn open_breaker_rejects_without_calling() {
        let (policy, mut breaker, clock) = harness();
        for _ in 0..10 {
            breaker.record_failure(clock.now_ms());
        }
        let mut calls = 0;
        let (res, stats) = execute(&policy, &mut breaker, &clock, Deadline::unbounded(), |_| {
            calls += 1;
            Ok::<_, TestErr>(())
        });
        assert_eq!(calls, 0);
        assert_eq!(stats.attempts, 0);
        assert!(matches!(res, Err(ResilError::BreakerOpen { .. })));
    }

    #[test]
    fn breaker_tripping_mid_loop_stops_the_storm() {
        let (policy, mut breaker, clock) = harness();
        // Threshold 10; pre-load 8 failures so the 2nd in-loop failure trips.
        for _ in 0..8 {
            breaker.record_failure(clock.now_ms());
        }
        let mut calls = 0;
        let (res, _) = execute(&policy, &mut breaker, &clock, Deadline::unbounded(), |_| {
            calls += 1;
            Err::<(), _>(TestErr { retryable: true, hint: 0 })
        });
        assert_eq!(calls, 2, "loop must stop when the breaker trips");
        assert!(matches!(res, Err(ResilError::BreakerOpen { .. })));
    }

    #[test]
    fn display_is_informative() {
        let e: ResilError<TestErr> = ResilError::BreakerOpen { retry_after_ms: 120 };
        assert!(e.to_string().contains("120ms"));
        let d: ResilError<String> =
            ResilError::DeadlineExceeded { attempts: 2, last_error: Some("boom".into()) };
        assert!(d.to_string().contains("2 attempts"));
        assert!(d.to_string().contains("boom"));
        let x: ResilError<String> = ResilError::Exhausted { attempts: 4, last_error: "zap".into() };
        assert!(x.to_string().contains("4 attempts"));
        assert!(x.to_string().contains("zap"));
    }
}
