//! Property-based tests for the resilience primitives: the jittered
//! backoff schedule and the circuit-breaker state machine.

use llmdm_resil::{Backoff, BreakerConfig, BreakerState, CircuitBreaker};
use llmdm_rt::proptest;
use llmdm_rt::proptest::prelude::*;

proptest! {
    /// A jittered delay never exceeds the exponential ceiling, which
    /// itself never exceeds the cap.
    #[test]
    fn backoff_delay_within_ceiling_and_cap(
        base in 1u64..10_000,
        cap in 1u64..1_000_000,
        seed in 0u64..u64::MAX,
        attempt in 0u32..80,
    ) {
        let b = Backoff::new(base, cap, seed);
        let ceiling = b.ceiling_ms(attempt);
        prop_assert!(ceiling <= cap);
        let d = b.delay_ms(attempt);
        prop_assert!(d <= ceiling, "delay {} above ceiling {}", d, ceiling);
    }

    /// Raising the cap never *lowers* the deterministic ceiling: the
    /// schedule is monotone in the cap.
    #[test]
    fn backoff_ceiling_monotone_in_cap(
        base in 1u64..10_000,
        cap_lo in 1u64..500_000,
        extra in 0u64..500_000,
        attempt in 0u32..80,
    ) {
        let lo = Backoff::new(base, cap_lo, 0);
        let hi = Backoff::new(base, cap_lo + extra, 0);
        prop_assert!(hi.ceiling_ms(attempt) >= lo.ceiling_ms(attempt));
    }

    /// The ceiling is non-decreasing in the attempt number (exponential
    /// growth until the cap, then flat).
    #[test]
    fn backoff_ceiling_monotone_in_attempt(
        base in 1u64..10_000,
        cap in 1u64..1_000_000,
        attempt in 0u32..100,
    ) {
        let b = Backoff::new(base, cap, 9);
        prop_assert!(b.ceiling_ms(attempt + 1) >= b.ceiling_ms(attempt));
    }

    /// Identical seeds reproduce the whole delay schedule; the schedule
    /// is a pure function of (base, cap, seed, attempt).
    #[test]
    fn backoff_schedule_is_seed_reproducible(
        base in 1u64..10_000,
        cap in 1u64..1_000_000,
        seed in 0u64..u64::MAX,
    ) {
        let a = Backoff::new(base, cap, seed);
        let b = Backoff::new(base, cap, seed);
        let sched_a: Vec<u64> = (0..32).map(|i| a.delay_ms(i)).collect();
        let sched_b: Vec<u64> = (0..32).map(|i| b.delay_ms(i)).collect();
        prop_assert_eq!(sched_a, sched_b);
    }

    /// Driving the breaker with an arbitrary event sequence, it never
    /// transitions Open → Closed directly: recovery always goes through
    /// a HalfOpen probe first.
    #[test]
    fn breaker_never_open_to_closed_without_probe(
        threshold in 1u32..6,
        cooldown in 1u64..5_000,
        seed in 0u64..u64::MAX,
        // 0 = poll, 1 = success, 2 = failure; paired with a time step.
        events in proptest::collection::vec((0u8..3, 0u64..2_000), 1..120),
    ) {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_ms: cooldown,
            jitter: 0.25,
            seed,
        });
        let mut now = 0u64;
        for (ev, dt) in events {
            now += dt;
            match ev {
                0 => { let _ = b.poll(now); }
                1 => b.record_success(now),
                _ => b.record_failure(now),
            }
        }
        for t in b.transitions() {
            prop_assert!(
                !(t.from == BreakerState::Open && t.to == BreakerState::Closed),
                "illegal Open→Closed transition at {}ms", t.at_ms
            );
        }
        // And adjacent transitions chain: each `from` equals the
        // previous `to` (no teleporting states).
        for pair in b.transitions().windows(2) {
            prop_assert_eq!(pair[0].to, pair[1].from);
        }
    }

    /// However many failures arrive, the breaker only ever *admits*
    /// calls when Closed or probing HalfOpen — once Open, everything is
    /// rejected until the cooldown elapses.
    #[test]
    fn breaker_rejects_while_open(
        cooldown in 100u64..5_000,
        seed in 0u64..u64::MAX,
    ) {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: cooldown,
            jitter: 0.25,
            seed,
        });
        b.record_failure(10);
        b.record_failure(20);
        prop_assert_eq!(b.state(), BreakerState::Open);
        // Immediately after tripping, calls are rejected.
        match b.poll(21) {
            llmdm_resil::Admission::Rejected { retry_after_ms } => {
                // The hint never exceeds the jittered cooldown bound.
                let bound = cooldown + (cooldown as f64 * 0.25).ceil() as u64;
                prop_assert!(retry_after_ms <= bound,
                    "hint {} above bound {}", retry_after_ms, bound);
            }
            other => prop_assert!(false, "expected rejection, got {:?}", other),
        }
        // Far past any jittered cooldown, the next poll is a probe.
        let later = 21 + cooldown * 2 + 10;
        prop_assert_eq!(b.poll(later), llmdm_resil::Admission::Probe);
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);
    }
}
