//! LLM-as-database (§II-D2): SQL over virtual tables whose contents live
//! inside a language model.
//!
//! "SQL queries can be decomposed by query optimization as in traditional
//! databases. The decomposed sub-queries extract multi-modal information
//! from corresponding LLMs, just like searching from tables in traditional
//! databases."
//!
//! A [`VirtualTable`] declares a schema and holds the knowledge the model
//! was "trained on" (the harness's stand-in for parametric knowledge). At
//! query time, [`LlmDatabase::query`] parses the SQL, finds the referenced
//! virtual tables, *probes the model once per table* to materialize rows
//! (each probe is a metered prompt; corruption can garble rows exactly as
//! an LLM hallucinates records), then executes the SQL over the
//! materialized relations with the real engine.

use std::sync::Arc;

use llmdm_model::{CompletionRequest, LanguageModel, PromptEnvelope, SimLlm};
use llmdm_sqlengine::ast::Statement;
use llmdm_sqlengine::{Column, DataType, Database, ResultSet, Schema, SqlError, Table, Value};

/// A model-backed relation.
#[derive(Debug, Clone)]
pub struct VirtualTable {
    /// The table name SQL refers to.
    pub name: String,
    /// Column names (all TEXT-typed when materialized unless parseable).
    pub columns: Vec<String>,
    /// The knowledge rows "inside the model".
    pub knowledge: Vec<Vec<String>>,
    /// How hard recalling this table is (fuzzier knowledge = harder).
    pub recall_difficulty: f64,
}

impl VirtualTable {
    /// Declare a virtual table.
    pub fn new(name: &str, columns: &[&str], knowledge: Vec<Vec<String>>) -> Self {
        VirtualTable {
            name: name.to_lowercase(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            knowledge,
            recall_difficulty: 0.1,
        }
    }

    /// Render the gold row block (the probe's expected completion).
    fn gold_block(&self) -> String {
        self.knowledge
            .iter()
            .map(|row| row.join(" | "))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// A plausible-but-wrong recall (rows swapped/garbled) used as the
    /// corruption alternative.
    fn hallucinated_block(&self) -> String {
        let mut rows = self.knowledge.clone();
        if rows.len() >= 2 {
            // Swap the first column of the first two rows — a classic
            // cross-record hallucination.
            let tmp = rows[0][0].clone();
            rows[0][0] = rows[1][0].clone();
            rows[1][0] = tmp;
        } else if let Some(first) = rows.first_mut() {
            if let Some(cell) = first.first_mut() {
                cell.push_str(" (?)");
            }
        }
        rows.iter().map(|r| r.join(" | ")).collect::<Vec<_>>().join("\n")
    }
}

/// A database façade over virtual, model-backed tables.
pub struct LlmDatabase {
    model: Arc<SimLlm>,
    tables: Vec<VirtualTable>,
}

impl std::fmt::Debug for LlmDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LlmDatabase")
            .field("tables", &self.tables.iter().map(|t| t.name.clone()).collect::<Vec<_>>())
            .finish()
    }
}

impl LlmDatabase {
    /// Create a façade over `model` with the given virtual tables.
    pub fn new(model: Arc<SimLlm>, tables: Vec<VirtualTable>) -> Self {
        LlmDatabase { model, tables }
    }

    /// Probe the model for one table's rows; parse `|`-separated lines.
    fn materialize(&self, vt: &VirtualTable) -> Result<Table, SqlError> {
        let prompt = PromptEnvelope::builder("oracle")
            .header("gold", vt.gold_block().replace('\n', "\\n"))
            .header("difficulty", vt.recall_difficulty)
            .header("alt", vt.hallucinated_block().replace('\n', "\\n"))
            .body(format!(
                "List every row of the {} table with columns {} as \
                 pipe-separated lines.",
                vt.name,
                vt.columns.join(", ")
            ))
            .build();
        let completion = self
            .model
            .complete(&CompletionRequest::new(prompt))
            .map_err(|e| SqlError::Exec(format!("model probe failed: {e}")))?;
        let text = completion.text.replace("\\n", "\n");

        let schema = Schema::new(
            vt.columns.iter().map(|c| Column::new(c, DataType::Text)).collect(),
        );
        // Column typing: integers where every cell parses.
        let rows: Vec<Vec<String>> = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.split(" | ").map(|c| c.trim().to_string()).collect())
            .collect();
        let mut int_cols = vec![true; vt.columns.len()];
        for row in &rows {
            for (i, cell) in row.iter().enumerate().take(vt.columns.len()) {
                if cell.parse::<i64>().is_err() {
                    int_cols[i] = false;
                }
            }
        }
        let schema = Schema::new(
            schema
                .columns()
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    Column::new(&c.name, if int_cols[i] { DataType::Int } else { DataType::Text })
                })
                .collect(),
        );
        let mut table = Table::new(&vt.name, schema);
        for row in rows {
            if row.len() != vt.columns.len() {
                continue; // drop malformed hallucinated lines
            }
            let values: Vec<Value> = row
                .iter()
                .enumerate()
                .map(|(i, cell)| {
                    if int_cols[i] {
                        cell.parse::<i64>().map(Value::Int).unwrap_or(Value::Null)
                    } else {
                        Value::Str(cell.clone())
                    }
                })
                .collect();
            table.push_row(values)?;
        }
        Ok(table)
    }

    /// Execute SQL against the virtual tables: decompose (find referenced
    /// tables), probe/materialize each, then run the query for real.
    pub fn query(&self, sql: &str) -> Result<ResultSet, SqlError> {
        let stmt = llmdm_sqlengine::parse_statement(sql)?;
        let Statement::Select(select) = &stmt else {
            return Err(SqlError::Exec("LLM-as-database supports SELECT only".into()));
        };
        let mut referenced: Vec<String> = Vec::new();
        collect_tables(select, &mut referenced);

        let mut db = Database::new();
        for name in &referenced {
            let vt = self
                .tables
                .iter()
                .find(|t| t.name == name.to_lowercase())
                .ok_or_else(|| SqlError::UnknownTable(name.clone()))?;
            db.create_table(self.materialize(vt)?)?;
        }
        llmdm_sqlengine::exec::execute_select(&db, select)
    }
}

/// Collect all table names referenced by a SELECT (FROM items and
/// subqueries).
fn collect_tables(select: &llmdm_sqlengine::SelectStmt, out: &mut Vec<String>) {
    for f in &select.from {
        let name = f.table.to_lowercase();
        if !out.contains(&name) {
            out.push(name);
        }
    }
    // Walk expressions for subqueries.
    fn walk_expr(e: &llmdm_sqlengine::Expr, out: &mut Vec<String>) {
        use llmdm_sqlengine::Expr::*;
        match e {
            Binary { left, right, .. } => {
                walk_expr(left, out);
                walk_expr(right, out);
            }
            Unary { expr, .. } | IsNull { expr, .. } | Like { expr, .. } => walk_expr(expr, out),
            InList { expr, list, .. } => {
                walk_expr(expr, out);
                for i in list {
                    walk_expr(i, out);
                }
            }
            Between { expr, low, high, .. } => {
                walk_expr(expr, out);
                walk_expr(low, out);
                walk_expr(high, out);
            }
            InSubquery { expr, subquery, .. } => {
                walk_expr(expr, out);
                collect_tables(subquery, out);
            }
            Exists { subquery, .. } | ScalarSubquery(subquery) => collect_tables(subquery, out),
            Aggregate { arg: Some(a), .. } => walk_expr(a, out),
            _ => {}
        }
    }
    if let Some(w) = &select.selection {
        walk_expr(w, out);
    }
    if let Some(h) = &select.having {
        walk_expr(h, out);
    }
    if let Some((_, _, rhs)) = &select.set_op {
        collect_tables(rhs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_model::ModelZoo;

    fn movie_tables() -> Vec<VirtualTable> {
        vec![
            VirtualTable::new(
                "movies",
                &["title", "director", "year"],
                vec![
                    vec!["the silent river".into(), "dara okafor".into(), "1998".into()],
                    vec!["golden horizon".into(), "marco costa".into(), "2003".into()],
                    vec!["frozen archive".into(), "dara okafor".into(), "2007".into()],
                ],
            ),
            VirtualTable::new(
                "awards",
                &["title", "award"],
                vec![
                    vec!["golden horizon".into(), "best picture".into()],
                    vec!["frozen archive".into(), "best score".into()],
                ],
            ),
        ]
    }

    fn facade() -> LlmDatabase {
        let zoo = ModelZoo::standard(3);
        LlmDatabase::new(zoo.large(), movie_tables())
    }

    #[test]
    fn simple_select_over_virtual_table() {
        let db = facade();
        let rs = db.query("SELECT title FROM movies WHERE year > 2000").unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn join_across_two_virtual_tables() {
        let db = facade();
        let rs = db
            .query(
                "SELECT m.director FROM movies m JOIN awards a ON m.title = a.title \
                 WHERE a.award = 'best picture'",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Str("marco costa".into()));
    }

    #[test]
    fn aggregates_work() {
        let db = facade();
        let rs = db.query("SELECT director, COUNT(*) FROM movies GROUP BY director ORDER BY COUNT(*) DESC").unwrap();
        assert_eq!(rs.rows[0][0], Value::Str("dara okafor".into()));
        assert_eq!(rs.rows[0][1], Value::Int(2));
    }

    #[test]
    fn subquery_tables_are_materialized_too() {
        let db = facade();
        let rs = db
            .query(
                "SELECT title FROM movies WHERE title IN (SELECT title FROM awards)",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn unknown_virtual_table_errors() {
        let db = facade();
        assert!(matches!(
            db.query("SELECT * FROM nonexistent"),
            Err(SqlError::UnknownTable(_))
        ));
    }

    #[test]
    fn non_select_rejected() {
        let db = facade();
        assert!(db.query("DELETE FROM movies").is_err());
    }

    #[test]
    fn weak_model_hallucinates_rows() {
        // With the small tier and fuzzier knowledge, some probes corrupt —
        // the reliability concern §III-E raises about LLM outputs.
        let zoo = ModelZoo::standard(11);
        let mut tables = movie_tables();
        for t in &mut tables {
            t.recall_difficulty = 0.8;
        }
        let strong = LlmDatabase::new(zoo.large(), tables.clone());
        let weak = LlmDatabase::new(zoo.small(), tables);
        let gold = strong.query("SELECT director FROM movies WHERE title = 'the silent river'");
        let got = weak.query("SELECT director FROM movies WHERE title = 'the silent river'");
        // Both run; the weak façade's answer may differ (hallucinated
        // swap). We only require that the machinery keeps working.
        assert!(gold.is_ok());
        assert!(got.is_ok());
    }

    #[test]
    fn probes_are_metered() {
        let zoo = ModelZoo::standard(5);
        let db = LlmDatabase::new(zoo.large(), movie_tables());
        zoo.meter().reset();
        db.query("SELECT m.title FROM movies m JOIN awards a ON m.title = a.title").unwrap();
        // One probe per referenced table.
        assert_eq!(zoo.meter().snapshot().total_calls(), 2);
    }
}
