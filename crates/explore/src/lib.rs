//! # llmdm-explore — LLM for data exploration (§II-D)
//!
//! * [`lake`] — **multi-modal data lake management** (§II-D1): text
//!   documents, relational tables, image captions+features, and log files
//!   "encoded in the same embedding space", searched semantically and —
//!   because "similar vectors may not represent related information" —
//!   *hybrid*-searched with attribute filters. Includes the paper's
//!   "Could Prof. Michael Jordan play basketball" disambiguation case,
//!   where pure vector search surfaces the basketball player and the
//!   entity-type filter recovers the professor.
//! * [`llm_as_db`] — **LLM as databases** (§II-D2, after Saeed et al.):
//!   SQL over *virtual tables* whose rows live inside a language model.
//!   A query is decomposed per referenced virtual table; each table is
//!   materialized by prompting the model for its rows; the decomposed
//!   SQL then executes over the materialized relations.

#![warn(missing_docs)]

pub mod lake;
pub mod llm_as_db;

pub use lake::{DataLake, LakeItem, LakeSearchHit, Modality};
pub use llm_as_db::{LlmDatabase, VirtualTable};
