//! The multi-modal data lake: one embedding space over text, tables,
//! images (captions + features), and logs, with hybrid attribute-filtered
//! search.

use llmdm_model::Embedder;
use llmdm_sqlengine::Table;
use llmdm_vecdb::{AttrValue, Collection, Filter, Metric, VecDbError};

/// Data modalities a lake can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modality {
    /// Free text documents.
    Text,
    /// Relational tables.
    Table,
    /// Images (represented by caption + extracted feature text).
    Image,
    /// Log files.
    Log,
}

impl Modality {
    /// Stable label used in attribute filters.
    pub fn label(&self) -> &'static str {
        match self {
            Modality::Text => "text",
            Modality::Table => "table",
            Modality::Image => "image",
            Modality::Log => "log",
        }
    }
}

/// An item stored in the lake.
#[derive(Debug, Clone, PartialEq)]
pub struct LakeItem {
    /// Lake-assigned id.
    pub id: u64,
    /// The item's modality.
    pub modality: Modality,
    /// Human-readable title.
    pub title: String,
    /// The text surface embedded into the unified space (document body,
    /// serialized table, image caption, log excerpt).
    pub surface: String,
}

/// A search result.
#[derive(Debug, Clone, PartialEq)]
pub struct LakeSearchHit {
    /// The matching item.
    pub item: LakeItem,
    /// Similarity score.
    pub score: f32,
}

/// The multi-modal data lake.
#[derive(Debug)]
pub struct DataLake {
    embedder: Embedder,
    coll: Collection,
    items: Vec<LakeItem>,
    next_id: u64,
}

impl DataLake {
    /// Create a lake with the shared embedding space.
    pub fn new(seed: u64) -> Self {
        let embedder = Embedder::standard(seed);
        let coll = Collection::new(embedder.dim(), Metric::Cosine);
        DataLake { embedder, coll, items: Vec::new(), next_id: 0 }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the lake is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn add(
        &mut self,
        modality: Modality,
        title: &str,
        surface: String,
        attrs: Vec<(String, AttrValue)>,
    ) -> Result<u64, VecDbError> {
        let v = self.embedder.embed(&surface).map_err(|_| VecDbError::Empty("surface"))?;
        let id = self.next_id;
        self.next_id += 1;
        let mut metadata = attrs;
        metadata.push(("modality".to_string(), AttrValue::from(modality.label())));
        metadata.push(("title".to_string(), AttrValue::from(title)));
        self.coll.insert(id, v, metadata)?;
        self.items.push(LakeItem { id, modality, title: title.to_string(), surface });
        Ok(id)
    }

    /// Add a text document with optional attributes (e.g. entity types the
    /// paper's hybrid search filters on).
    pub fn add_text(
        &mut self,
        title: &str,
        body: &str,
        attrs: Vec<(String, AttrValue)>,
    ) -> Result<u64, VecDbError> {
        self.add(Modality::Text, title, format!("{title}. {body}"), attrs)
    }

    /// Add a relational table; the embedded surface is a natural-language
    /// serialization of its header and sample rows.
    pub fn add_table(
        &mut self,
        table: &Table,
        attrs: Vec<(String, AttrValue)>,
    ) -> Result<u64, VecDbError> {
        let cols: Vec<&str> =
            table.schema.columns().iter().map(|c| c.name.as_str()).collect();
        let mut surface = format!(
            "table {} with columns {}",
            table.name,
            cols.join(", ")
        );
        for row in table.rows.iter().take(5) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            surface.push_str(&format!("; row {}", cells.join(" ")));
        }
        self.add(Modality::Table, &table.name.clone(), surface, attrs)
    }

    /// Add a table at **row granularity**: each row becomes its own lake
    /// item (§III-B2: "for tables, an embedding can represent a table or
    /// specific rows of the table. … Varied granularities can influence
    /// query performance differently"). Row items share the table's
    /// attributes plus a `row` index attribute. Returns the item ids.
    pub fn add_table_rows(
        &mut self,
        table: &Table,
        attrs: Vec<(String, AttrValue)>,
    ) -> Result<Vec<u64>, VecDbError> {
        let cols: Vec<&str> =
            table.schema.columns().iter().map(|c| c.name.as_str()).collect();
        let mut ids = Vec::with_capacity(table.rows.len());
        for (r, row) in table.rows.iter().enumerate() {
            let cells: Vec<String> = cols
                .iter()
                .zip(row)
                .map(|(c, v)| format!("{c} {v}"))
                .collect();
            let surface = format!("row of table {}: {}", table.name, cells.join(", "));
            let mut meta = attrs.clone();
            meta.push(("row".to_string(), AttrValue::Int(r as i64)));
            let id = self.add(
                Modality::Table,
                &format!("{} row {r}", table.name),
                surface,
                meta,
            )?;
            ids.push(id);
        }
        Ok(ids)
    }

    /// Add an image by caption + extracted feature phrases (the offline
    /// stand-in for a vision encoder).
    pub fn add_image(
        &mut self,
        title: &str,
        caption: &str,
        feature_phrases: &[&str],
        attrs: Vec<(String, AttrValue)>,
    ) -> Result<u64, VecDbError> {
        let surface = format!("{title}. {caption}. {}", feature_phrases.join(", "));
        self.add(Modality::Image, title, surface, attrs)
    }

    /// Add a log excerpt.
    pub fn add_log(
        &mut self,
        title: &str,
        excerpt: &str,
        attrs: Vec<(String, AttrValue)>,
    ) -> Result<u64, VecDbError> {
        self.add(Modality::Log, title, format!("{title}. {excerpt}"), attrs)
    }

    fn to_hits(&self, hits: Vec<llmdm_vecdb::SearchHit>) -> Vec<LakeSearchHit> {
        hits.into_iter()
            .filter_map(|h| {
                self.items
                    .iter()
                    .find(|i| i.id == h.id)
                    .map(|item| LakeSearchHit { item: item.clone(), score: h.score })
            })
            .collect()
    }

    /// Pure semantic search across all modalities.
    pub fn search(&self, query: &str, k: usize) -> Result<Vec<LakeSearchHit>, VecDbError> {
        let v = self.embedder.embed(query).map_err(|_| VecDbError::Empty("query"))?;
        Ok(self.to_hits(self.coll.search_exact(&v, k)?))
    }

    /// Hybrid search: semantic similarity + attribute filter (the paper's
    /// fix for "similar vectors may not represent related information").
    pub fn search_filtered(
        &self,
        query: &str,
        k: usize,
        filter: &Filter,
    ) -> Result<Vec<LakeSearchHit>, VecDbError> {
        let v = self.embedder.embed(query).map_err(|_| VecDbError::Empty("query"))?;
        Ok(self.to_hits(self.coll.search_filtered(&v, k, filter)?))
    }

    /// Restrict search to one modality.
    pub fn search_modality(
        &self,
        query: &str,
        k: usize,
        modality: Modality,
    ) -> Result<Vec<LakeSearchHit>, VecDbError> {
        self.search_filtered(query, k, &Filter::eq("modality", modality.label()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_sqlengine::{Column, DataType, Schema, Value};

    /// The paper's §III-B2 scenario: a basketball-star text and a
    /// professors table both mentioning "Michael Jordan".
    fn jordan_lake() -> DataLake {
        let mut lake = DataLake::new(7);
        lake.add_text(
            "sports legends",
            "Michael Jordan, the greatest basketball player of all time, \
             found the secret to success on the court",
            vec![("entity_type".to_string(), AttrValue::from("athlete"))],
        )
        .unwrap();
        let schema = Schema::new(vec![
            Column::new("name", DataType::Text),
            Column::new("department", DataType::Text),
            Column::new("university", DataType::Text),
        ]);
        let mut professors = Table::new("professors", schema);
        professors
            .push_row(vec![
                Value::Str("Michael Jordan".into()),
                Value::Str("machine learning".into()),
                Value::Str("berkeley".into()),
            ])
            .unwrap();
        professors
            .push_row(vec![
                Value::Str("Ada Lovelace".into()),
                Value::Str("mathematics".into()),
                Value::Str("cambridge".into()),
            ])
            .unwrap();
        lake.add_table(
            &professors,
            vec![("entity_type".to_string(), AttrValue::from("professor"))],
        )
        .unwrap();
        lake.add_image(
            "court photo",
            "a basketball arena at night",
            &["crowd", "hoop", "scoreboard"],
            vec![("entity_type".to_string(), AttrValue::from("venue"))],
        )
        .unwrap();
        lake.add_log(
            "query log",
            "SELECT * FROM games WHERE season = 1996",
            vec![],
        )
        .unwrap();
        lake
    }

    #[test]
    fn vector_search_alone_surfaces_the_athlete() {
        let lake = jordan_lake();
        let hits = lake.search("Could Prof. Michael Jordan play basketball", 2).unwrap();
        // Pure similarity: the basketball text dominates — the trap the
        // paper describes.
        assert_eq!(hits[0].item.modality, Modality::Text);
        assert!(hits[0].item.surface.contains("basketball player"));
    }

    #[test]
    fn attribute_filter_recovers_the_professor() {
        let lake = jordan_lake();
        let hits = lake
            .search_filtered(
                "Could Prof. Michael Jordan play basketball",
                1,
                &Filter::eq("entity_type", "professor"),
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].item.modality, Modality::Table);
        assert!(hits[0].item.surface.contains("professors"));
    }

    #[test]
    fn modality_restriction() {
        let lake = jordan_lake();
        let hits = lake.search_modality("basketball arena", 2, Modality::Image).unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.item.modality == Modality::Image));
    }

    #[test]
    fn all_modalities_share_one_space() {
        let lake = jordan_lake();
        assert_eq!(lake.len(), 4);
        let hits = lake.search("basketball", 4).unwrap();
        let mods: Vec<Modality> = hits.iter().map(|h| h.item.modality).collect();
        assert!(mods.contains(&Modality::Text));
        assert!(mods.contains(&Modality::Image));
    }

    #[test]
    fn log_search() {
        let lake = jordan_lake();
        let hits = lake.search_modality("SELECT games season", 1, Modality::Log).unwrap();
        assert_eq!(hits[0].item.title, "query log");
    }

    #[test]
    fn empty_query_errors() {
        let lake = jordan_lake();
        assert!(lake.search("", 3).is_err());
    }

    /// §III-B2 granularity: a row-level question ranks the matching *row*
    /// item above the whole-table item whose surface is dominated by other
    /// rows.
    #[test]
    fn row_granularity_wins_row_level_queries() {
        let schema = Schema::new(vec![
            Column::new("name", DataType::Text),
            Column::new("department", DataType::Text),
        ]);
        let mut staff = Table::new("staff", schema);
        for (n, d) in [
            ("ada lovelace", "mathematics"),
            ("grace hopper", "compilers"),
            ("dara okafor", "databases"),
            ("emil novak", "networking"),
            ("farah haddad", "graphics"),
        ] {
            staff
                .push_row(vec![Value::Str(n.into()), Value::Str(d.into())])
                .unwrap();
        }
        let mut lake = DataLake::new(9);
        lake.add_table(&staff, vec![("gran".to_string(), AttrValue::from("table"))]).unwrap();
        let row_ids =
            lake.add_table_rows(&staff, vec![("gran".to_string(), AttrValue::from("row"))]).unwrap();
        assert_eq!(row_ids.len(), 5);

        let hits = lake.search("which department is grace hopper in", 2).unwrap();
        assert!(
            hits[0].item.title.contains("row"),
            "row-granularity item should rank first, got {:?}",
            hits[0].item.title
        );
        assert!(hits[0].item.surface.contains("grace hopper"));
    }
}
