//! Property tests for the storage tier's three core invariants:
//!
//! 1. **Torn-tail truncation** — cut the WAL at *any* random byte
//!    length and recovery rebuilds exactly the transactions whose
//!    `Commit` frame survived the cut, never a partial one.
//! 2. **Replay idempotence** — recovering twice from the same image
//!    yields byte-identical database files and identical scans.
//! 3. **No-steal buffer pool** — under random workloads with tiny pool
//!    capacities, eviction pressure never loses a dirty page.

use std::collections::HashMap;

use llmdm_rt::proptest;
use llmdm_rt::proptest::prelude::*;
use llmdm_rt::rand::{Rng, SeedableRng, SmallRng};
use llmdm_store::{
    Vfs,
    MemVfs, Pager, SharedVfs, StorageFaults, Store, StoreConfig, Wal, WalRecord, PAGE_DATA,
};

const SPACE: &str = "events";

fn config() -> StoreConfig {
    StoreConfig { checkpoint_bytes: None, faults: StorageFaults::none(), ..StoreConfig::default() }
}

fn expected(commits: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for k in 0..commits {
        for j in 0..=k {
            out.push(format!("rec-{k}-{j}").into_bytes());
        }
    }
    out
}

/// Run `commits` commits on a fresh store and return the full WAL
/// bytes (checkpointing disabled, so every frame is still there).
fn workload_wal(commits: usize) -> Vec<u8> {
    let vfs = MemVfs::shared();
    let shared: SharedVfs = vfs.clone();
    let mut s = Store::open(shared, config()).unwrap();
    for k in 0..commits {
        s.with_txn(|s| {
            if k == 0 {
                s.create_space(SPACE)?;
            }
            for j in 0..=k {
                s.append(SPACE, format!("rec-{k}-{j}").as_bytes())?;
            }
            Ok(())
        })
        .unwrap();
    }
    drop(s);
    let v = llmdm_rt::lock_recover(&vfs);
    v.bytes("data.wal")
}

/// How many workload commits have their `Commit` frame fully inside
/// `bytes[..cut]` — computed by independent frame arithmetic (each
/// frame's length re-derived from its encoding), not by the recovery
/// scanner under test.
fn commits_within(bytes: &[u8], cut: usize) -> usize {
    let full = Wal::scan(bytes);
    assert!(!full.torn, "workload WAL must be clean");
    let mut offset = 0usize;
    let mut committed = 0usize;
    for rec in &full.records {
        offset += rec.encode().len();
        if offset <= cut {
            if let WalRecord::Commit { .. } = rec {
                committed += 1;
            }
        }
    }
    committed
}

/// Open a store whose entire persistent state is `wal[..cut]` (empty
/// database file), i.e. recover purely from the cut WAL.
fn recover_from_cut(wal: &[u8], cut: usize) -> (Store, Vec<Vec<u8>>) {
    let vfs = MemVfs::shared();
    {
        let mut v = llmdm_rt::lock_recover(&vfs);
        v.write_at("data.wal", 0, &wal[..cut]).unwrap();
        v.sync("data.wal").unwrap();
    }
    let shared: SharedVfs = vfs.clone();
    let mut s = Store::open(shared, config()).unwrap();
    let records = if s.has_space(SPACE) { s.scan(SPACE).unwrap() } else { Vec::new() };
    (s, records)
}

proptest! {
    #[test]
    fn torn_tail_cut_recovers_to_last_committed_txn(
        commits in 1usize..5,
        cut_sel in any::<u64>(),
    ) {
        let wal = workload_wal(commits);
        let cut = (cut_sel as usize) % (wal.len() + 1);
        let want = commits_within(&wal, cut);
        let (s, records) = recover_from_cut(&wal, cut);
        prop_assert_eq!(s.recovery().committed_txns, want);
        prop_assert_eq!(records, expected(want));
        // The truncated WAL must re-scan clean: no torn tail survives.
        prop_assert!(s.wal_len() <= cut as u64);
    }

    #[test]
    fn recovery_replay_is_idempotent(
        commits in 1usize..5,
        cut_sel in any::<u64>(),
    ) {
        let wal = workload_wal(commits);
        let cut = (cut_sel as usize) % (wal.len() + 1);

        let vfs = MemVfs::shared();
        {
            let mut v = llmdm_rt::lock_recover(&vfs);
            v.write_at("data.wal", 0, &wal[..cut]).unwrap();
            v.sync("data.wal").unwrap();
        }
        let open = |vfs: &std::sync::Arc<std::sync::Mutex<MemVfs>>| {
            let shared: SharedVfs = vfs.clone();
            let mut s = Store::open(shared, config()).unwrap();
            let recs = if s.has_space(SPACE) { s.scan(SPACE).unwrap() } else { Vec::new() };
            drop(s);
            recs
        };
        let once = open(&vfs);
        let db_once = llmdm_rt::lock_recover(&vfs).bytes("data.db");
        let twice = open(&vfs);
        let db_twice = llmdm_rt::lock_recover(&vfs).bytes("data.db");
        prop_assert_eq!(once, twice);
        prop_assert_eq!(db_once, db_twice);
    }

    #[test]
    fn eviction_pressure_never_loses_a_dirty_page(
        seed in any::<u64>(),
        cap in 2usize..6,
        steps in 30usize..120,
    ) {
        let vfs = MemVfs::shared();
        let shared: SharedVfs = vfs.clone();
        let mut pager = Pager::new(shared.clone(), "p.db", cap);
        let mut model: HashMap<u32, u8> = HashMap::new();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..steps {
            let id = rng.gen_range(1u32..20);
            if rng.gen_bool(0.6) {
                let fill = rng.gen_range(1u8..=255);
                pager.page_mut(id).unwrap().fill(fill);
                model.insert(id, fill);
            } else {
                let got = pager.page(id).unwrap()[0];
                prop_assert_eq!(got, model.get(&id).copied().unwrap_or(0));
            }
        }
        // Every dirty write must still be visible through the pool...
        for (&id, &fill) in &model {
            prop_assert!(
                pager.page(id).unwrap().iter().all(|&b| b == fill),
                "page {} lost its dirty content under eviction pressure", id
            );
        }
        // ...and survive a flush + crash + cold re-read from disk.
        for id in pager.dirty_pages() {
            pager.flush_page(id).unwrap();
        }
        llmdm_rt::lock_recover(&vfs).sync("p.db").unwrap();
        llmdm_rt::lock_recover(&vfs).crash();
        let mut cold = Pager::new(shared, "p.db", cap);
        for (&id, &fill) in &model {
            prop_assert!(
                cold.page(id).unwrap().iter().all(|&b| b == fill),
                "page {} flushed wrong bytes", id
            );
        }
        let _ = PAGE_DATA;
    }
}
