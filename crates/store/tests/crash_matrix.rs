//! The crash matrix: for every barrier crossing of a fixed workload,
//! kill the process exactly there, crash the disk (clean and torn),
//! re-open, and assert the database recovered to **exactly the
//! committed prefix** — byte-reproducibly, and idempotently under
//! double replay.

use std::sync::{Arc, Mutex};

use llmdm_store::{
    BarrierOp, KillPoint, MemVfs, SharedVfs, StorageFaults, Store, StoreConfig, StoreError,
};

const SPACE: &str = "events";
const COMMITS: usize = 4;

fn config(faults: StorageFaults) -> StoreConfig {
    // Checkpointing off: every committed txn stays visible in the WAL,
    // so `recovery().committed_txns` counts the whole workload prefix.
    StoreConfig { checkpoint_bytes: None, faults, ..StoreConfig::default() }
}

fn shared(vfs: &Arc<Mutex<MemVfs>>) -> SharedVfs {
    vfs.clone()
}

/// Commit number `k` of the workload (commit 0 creates the space).
/// Each commit appends `k + 1` records so commits differ in page
/// pressure.
fn apply_commit(s: &mut Store, k: usize) -> Result<(), StoreError> {
    s.with_txn(|s| {
        if k == 0 {
            s.create_space(SPACE)?;
        }
        for j in 0..=k {
            s.append(SPACE, format!("rec-{k}-{j}").as_bytes())?;
        }
        Ok(())
    })
}

/// Expected records after the first `commits` commits.
fn expected(commits: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for k in 0..commits {
        for j in 0..=k {
            out.push(format!("rec-{k}-{j}").into_bytes());
        }
    }
    out
}

/// Dry-run the workload and return each barrier crossing paired with
/// the index of the commit it happened in.
fn record_ops() -> Vec<(BarrierOp, usize)> {
    let vfs = MemVfs::shared();
    let mut s = Store::open(shared(&vfs), config(StorageFaults::recording())).unwrap();
    for k in 0..COMMITS {
        apply_commit(&mut s, k).unwrap();
    }
    let ops = s.faults().ops();
    let mut out = Vec::new();
    let mut commit = 0usize;
    for op in ops {
        if op.point == KillPoint::PostWalAppend {
            // Each commit crosses PostWalAppend exactly once, first.
            out.push((op, commit));
            commit += 1;
        } else {
            out.push((op, commit - 1));
        }
    }
    out
}

/// Run the workload against a kill scheduled at `op`, returning the
/// vfs after the kill fired (workload stops at the dead commit).
fn run_until_kill(op: BarrierOp) -> (Arc<Mutex<MemVfs>>, usize) {
    let vfs = MemVfs::shared();
    let mut s =
        Store::open(shared(&vfs), config(StorageFaults::kill_at(op.point, op.at_ms))).unwrap();
    for k in 0..COMMITS {
        match apply_commit(&mut s, k) {
            Ok(()) => {}
            Err(StoreError::Killed(kp)) => {
                assert_eq!(kp, op.point, "kill fired at the scheduled point");
                return (vfs, k);
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    panic!("scheduled kill at tick {} never fired", op.at_ms);
}

fn recovered_scan(vfs: &Arc<Mutex<MemVfs>>) -> (Store, Vec<Vec<u8>>) {
    let mut s = Store::open(shared(vfs), config(StorageFaults::none())).unwrap();
    let records = if s.has_space(SPACE) { s.scan(SPACE).unwrap() } else { Vec::new() };
    (s, records)
}

#[test]
fn every_kill_point_recovers_to_the_committed_prefix() {
    let ops = record_ops();
    assert!(
        ops.iter().filter(|(o, _)| o.point == KillPoint::MidPageFlush).count() >= COMMITS,
        "workload must exercise mid-flush barriers"
    );
    for (op, commit) in ops {
        let (vfs, died_in) = run_until_kill(op);
        assert_eq!(died_in, commit, "kill landed in the predicted commit");
        llmdm_rt::lock_recover(&vfs).crash();
        let (s, records) = recovered_scan(&vfs);
        // PostWalAppend fires before the WAL fsync: the dying commit is
        // lost. The other two fire after: it is durable.
        let committed = match op.point {
            KillPoint::PostWalAppend => commit,
            KillPoint::PostWalSync | KillPoint::MidPageFlush => commit + 1,
        };
        assert_eq!(
            s.recovery().committed_txns,
            committed,
            "committed txns after kill at {:?} in commit {commit}",
            op.point
        );
        assert_eq!(
            records,
            expected(committed),
            "scan after kill at {:?} in commit {commit}",
            op.point
        );
    }
}

#[test]
fn torn_tail_crashes_still_recover_exactly_the_committed_set() {
    let ops = record_ops();
    // Torn crashes matter most where the WAL tail is unsynced.
    for (op, commit) in ops.iter().filter(|(o, _)| o.point == KillPoint::PostWalAppend) {
        for seed in 0..4u64 {
            let (vfs, _) = run_until_kill(*op);
            llmdm_rt::lock_recover(&vfs).crash_torn(seed);
            let (s, records) = recovered_scan(&vfs);
            let committed = s.recovery().committed_txns;
            // The dying commit's frames were volatile; a torn crash may
            // keep any prefix of them, including the whole Commit frame.
            assert!(
                committed == *commit || committed == commit + 1,
                "torn crash (seed {seed}) must recover {commit} or {} committed txns, got {committed}",
                commit + 1
            );
            assert_eq!(
                records,
                expected(committed),
                "state must match the recovered committed prefix (seed {seed})"
            );
        }
    }
}

#[test]
fn recovery_is_byte_reproducible_across_reruns() {
    let ops = record_ops();
    for point in KillPoint::all() {
        let (op, _) = *ops
            .iter()
            .filter(|(o, _)| o.point == point)
            .last()
            .expect("workload crosses every barrier");
        let image = |seed: u64| {
            let (vfs, _) = run_until_kill(op);
            llmdm_rt::lock_recover(&vfs).crash_torn(seed);
            let (_s, records) = recovered_scan(&vfs);
            let v = llmdm_rt::lock_recover(&vfs);
            (v.bytes("data.db"), v.bytes("data.wal"), records)
        };
        for seed in [3u64, 17] {
            assert_eq!(image(seed), image(seed), "same seed, same bytes ({point:?})");
        }
    }
}

#[test]
fn double_replay_is_idempotent() {
    let ops = record_ops();
    for point in KillPoint::all() {
        let (op, _) = *ops
            .iter()
            .filter(|(o, _)| o.point == point)
            .last()
            .expect("workload crosses every barrier");
        let (vfs, _) = run_until_kill(op);
        llmdm_rt::lock_recover(&vfs).crash();

        let (s1, once) = recovered_scan(&vfs);
        drop(s1);
        let db_once = llmdm_rt::lock_recover(&vfs).bytes("data.db");

        // Open again without any new crash: recovery replays the same
        // WAL a second time.
        let (s2, twice) = recovered_scan(&vfs);
        drop(s2);
        let db_twice = llmdm_rt::lock_recover(&vfs).bytes("data.db");

        assert_eq!(once, twice, "replaying recovery must not change visible state ({point:?})");
        assert_eq!(db_once, db_twice, "replaying recovery must not change file bytes ({point:?})");
    }
}

#[test]
fn stochastic_chaos_sweep_converges_with_retries() {
    // Seeded random kills at every barrier; keep crashing and retrying
    // until the whole workload lands. The store must never lose a
    // committed commit or resurrect a killed one.
    for seed in 0..6u64 {
        let vfs = MemVfs::shared();
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts < 200, "chaos workload did not converge (seed {seed})");
            let faults = llmdm_store::StorageFaults::new(
                llmdm_resil::FaultPlan::new(
                    "chaos-matrix",
                    seed.wrapping_add(attempts),
                    KillPoint::all()
                        .into_iter()
                        .map(|p| {
                            llmdm_resil::TierPlan::with_rates(
                                p.label(),
                                llmdm_resil::FaultRates {
                                    rate_limited: 0.08,
                                    ..llmdm_resil::FaultRates::default()
                                },
                            )
                        })
                        .collect(),
                ),
                llmdm_resil::SimClock::new(),
            );
            let mut s = Store::open(shared(&vfs), config(faults)).unwrap();
            // How many commits already landed? Infer from record count
            // (commit k contributes k + 1 records).
            let present =
                if s.has_space(SPACE) { s.scan(SPACE).unwrap().len() } else { 0 };
            let mut done = 0;
            let mut acc = 0;
            while done < COMMITS && acc + done + 1 <= present {
                acc += done + 1;
                done += 1;
            }
            assert_eq!(acc, present, "recovered record count must be a commit boundary");
            assert_eq!(s.scan_or_empty(), expected(done), "prefix intact (seed {seed})");
            let mut killed = false;
            for k in done..COMMITS {
                match apply_commit(&mut s, k) {
                    Ok(()) => {}
                    Err(StoreError::Killed(_)) => {
                        killed = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            drop(s);
            if killed {
                llmdm_rt::lock_recover(&vfs).crash_torn(seed * 1000 + attempts);
                continue;
            }
            break;
        }
        let (_s, records) = recovered_scan(&vfs);
        assert_eq!(records, expected(COMMITS), "chaos run converged (seed {seed})");
    }
}

trait ScanOrEmpty {
    fn scan_or_empty(&mut self) -> Vec<Vec<u8>>;
}

impl ScanOrEmpty for Store {
    fn scan_or_empty(&mut self) -> Vec<Vec<u8>> {
        if self.has_space(SPACE) {
            self.scan(SPACE).unwrap()
        } else {
            Vec::new()
        }
    }
}
