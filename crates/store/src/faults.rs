//! [`StorageFaults`] — the adapter that turns `llmdm-resil`'s seeded
//! fault machinery into mid-commit kills.
//!
//! The commit protocol has three barriers, each a [`KillPoint`]:
//!
//! ```text
//! WAL append ──A──► WAL fsync ──B──► page flush (per page) ──C──► db fsync
//! ```
//!
//! Every barrier calls [`StorageFaults::check`], which advances a shared
//! [`SimClock`] by one tick and asks the [`FaultPlan`] for a decision at
//! `(kill-point label, per-point call index, now)`. Any fault decision
//! means *the process died right here*: the store returns
//! [`StoreError::Killed`] and wedges, and the harness crashes the vfs
//! and re-opens. Because the clock ticks once per barrier, "kill at the
//! N-th storage barrier" is simply an outage [`Window`] `[N, N+1)` on
//! the point's tier — fully deterministic, byte-reproducible, and
//! driven by exactly the same plan/decide machinery as the chaos
//! pipeline's model faults.
//!
//! Two usage modes:
//! * **Targeted** ([`StorageFaults::kill_at`]): kill at one specific
//!   barrier occurrence, located beforehand with a recording pass
//!   ([`StorageFaults::recording`] + [`StorageFaults::ops`]).
//! * **Stochastic** ([`StorageFaults::new`] with per-tier rates): each
//!   barrier independently dies with seeded probability — the chaos
//!   sweep in the crash matrix.

use std::collections::BTreeMap;
use std::sync::Mutex;

use llmdm_resil::{FaultPlan, SimClock, TierPlan, Window};
use llmdm_rt::lock_recover;

use crate::StoreError;

/// The commit-protocol barriers a kill can land on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KillPoint {
    /// After the transaction's frames (including `Commit`) were appended
    /// to the WAL, before the WAL fsync. A crash here loses the
    /// transaction: its frames were volatile.
    PostWalAppend,
    /// After the WAL fsync. The transaction is durably committed; a
    /// crash here forces recovery to redo its page images.
    PostWalSync,
    /// Between individual page writes of the post-commit flush (also
    /// hit once before the first page). The database file may be left
    /// torn; recovery redoes from the WAL.
    MidPageFlush,
}

impl KillPoint {
    /// Stable tier label used in [`FaultPlan`]s and metrics
    /// (`store.kills.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            KillPoint::PostWalAppend => "store.wal_append",
            KillPoint::PostWalSync => "store.wal_sync",
            KillPoint::MidPageFlush => "store.page_flush",
        }
    }

    /// All kill points, in commit-protocol order.
    pub fn all() -> [KillPoint; 3] {
        [KillPoint::PostWalAppend, KillPoint::PostWalSync, KillPoint::MidPageFlush]
    }
}

/// One recorded barrier crossing (recording mode): which point, at what
/// simulated time, and its per-point call index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierOp {
    /// The barrier that was crossed.
    pub point: KillPoint,
    /// Simulated time (ticks since the clock started) *at* the check.
    pub at_ms: u64,
    /// How many prior checks this point had seen.
    pub call_index: u64,
}

/// The kill-point driver (see module docs).
#[derive(Debug)]
pub struct StorageFaults {
    plan: FaultPlan,
    clock: SimClock,
    indexes: Mutex<BTreeMap<&'static str, u64>>,
    log: Option<Mutex<Vec<BarrierOp>>>,
}

impl StorageFaults {
    /// Never kills (the production configuration).
    pub fn none() -> Self {
        StorageFaults::new(FaultPlan::none(), SimClock::new())
    }

    /// Drive kill decisions from `plan` on `clock`. Clones of `clock`
    /// share the timeline, so storage barriers and any co-simulated
    /// model faults advance one clock together.
    pub fn new(plan: FaultPlan, clock: SimClock) -> Self {
        StorageFaults { plan, clock, indexes: Mutex::new(BTreeMap::new()), log: None }
    }

    /// Never kills, but records every barrier crossing — the dry-run
    /// pass a harness uses to locate the exact tick for a targeted
    /// [`StorageFaults::kill_at`].
    pub fn recording() -> Self {
        let mut f = StorageFaults::none();
        f.log = Some(Mutex::new(Vec::new()));
        f
    }

    /// Kill the barrier crossing of `point` that happens at simulated
    /// tick `at_ms` (an outage window `[at_ms, at_ms + 1)` on the
    /// point's tier). Ticks count *all* barrier crossings in order, so
    /// take `at_ms` from a recording pass's [`BarrierOp::at_ms`].
    pub fn kill_at(point: KillPoint, at_ms: u64) -> Self {
        let plan = FaultPlan::new(
            "storage-kill",
            0,
            vec![TierPlan::quiet(point.label()).outage(Window::new(at_ms, at_ms + 1))],
        );
        StorageFaults::new(plan, SimClock::new())
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Recorded barrier crossings (empty unless built with
    /// [`StorageFaults::recording`]).
    pub fn ops(&self) -> Vec<BarrierOp> {
        self.log.as_ref().map(|l| lock_recover(l).clone()).unwrap_or_default()
    }

    /// Cross one barrier: advance the clock a tick and let the plan
    /// decide whether the process dies here.
    pub fn check(&self, point: KillPoint) -> Result<(), StoreError> {
        let now = self.clock.advance(1);
        let idx = {
            let mut m = lock_recover(&self.indexes);
            let e = m.entry(point.label()).or_insert(0);
            let i = *e;
            *e += 1;
            i
        };
        if let Some(l) = &self.log {
            lock_recover(l).push(BarrierOp { point, at_ms: now, call_index: idx });
        }
        if self.plan.decide(point.label(), idx, now).is_some() {
            llmdm_obs::counter_add(&format!("store.kills.{}", point.label()), 1.0);
            return Err(StoreError::Killed(point));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_resil::FaultRates;

    #[test]
    fn none_never_kills() {
        let f = StorageFaults::none();
        for _ in 0..100 {
            for p in KillPoint::all() {
                f.check(p).unwrap();
            }
        }
    }

    #[test]
    fn kill_at_fires_on_exactly_one_tick() {
        // Dry run: record the barrier sequence of a fake protocol.
        let rec = StorageFaults::recording();
        for _ in 0..3 {
            rec.check(KillPoint::PostWalAppend).unwrap();
            rec.check(KillPoint::PostWalSync).unwrap();
            rec.check(KillPoint::MidPageFlush).unwrap();
            rec.check(KillPoint::MidPageFlush).unwrap();
        }
        let ops = rec.ops();
        assert_eq!(ops.len(), 12);
        // Target: the 2nd commit's post-WAL-sync barrier.
        let target = ops
            .iter()
            .filter(|o| o.point == KillPoint::PostWalSync)
            .nth(1)
            .copied()
            .expect("second wal-sync barrier");
        assert_eq!(target.call_index, 1);

        // Replay with the kill scheduled: same sequence dies exactly there.
        let f = StorageFaults::kill_at(KillPoint::PostWalSync, target.at_ms);
        let mut died_at = None;
        'outer: for commit in 0..3 {
            for (i, p) in [
                KillPoint::PostWalAppend,
                KillPoint::PostWalSync,
                KillPoint::MidPageFlush,
                KillPoint::MidPageFlush,
            ]
            .into_iter()
            .enumerate()
            {
                if let Err(StoreError::Killed(kp)) = f.check(p) {
                    died_at = Some((commit, i, kp));
                    break 'outer;
                }
            }
        }
        assert_eq!(died_at, Some((1, 1, KillPoint::PostWalSync)));
    }

    #[test]
    fn stochastic_kills_are_seed_reproducible() {
        let run = |seed: u64| {
            let plan = FaultPlan::new(
                "chaos",
                seed,
                KillPoint::all()
                    .into_iter()
                    .map(|p| {
                        TierPlan::with_rates(
                            p.label(),
                            FaultRates { rate_limited: 0.15, ..FaultRates::default() },
                        )
                    })
                    .collect(),
            );
            let f = StorageFaults::new(plan, SimClock::new());
            let mut outcomes = Vec::new();
            for _ in 0..200 {
                for p in KillPoint::all() {
                    outcomes.push(f.check(p).is_err());
                }
            }
            outcomes
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should kill differently");
        assert!(run(7).iter().any(|&k| k), "some barrier should die at 15%");
    }
}
