//! The virtual file system under the pager and WAL.
//!
//! Two implementations share one trait:
//!
//! * [`DirVfs`] — real files in a directory, for actual persistence
//!   across process restarts (examples, benches).
//! * [`MemVfs`] — an in-memory disk model with **durable** and
//!   **volatile** layers. `write_at` touches only the volatile layer;
//!   [`Vfs::sync`] promotes a file's volatile bytes to durable —
//!   exactly the fsync contract. [`MemVfs::crash`] then models a
//!   process/machine death by discarding everything volatile, and
//!   [`MemVfs::crash_torn`] additionally keeps a *seeded random prefix*
//!   of the unsynced tail, the way a real disk tears a half-flushed
//!   write. This is what makes mid-commit kills testable: the crash
//!   matrix asserts recovery from every such image.
//!
//! All paths are flat file names (`data.db`, `data.wal`); the store
//! never uses directories below the vfs root.

use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use llmdm_rt::rand::{Rng, SeedableRng, SmallRng};

use crate::StoreError;

/// The file operations the storage engine needs. Reads past EOF
/// zero-fill (the pager treats never-written pages as all-zero).
pub trait Vfs: Send + std::fmt::Debug {
    /// Read `len` bytes at `offset`, zero-filling past end of file.
    fn read_at(&self, file: &str, offset: u64, len: usize) -> Vec<u8>;
    /// Write bytes at `offset`, extending the file if needed. The write
    /// is *not* durable until [`Vfs::sync`].
    fn write_at(&mut self, file: &str, offset: u64, data: &[u8]) -> Result<(), StoreError>;
    /// Truncate (or extend with zeros) to `len` bytes.
    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StoreError>;
    /// Make every prior write to `file` durable (fsync).
    fn sync(&mut self, file: &str) -> Result<(), StoreError>;
    /// Current length in bytes (0 for a missing file).
    fn len(&self, file: &str) -> u64;
}

/// A shareable vfs handle: the store holds one, and a crash harness
/// holds another to the same disk so it can crash/inspect it between
/// store lifetimes.
pub type SharedVfs = Arc<Mutex<dyn Vfs>>;

/// Lock a [`SharedVfs`], recovering from poison (a killed store may
/// have panicked a test thread while holding the disk).
pub(crate) fn vfs_lock(vfs: &SharedVfs) -> std::sync::MutexGuard<'_, dyn Vfs + 'static> {
    llmdm_rt::lock_recover(vfs)
}

// ---------------------------------------------------------------- mem

/// The two-layer in-memory disk (see module docs).
#[derive(Debug, Default)]
pub struct MemVfs {
    /// Bytes as of the last sync per file — what survives a crash.
    durable: BTreeMap<String, Vec<u8>>,
    /// Current bytes per file, including unsynced writes.
    volatile: BTreeMap<String, Vec<u8>>,
}

impl MemVfs {
    /// An empty disk.
    pub fn new() -> Self {
        MemVfs::default()
    }

    /// An empty disk, pre-wrapped for sharing with a [`crate::Store`].
    pub fn shared() -> Arc<Mutex<MemVfs>> {
        Arc::new(Mutex::new(MemVfs::new()))
    }

    /// Kill the machine: every unsynced write is lost, files revert to
    /// their last-synced bytes.
    pub fn crash(&mut self) {
        self.volatile = self.durable.clone();
    }

    /// Kill the machine mid-write: like [`MemVfs::crash`], but for each
    /// file whose volatile image is *longer* than its durable image, a
    /// seeded random prefix of the unsynced tail survives — the torn
    /// write a real disk leaves when power dies inside an appending
    /// write. Unsynced overwrites of already-durable regions are still
    /// lost wholesale (conservative, and what recovery must tolerate).
    pub fn crash_torn(&mut self, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut next = self.durable.clone();
        for (name, cur) in &self.volatile {
            let durable_len = next.get(name).map_or(0, Vec::len);
            if cur.len() > durable_len {
                let tail = &cur[durable_len..];
                let keep = rng.gen_range(0..=tail.len());
                next.entry(name.clone()).or_default().extend_from_slice(&tail[..keep]);
            }
        }
        self.volatile = next;
    }

    /// The current (volatile) bytes of a file — for byte-identity
    /// assertions in tests and the crash matrix.
    pub fn bytes(&self, file: &str) -> Vec<u8> {
        self.volatile.get(file).cloned().unwrap_or_default()
    }

    /// The durable (synced) bytes of a file.
    pub fn durable_bytes(&self, file: &str) -> Vec<u8> {
        self.durable.get(file).cloned().unwrap_or_default()
    }

    /// Deep copy of the whole disk (both layers) — snapshot/restore for
    /// crash-matrix scenarios that branch from one populated state.
    pub fn snapshot(&self) -> MemVfs {
        MemVfs { durable: self.durable.clone(), volatile: self.volatile.clone() }
    }
}

impl Vfs for MemVfs {
    fn read_at(&self, file: &str, offset: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        if let Some(data) = self.volatile.get(file) {
            let start = (offset as usize).min(data.len());
            let end = (offset as usize + len).min(data.len());
            if end > start {
                out[..end - start].copy_from_slice(&data[start..end]);
            }
        }
        out
    }

    fn write_at(&mut self, file: &str, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        let buf = self.volatile.entry(file.to_string()).or_default();
        let end = offset as usize + data.len();
        if buf.len() < end {
            buf.resize(end, 0);
        }
        buf[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StoreError> {
        self.volatile.entry(file.to_string()).or_default().resize(len as usize, 0);
        Ok(())
    }

    fn sync(&mut self, file: &str) -> Result<(), StoreError> {
        let cur = self.volatile.entry(file.to_string()).or_default().clone();
        self.durable.insert(file.to_string(), cur);
        Ok(())
    }

    fn len(&self, file: &str) -> u64 {
        self.volatile.get(file).map_or(0, |v| v.len() as u64)
    }
}

// ---------------------------------------------------------------- dir

/// Real files under a base directory (`std::fs`), for state that must
/// survive an actual process restart.
#[derive(Debug)]
pub struct DirVfs {
    base: PathBuf,
}

impl DirVfs {
    /// A vfs rooted at `base` (created if missing).
    pub fn new(base: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let base = base.into();
        std::fs::create_dir_all(&base).map_err(|e| StoreError::Io(e.to_string()))?;
        Ok(DirVfs { base })
    }

    /// A [`SharedVfs`] over real files at `base`.
    pub fn shared(base: impl Into<PathBuf>) -> Result<SharedVfs, StoreError> {
        Ok(Arc::new(Mutex::new(DirVfs::new(base)?)))
    }

    fn path(&self, file: &str) -> PathBuf {
        self.base.join(file)
    }

    fn open_rw(&self, file: &str) -> Result<std::fs::File, StoreError> {
        std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.path(file))
            .map_err(|e| StoreError::Io(format!("{file}: {e}")))
    }
}

impl Vfs for DirVfs {
    fn read_at(&self, file: &str, offset: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        if let Ok(mut f) = std::fs::File::open(self.path(file)) {
            if f.seek(SeekFrom::Start(offset)).is_ok() {
                let mut filled = 0;
                while filled < len {
                    match f.read(&mut out[filled..]) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => filled += n,
                    }
                }
            }
        }
        out
    }

    fn write_at(&mut self, file: &str, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        let mut f = self.open_rw(file)?;
        f.seek(SeekFrom::Start(offset)).map_err(|e| StoreError::Io(e.to_string()))?;
        f.write_all(data).map_err(|e| StoreError::Io(e.to_string()))
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StoreError> {
        let f = self.open_rw(file)?;
        f.set_len(len).map_err(|e| StoreError::Io(e.to_string()))
    }

    fn sync(&mut self, file: &str) -> Result<(), StoreError> {
        let f = self.open_rw(file)?;
        f.sync_all().map_err(|e| StoreError::Io(e.to_string()))
    }

    fn len(&self, file: &str) -> u64 {
        std::fs::metadata(self.path(file)).map_or(0, |m| m.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_reads_zero_fill_past_eof() {
        let mut v = MemVfs::new();
        v.write_at("f", 0, b"abc").unwrap();
        assert_eq!(v.read_at("f", 1, 4), vec![b'b', b'c', 0, 0]);
        assert_eq!(v.read_at("missing", 0, 2), vec![0, 0]);
    }

    #[test]
    fn crash_loses_unsynced_writes() {
        let mut v = MemVfs::new();
        v.write_at("f", 0, b"durable").unwrap();
        v.sync("f").unwrap();
        v.write_at("f", 7, b"-volatile").unwrap();
        assert_eq!(v.len("f"), 16);
        v.crash();
        assert_eq!(v.bytes("f"), b"durable");
    }

    #[test]
    fn crash_torn_keeps_a_seeded_prefix_of_the_tail() {
        let build = || {
            let mut v = MemVfs::new();
            v.write_at("f", 0, b"base").unwrap();
            v.sync("f").unwrap();
            v.write_at("f", 4, b"0123456789").unwrap();
            v
        };
        let mut a = build();
        let mut b = build();
        a.crash_torn(42);
        b.crash_torn(42);
        assert_eq!(a.bytes("f"), b.bytes("f"), "same seed, same tear");
        let kept = a.bytes("f");
        assert!(kept.starts_with(b"base"));
        assert!(kept.len() <= 14);
        // Some seed must produce a strict tear (not all-or-nothing).
        let torn = (0..64u64).any(|s| {
            let mut v = build();
            v.crash_torn(s);
            let n = v.bytes("f").len();
            n > 4 && n < 14
        });
        assert!(torn, "no seed tore the tail strictly");
    }

    #[test]
    fn dir_vfs_round_trips_real_files() {
        let base = std::env::temp_dir().join(format!("llmdm_store_vfs_{}", std::process::id()));
        let mut v = DirVfs::new(&base).unwrap();
        v.write_at("t.bin", 3, b"xyz").unwrap();
        v.sync("t.bin").unwrap();
        assert_eq!(v.len("t.bin"), 6);
        assert_eq!(v.read_at("t.bin", 0, 6), vec![0, 0, 0, b'x', b'y', b'z']);
        v.truncate("t.bin", 4).unwrap();
        assert_eq!(v.len("t.bin"), 4);
        let _ = std::fs::remove_dir_all(&base);
    }
}
