//! The pager: a fixed-size page file behind an LRU buffer pool.
//!
//! On disk every page is [`PAGE_SIZE`] bytes: [`PAGE_DATA`] bytes of
//! payload followed by an 8-byte FNV-1a trailer checksum computed at
//! flush time. The checksum is verified whenever a page is faulted in
//! from disk (a torn page from a mid-flush crash fails loudly instead
//! of silently corrupting a scan); an all-zero page is valid — it is a
//! page that was allocated but never flushed.
//!
//! Buffer-pool policy:
//!
//! * **LRU eviction over clean, unpinned frames only.** Dirty pages are
//!   *never* evicted or written back outside an explicit flush — the
//!   strict no-steal rule that guarantees uncommitted data cannot reach
//!   the database file before its WAL record is durable. When every
//!   frame is dirty or pinned the pool grows past its capacity rather
//!   than lose data; `tests/props.rs` hammers this with random
//!   workloads under tiny pool capacities.
//! * **Pin counts** protect pages a caller is actively iterating
//!   (record scans pin the chain page they are parsing).
//! * [`PoolStats`] counts hits/misses/evictions/flushes — the numbers
//!   behind the cold-vs-warm scan bench.

use std::collections::HashMap;

use crate::vfs::{vfs_lock, SharedVfs};
use crate::{fnv1a, StoreError};

/// Bytes per on-disk page (payload + trailer checksum).
pub const PAGE_SIZE: usize = 4096;
/// Usable payload bytes per page (the trailer takes 8).
pub const PAGE_DATA: usize = PAGE_SIZE - 8;

/// Buffer-pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that faulted in from the vfs.
    pub misses: u64,
    /// Clean frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written (flushes).
    pub flushes: u64,
}

#[derive(Debug)]
struct Frame {
    data: Vec<u8>,
    dirty: bool,
    pins: u32,
    last_use: u64,
}

/// The pager (see module docs).
#[derive(Debug)]
pub struct Pager {
    vfs: SharedVfs,
    file: String,
    frames: HashMap<u32, Frame>,
    capacity: usize,
    tick: u64,
    stats: PoolStats,
}

impl Pager {
    /// A pager over `file` with a pool of `capacity` frames (min 2:
    /// the header page plus one data page).
    pub fn new(vfs: SharedVfs, file: &str, capacity: usize) -> Self {
        Pager {
            vfs,
            file: file.to_string(),
            frames: HashMap::new(),
            capacity: capacity.max(2),
            tick: 0,
            stats: PoolStats::default(),
        }
    }

    /// Read access to a page's payload ([`PAGE_DATA`] bytes), faulting
    /// it in from the vfs if absent.
    pub fn page(&mut self, id: u32) -> Result<&[u8], StoreError> {
        self.fault_in(id)?;
        Ok(&self.frames[&id].data)
    }

    /// Write access to a page's payload; marks the frame dirty.
    pub fn page_mut(&mut self, id: u32) -> Result<&mut [u8], StoreError> {
        self.fault_in(id)?;
        let f = self.frames.get_mut(&id).expect("just faulted in");
        f.dirty = true;
        Ok(&mut f.data)
    }

    /// Pin a page (faulting it in), protecting it from eviction until
    /// the matching [`Pager::unpin`].
    pub fn pin(&mut self, id: u32) -> Result<(), StoreError> {
        self.fault_in(id)?;
        self.frames.get_mut(&id).expect("just faulted in").pins += 1;
        Ok(())
    }

    /// Release one pin.
    pub fn unpin(&mut self, id: u32) {
        if let Some(f) = self.frames.get_mut(&id) {
            f.pins = f.pins.saturating_sub(1);
        }
    }

    /// Whether the page's frame is currently dirty.
    pub fn is_dirty(&self, id: u32) -> bool {
        self.frames.get(&id).is_some_and(|f| f.dirty)
    }

    /// Ids of all dirty frames, ascending (the deterministic flush and
    /// WAL-image order).
    pub fn dirty_pages(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .frames
            .iter()
            .filter_map(|(&id, f)| f.dirty.then_some(id))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Write one dirty page (payload + fresh trailer checksum) to the
    /// vfs and mark it clean. No-op for clean or absent frames. The
    /// write is volatile until the owner syncs the vfs.
    pub fn flush_page(&mut self, id: u32) -> Result<(), StoreError> {
        let Some(f) = self.frames.get_mut(&id) else { return Ok(()) };
        if !f.dirty {
            return Ok(());
        }
        let mut buf = Vec::with_capacity(PAGE_SIZE);
        buf.extend_from_slice(&f.data);
        buf.extend_from_slice(&fnv1a(&f.data).to_le_bytes());
        vfs_lock(&self.vfs).write_at(&self.file, id as u64 * PAGE_SIZE as u64, &buf)?;
        f.dirty = false;
        self.stats.flushes += 1;
        Ok(())
    }

    /// Overwrite a frame's payload in place (restoring a transaction's
    /// before-image on rollback) and mark it clean: the disk copy was
    /// never touched while the transaction ran, so pool and disk agree
    /// again.
    pub fn restore_page(&mut self, id: u32, data: &[u8]) {
        self.tick += 1;
        let frame = Frame {
            data: {
                let mut d = data.to_vec();
                d.resize(PAGE_DATA, 0);
                d
            },
            dirty: false,
            pins: self.frames.get(&id).map_or(0, |f| f.pins),
            last_use: self.tick,
        };
        self.frames.insert(id, frame);
    }

    /// Drop every cached frame (must all be clean — callers only reset
    /// after a commit or rollback). Used to measure cold scans and to
    /// re-point the pool after out-of-band file rewrites (recovery).
    pub fn clear_pool(&mut self) {
        debug_assert!(
            self.frames.values().all(|f| !f.dirty),
            "clear_pool would lose dirty pages"
        );
        self.frames.clear();
    }

    /// Pool counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of resident frames.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn fault_in(&mut self, id: u32) -> Result<(), StoreError> {
        self.tick += 1;
        if let Some(f) = self.frames.get_mut(&id) {
            f.last_use = self.tick;
            self.stats.hits += 1;
            llmdm_obs::counter_add("store.pool.hits", 1.0);
            return Ok(());
        }
        self.stats.misses += 1;
        llmdm_obs::counter_add("store.pool.misses", 1.0);
        self.evict_for_room();
        let raw = vfs_lock(&self.vfs).read_at(&self.file, id as u64 * PAGE_SIZE as u64, PAGE_SIZE);
        let (data, trailer) = raw.split_at(PAGE_DATA);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        let zero_page = stored == 0 && data.iter().all(|&b| b == 0);
        if !zero_page && stored != fnv1a(data) {
            return Err(StoreError::Corrupt(format!(
                "page {id} checksum mismatch (torn write?)"
            )));
        }
        self.frames.insert(
            id,
            Frame { data: data.to_vec(), dirty: false, pins: 0, last_use: self.tick },
        );
        Ok(())
    }

    /// Evict the least-recently-used clean, unpinned frame if the pool
    /// is full. If every frame is dirty or pinned, grow instead — a
    /// dirty page is never written back or dropped here (no-steal).
    fn evict_for_room(&mut self) {
        if self.frames.len() < self.capacity {
            return;
        }
        let victim = self
            .frames
            .iter()
            .filter(|(_, f)| !f.dirty && f.pins == 0)
            .min_by_key(|(_, f)| f.last_use)
            .map(|(&id, _)| id);
        if let Some(id) = victim {
            self.frames.remove(&id);
            self.stats.evictions += 1;
            llmdm_obs::counter_add("store.pool.evictions", 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use crate::Vfs;
    use std::sync::{Arc, Mutex};

    fn mem_pager(capacity: usize) -> (Arc<Mutex<MemVfs>>, Pager) {
        let vfs = MemVfs::shared();
        let pager = Pager::new(vfs.clone(), "p.db", capacity);
        (vfs, pager)
    }

    #[test]
    fn fresh_pages_read_as_zeros() {
        let (_vfs, mut p) = mem_pager(4);
        assert!(p.page(3).unwrap().iter().all(|&b| b == 0));
        assert_eq!(p.stats().misses, 1);
        assert_eq!(p.page(3).unwrap().len(), PAGE_DATA);
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn flush_then_cold_read_round_trips_with_checksum() {
        let (vfs, mut p) = mem_pager(4);
        p.page_mut(1).unwrap()[..4].copy_from_slice(b"abcd");
        p.flush_page(1).unwrap();
        let shared: SharedVfs = vfs.clone();
        vfs_lock(&shared).sync("p.db").unwrap();
        let mut cold = Pager::new(vfs.clone(), "p.db", 4);
        assert_eq!(&cold.page(1).unwrap()[..4], b"abcd");
        // Corrupt one byte on disk: the cold read must fail validation.
        {
            let mut v = llmdm_rt::lock_recover(&vfs);
            let off = PAGE_SIZE as u64 + 2;
            let orig = v.read_at("p.db", off, 1);
            v.write_at("p.db", off, &[orig[0] ^ 0xFF]).unwrap();
        }
        let mut torn = Pager::new(vfs, "p.db", 4);
        assert!(matches!(torn.page(1), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn lru_evicts_only_clean_unpinned() {
        let (_vfs, mut p) = mem_pager(2);
        // Page 1 dirty, page 2 pinned, page 3 clean.
        p.page_mut(1).unwrap()[0] = 1;
        p.pin(2).unwrap();
        let _ = p.page(3).unwrap();
        assert!(p.resident() >= 3, "dirty+pinned frames can exceed capacity");
        // Faulting a fourth page evicts page 3 (the only eligible victim).
        let _ = p.page(4).unwrap();
        assert!(p.is_dirty(1));
        assert_eq!(p.stats().evictions, 1);
        // The dirty write is still there.
        assert_eq!(p.page(1).unwrap()[0], 1);
        p.unpin(2);
    }

    #[test]
    fn restore_page_clears_dirt() {
        let (_vfs, mut p) = mem_pager(4);
        let before = p.page(1).unwrap().to_vec();
        p.page_mut(1).unwrap()[0] = 9;
        assert!(p.is_dirty(1));
        p.restore_page(1, &before);
        assert!(!p.is_dirty(1));
        assert_eq!(p.page(1).unwrap()[0], 0);
    }
}
