//! # llmdm-store — the durable storage tier
//!
//! Every byte of state in the workspace used to live in RAM: sqlengine
//! tables, the semantic cache, usage meters. This crate is the
//! persistence substrate the ROADMAP's "millions of users" north star
//! needs — a from-scratch, zero-dependency storage engine with the
//! classical durability architecture:
//!
//! * **[`vfs`]** — the file abstraction. [`vfs::DirVfs`] is real files;
//!   [`vfs::MemVfs`] models a disk with *durable* (synced) and
//!   *volatile* (written but not yet fsynced) layers, so a simulated
//!   crash can deterministically lose exactly the unsynced tail — the
//!   machinery the crash matrix is built on.
//! * **[`pager`]** — a fixed-size page file behind an LRU buffer pool
//!   with pin counts and dirty tracking. Eviction never writes a dirty
//!   page (strict no-steal), so uncommitted data can never reach the
//!   database file ahead of its WAL record.
//! * **[`wal`]** — a write-ahead log of checksummed frames
//!   (begin / page-image / commit / rollback). Recovery replays the
//!   page images of committed transactions and truncates any torn tail.
//! * **[`store`]** — the [`Store`]: spaces (named record heaps) on top
//!   of the pager, with a transactional API whose commit protocol is
//!   `WAL append → WAL fsync → page flush → db fsync`, each boundary a
//!   seeded kill point.
//! * **[`faults`]** — [`StorageFaults`], the adapter that drives those
//!   kill points from `llmdm-resil`'s [`llmdm_resil::FaultPlan`] on a
//!   shared [`llmdm_resil::SimClock`]: every storage barrier advances
//!   the clock by one tick, so "kill between WAL sync and page flush of
//!   the third commit" is an outage window on a deterministic timeline.
//!
//! ## Durability contract
//!
//! A transaction is *committed* the instant its `Commit` frame is
//! durable in the WAL (the post-WAL-sync point). Crashing at any kill
//! point recovers the database to **exactly the committed prefix**:
//!
//! * kill after WAL append, before WAL sync → the transaction is lost
//!   (its frames were volatile), and the database file was never
//!   touched;
//! * kill after WAL sync → the transaction survives; recovery redoes
//!   its page images even though the database file was never (or only
//!   partially) updated;
//! * kill mid-page-flush → ditto: the half-flushed pages are repaired
//!   by redo, and page trailer checksums catch any torn page a real
//!   disk would have left behind.
//!
//! Recovery is idempotent — replaying the same WAL twice produces the
//! same database bytes — and byte-reproducible: the same seed and
//! workload produce identical file images. Both properties are pinned
//! by `tests/crash_matrix.rs` and the proptests in `tests/props.rs`.
//!
//! Layering: this crate depends only on `llmdm-rt`, `llmdm-obs`, and
//! `llmdm-resil` (enforced by
//! `tests/hermetic.rs::store_crate_depends_only_on_rt_obs_resil`), so
//! sqlengine and semcache can both sit on it without cycles.

#![warn(missing_docs)]

pub mod faults;
pub mod pager;
pub mod store;
pub mod vfs;
pub mod wal;

pub use faults::{BarrierOp, KillPoint, StorageFaults};
pub use pager::{Pager, PoolStats, PAGE_DATA, PAGE_SIZE};
pub use store::{RecoveryReport, Store, StoreConfig, MAX_RECORD};
pub use vfs::{DirVfs, MemVfs, SharedVfs, Vfs};
pub use wal::{Wal, WalRecord, WalScan};

use std::fmt;

/// Errors from the storage tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Underlying file I/O failed (only `DirVfs` can produce these).
    Io(String),
    /// On-disk bytes failed validation (bad magic, checksum mismatch,
    /// impossible offsets).
    Corrupt(String),
    /// A seeded kill point fired mid-operation: the simulated process
    /// is dead. The owner must drop this store, crash the vfs, and
    /// re-open (which runs recovery).
    Killed(KillPoint),
    /// The store already hit a kill point; every subsequent operation
    /// refuses to run (a dead process does not execute code).
    Wedged,
    /// A transaction is already open.
    TxnOpen,
    /// No transaction is open, and the operation requires one.
    NoTxn,
    /// Named space does not exist.
    UnknownSpace(String),
    /// Named space already exists.
    SpaceExists(String),
    /// A record exceeds the per-page payload capacity.
    RecordTooLarge(usize),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "storage io error: {m}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            StoreError::Killed(p) => write!(f, "killed at {}", p.label()),
            StoreError::Wedged => write!(f, "store is wedged after a kill; re-open to recover"),
            StoreError::TxnOpen => write!(f, "transaction already open"),
            StoreError::NoTxn => write!(f, "no open transaction"),
            StoreError::UnknownSpace(s) => write!(f, "unknown space: {s}"),
            StoreError::SpaceExists(s) => write!(f, "space already exists: {s}"),
            StoreError::RecordTooLarge(n) => write!(f, "record of {n} bytes exceeds page capacity"),
        }
    }
}

impl std::error::Error for StoreError {}

/// FNV-1a 64-bit over raw bytes — the frame and page checksum. (The
/// same function `llmdm-resil` uses for tier-name hashing; duplicated
/// here because resil's copy is private and three lines of code beat a
/// public-API coupling.)
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn error_display_mentions_the_kill_point() {
        let e = StoreError::Killed(KillPoint::PostWalSync);
        assert!(e.to_string().contains("wal_sync"), "{e}");
    }
}
