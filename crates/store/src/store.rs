//! The [`Store`]: named record heaps ("spaces") on a paged file, with a
//! WAL-backed transactional API and crash recovery on open.
//!
//! ## File layout
//!
//! Page 0 is the header:
//!
//! ```text
//! [magic "LLMDMST1"][version u32][page_size u32]
//! [page_count u32][freelist_head u32][catalog_head u32]
//! ```
//!
//! Every other page is either on the freelist (its first 4 bytes link
//! to the next free page) or a **record page**:
//!
//! ```text
//! [next u32][nrec u16][used u16]  then nrec × [len u16][bytes]
//! ```
//!
//! A *space* is a chain of record pages; the catalog is itself such a
//! chain whose records are `[name_len u16][name][head u32]` entries,
//! rewritten wholesale on create/drop (space heads are allocated at
//! create time, so appends never touch the catalog).
//!
//! ## Commit protocol
//!
//! ```text
//! wal.append(images + Commit)
//!       │ ◄── KillPoint::PostWalAppend
//! wal.sync()                      ← durability point
//!       │ ◄── KillPoint::PostWalSync
//! for page in dirty (ascending):
//!       │ ◄── KillPoint::MidPageFlush (before each page)
//!   pager.flush_page(page)
//! db.sync()
//! maybe checkpoint (truncate WAL)
//! ```
//!
//! A fired kill point wedges the store ([`StoreError::Wedged`] on every
//! later call): a dead process does not execute code. The owner drops
//! the store, crashes the vfs, and re-opens — [`Store::open`] scans the
//! WAL, truncates any torn tail, and redoes the page images of every
//! committed transaction straight into the database file before the
//! pager comes up. Recovery never writes uncommitted data and is
//! idempotent (the WAL is only truncated at its torn point, so opening
//! twice redoes twice onto identical bytes).

use std::collections::{BTreeMap, HashMap};

use crate::faults::{KillPoint, StorageFaults};
use crate::pager::{Pager, PoolStats, PAGE_DATA, PAGE_SIZE};
use crate::vfs::{vfs_lock, SharedVfs};
use crate::wal::{Wal, WalRecord};
use crate::{fnv1a, StoreError};

const MAGIC: &[u8; 8] = b"LLMDMST1";
const VERSION: u32 = 1;
/// Record-page header bytes ([next u32][nrec u16][used u16]).
const PAGE_HDR: usize = 8;
/// Largest single record a space can hold (records never span pages).
pub const MAX_RECORD: usize = PAGE_DATA - PAGE_HDR - 2;

// ------------------------------------------------ record-page helpers

fn rp_init(buf: &mut [u8]) {
    buf[..PAGE_HDR].fill(0);
    buf[6..8].copy_from_slice(&(PAGE_HDR as u16).to_le_bytes());
}

fn rp_next(buf: &[u8]) -> u32 {
    u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"))
}

fn rp_set_next(buf: &mut [u8], next: u32) {
    buf[..4].copy_from_slice(&next.to_le_bytes());
}

fn rp_used(buf: &[u8]) -> usize {
    u16::from_le_bytes(buf[6..8].try_into().expect("2 bytes")) as usize
}

fn rp_free(buf: &[u8]) -> usize {
    PAGE_DATA.saturating_sub(rp_used(buf).max(PAGE_HDR))
}

fn rp_push(buf: &mut [u8], rec: &[u8]) {
    let nrec = u16::from_le_bytes(buf[4..6].try_into().expect("2 bytes"));
    let used = rp_used(buf).max(PAGE_HDR);
    buf[used..used + 2].copy_from_slice(&(rec.len() as u16).to_le_bytes());
    buf[used + 2..used + 2 + rec.len()].copy_from_slice(rec);
    buf[4..6].copy_from_slice(&(nrec + 1).to_le_bytes());
    buf[6..8].copy_from_slice(&((used + 2 + rec.len()) as u16).to_le_bytes());
}

fn rp_records(buf: &[u8]) -> Result<Vec<Vec<u8>>, StoreError> {
    let nrec = u16::from_le_bytes(buf[4..6].try_into().expect("2 bytes")) as usize;
    let mut out = Vec::with_capacity(nrec);
    let mut off = PAGE_HDR;
    for _ in 0..nrec {
        if off + 2 > PAGE_DATA {
            return Err(StoreError::Corrupt("record offset past page end".into()));
        }
        let len = u16::from_le_bytes(buf[off..off + 2].try_into().expect("2 bytes")) as usize;
        if off + 2 + len > PAGE_DATA {
            return Err(StoreError::Corrupt("record length past page end".into()));
        }
        out.push(buf[off + 2..off + 2 + len].to_vec());
        off += 2 + len;
    }
    Ok(out)
}

// ----------------------------------------------------------- metadata

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    page_count: u32,
    freelist_head: u32,
    catalog_head: u32,
}

impl Header {
    fn fresh() -> Self {
        // Page 0 is the header itself.
        Header { page_count: 1, freelist_head: 0, catalog_head: 0 }
    }

    fn encode_into(self, buf: &mut [u8]) {
        buf[..8].copy_from_slice(MAGIC);
        buf[8..12].copy_from_slice(&VERSION.to_le_bytes());
        buf[12..16].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        buf[16..20].copy_from_slice(&self.page_count.to_le_bytes());
        buf[20..24].copy_from_slice(&self.freelist_head.to_le_bytes());
        buf[24..28].copy_from_slice(&self.catalog_head.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Result<Self, StoreError> {
        if &buf[..8] != MAGIC {
            return Err(StoreError::Corrupt("bad magic in header page".into()));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        let page_size = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes"));
        if version != VERSION || page_size != PAGE_SIZE as u32 {
            return Err(StoreError::Corrupt(format!(
                "unsupported version {version} / page size {page_size}"
            )));
        }
        Ok(Header {
            page_count: u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")),
            freelist_head: u32::from_le_bytes(buf[20..24].try_into().expect("4 bytes")),
            catalog_head: u32::from_le_bytes(buf[24..28].try_into().expect("4 bytes")),
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SpaceInfo {
    head: u32,
    /// Last page of the chain (in-memory only; re-derived at open by
    /// walking the chain).
    tail: u32,
}

#[derive(Debug)]
struct TxnState {
    id: u64,
    /// Page payloads as they were before this transaction first touched
    /// them — restored on rollback.
    before: HashMap<u32, Vec<u8>>,
    header: Header,
    catalog: BTreeMap<String, SpaceInfo>,
}

/// What [`Store::open`] found and did while recovering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Valid WAL frames scanned.
    pub frames: usize,
    /// Distinct committed transactions in the WAL.
    pub committed_txns: usize,
    /// Page images redone into the database file.
    pub pages_redone: usize,
    /// Whether a torn/corrupt WAL tail was truncated.
    pub torn_tail_truncated: bool,
    /// Trusted WAL length in bytes after recovery.
    pub wal_bytes: u64,
}

/// Knobs for [`Store::open`].
#[derive(Debug)]
pub struct StoreConfig {
    /// Database file name inside the vfs.
    pub db_file: String,
    /// WAL file name inside the vfs.
    pub wal_file: String,
    /// Buffer-pool capacity in frames.
    pub pool_pages: usize,
    /// Checkpoint (truncate the WAL) after a commit leaves it at least
    /// this long. `None` disables checkpointing — recovery benches use
    /// that to grow arbitrarily long WALs.
    pub checkpoint_bytes: Option<u64>,
    /// Kill-point driver ([`StorageFaults::none`] in production).
    pub faults: StorageFaults,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            db_file: "data.db".into(),
            wal_file: "data.wal".into(),
            pool_pages: 64,
            checkpoint_bytes: Some(1 << 20),
            faults: StorageFaults::none(),
        }
    }
}

impl StoreConfig {
    /// Default config with the given kill-point driver.
    pub fn with_faults(faults: StorageFaults) -> Self {
        StoreConfig { faults, ..StoreConfig::default() }
    }
}

/// The storage engine (see module docs).
#[derive(Debug)]
pub struct Store {
    vfs: SharedVfs,
    db_file: String,
    pager: Pager,
    wal: Wal,
    faults: StorageFaults,
    checkpoint_bytes: Option<u64>,
    header: Header,
    header_dirty: bool,
    catalog: BTreeMap<String, SpaceInfo>,
    txn: Option<TxnState>,
    next_txn: u64,
    wedged: bool,
    recovery: RecoveryReport,
}

impl Store {
    /// Open (or create) a store on `vfs`, running crash recovery first:
    /// scan the WAL, truncate any torn tail, redo committed page images
    /// into the database file.
    pub fn open(vfs: SharedVfs, cfg: StoreConfig) -> Result<Store, StoreError> {
        let StoreConfig { db_file, wal_file, pool_pages, checkpoint_bytes, faults } = cfg;

        let wal_bytes = {
            let v = vfs_lock(&vfs);
            let n = v.len(&wal_file) as usize;
            v.read_at(&wal_file, 0, n)
        };
        let scan = Wal::scan(&wal_bytes);
        let mut recovery = RecoveryReport {
            frames: scan.records.len(),
            committed_txns: scan.committed.len(),
            pages_redone: 0,
            torn_tail_truncated: scan.torn,
            wal_bytes: scan.valid_len,
        };

        {
            let mut v = vfs_lock(&vfs);
            for rec in &scan.records {
                if let WalRecord::PageImage { txn, page, data } = rec {
                    if scan.committed.contains(txn) {
                        let mut buf = data.clone();
                        buf.resize(PAGE_DATA, 0);
                        let sum = fnv1a(&buf);
                        buf.extend_from_slice(&sum.to_le_bytes());
                        v.write_at(&db_file, *page as u64 * PAGE_SIZE as u64, &buf)?;
                        recovery.pages_redone += 1;
                    }
                }
            }
            if recovery.pages_redone > 0 {
                v.sync(&db_file)?;
                llmdm_obs::counter_add("store.recovery.pages_redone", recovery.pages_redone as f64);
            }
            if scan.torn {
                v.truncate(&wal_file, scan.valid_len)?;
                v.sync(&wal_file)?;
                llmdm_obs::counter_add("store.recovery.torn_tails", 1.0);
            }
        }

        let wal = Wal::open(vfs.clone(), &wal_file, scan.valid_len);
        let next_txn = scan.records.iter().map(WalRecord::txn).max().unwrap_or(0) + 1;
        let mut pager = Pager::new(vfs.clone(), &db_file, pool_pages);
        let db_len = vfs_lock(&vfs).len(&db_file);
        let header =
            if db_len == 0 { Header::fresh() } else { Header::decode(pager.page(0)?)? };

        let mut store = Store {
            vfs,
            db_file,
            pager,
            wal,
            faults,
            checkpoint_bytes,
            header,
            header_dirty: false,
            catalog: BTreeMap::new(),
            txn: None,
            next_txn,
            wedged: false,
            recovery,
        };
        store.load_catalog()?;
        Ok(store)
    }

    /// What recovery found and did during [`Store::open`].
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The kill-point driver this store runs under (a recording
    /// driver's barrier log is read through here).
    pub fn faults(&self) -> &StorageFaults {
        &self.faults
    }

    /// Buffer-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pager.stats()
    }

    /// Drop every cached page (legal only outside a transaction) — lets
    /// benches measure a cold scan against the same open store.
    pub fn clear_pool(&mut self) -> Result<(), StoreError> {
        if self.txn.is_some() {
            return Err(StoreError::TxnOpen);
        }
        self.pager.clear_pool();
        Ok(())
    }

    /// Current trusted WAL length in bytes.
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Whether a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Space names, sorted.
    pub fn spaces(&self) -> Vec<String> {
        self.catalog.keys().cloned().collect()
    }

    /// Whether `name` exists.
    pub fn has_space(&self, name: &str) -> bool {
        self.catalog.contains_key(name)
    }

    // ------------------------------------------------------ txn api

    /// Start a transaction (writes the `Begin` WAL frame eagerly).
    pub fn begin(&mut self) -> Result<(), StoreError> {
        self.ensure_live()?;
        if self.txn.is_some() {
            return Err(StoreError::TxnOpen);
        }
        let id = self.next_txn;
        self.next_txn += 1;
        self.wal.append(&WalRecord::Begin { txn: id })?;
        self.txn = Some(TxnState {
            id,
            before: HashMap::new(),
            header: self.header,
            catalog: self.catalog.clone(),
        });
        Ok(())
    }

    /// Atomically commit the open transaction via the kill-checked
    /// protocol in the module docs. On [`StoreError::Killed`] the store
    /// wedges; the owner must crash the vfs and re-open.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        self.ensure_live()?;
        let txn = self.txn.as_ref().ok_or(StoreError::NoTxn)?.id;
        if self.header_dirty {
            let header = self.header;
            header.encode_into(self.write_page(0)?);
        }
        let dirty = self.pager.dirty_pages();
        for &p in &dirty {
            let data = self.pager.page(p)?.to_vec();
            self.wal.append(&WalRecord::PageImage { txn, page: p, data })?;
        }
        self.wal.append(&WalRecord::Commit { txn })?;
        self.kill_check(KillPoint::PostWalAppend)?;
        self.wal.sync()?;
        self.kill_check(KillPoint::PostWalSync)?;
        for &p in &dirty {
            self.kill_check(KillPoint::MidPageFlush)?;
            self.pager.flush_page(p)?;
        }
        vfs_lock(&self.vfs).sync(&self.db_file)?;
        self.txn = None;
        self.header_dirty = false;
        llmdm_obs::counter_add("store.commits", 1.0);
        if let Some(limit) = self.checkpoint_bytes {
            if self.wal.len() >= limit {
                self.wal.reset()?;
            }
        }
        Ok(())
    }

    /// Abort the open transaction: every touched page reverts to its
    /// before-image, metadata reverts to its begin-time snapshot, and
    /// the database file is untouched (it only ever changes at commit).
    pub fn rollback(&mut self) -> Result<(), StoreError> {
        self.ensure_live()?;
        let t = self.txn.take().ok_or(StoreError::NoTxn)?;
        for (&id, img) in &t.before {
            self.pager.restore_page(id, img);
        }
        self.header = t.header;
        self.catalog = t.catalog;
        self.header_dirty = false;
        self.wal.append(&WalRecord::Rollback { txn: t.id })?;
        llmdm_obs::counter_add("store.rollbacks", 1.0);
        Ok(())
    }

    /// Run `f` inside a transaction: commit on `Ok`, roll back on
    /// `Err` (unless the store was killed/wedged, where there is no
    /// process left to roll anything back).
    pub fn with_txn<T>(
        &mut self,
        f: impl FnOnce(&mut Store) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        self.begin()?;
        match f(self) {
            Ok(v) => {
                self.commit()?;
                Ok(v)
            }
            Err(e) => {
                if !self.wedged {
                    let _ = self.rollback();
                }
                Err(e)
            }
        }
    }

    // ---------------------------------------------------- space api

    /// Create an empty space (requires an open transaction).
    pub fn create_space(&mut self, name: &str) -> Result<(), StoreError> {
        self.ensure_txn()?;
        if self.catalog.contains_key(name) {
            return Err(StoreError::SpaceExists(name.to_string()));
        }
        let head = self.alloc_page()?;
        rp_init(self.write_page(head)?);
        self.catalog.insert(name.to_string(), SpaceInfo { head, tail: head });
        self.rewrite_catalog()
    }

    /// Drop a space, returning its pages to the freelist.
    pub fn drop_space(&mut self, name: &str) -> Result<(), StoreError> {
        self.ensure_txn()?;
        let info = *self
            .catalog
            .get(name)
            .ok_or_else(|| StoreError::UnknownSpace(name.to_string()))?;
        self.free_chain(info.head)?;
        self.catalog.remove(name);
        self.rewrite_catalog()
    }

    /// Delete every record in a space, keeping the space itself.
    pub fn truncate_space(&mut self, name: &str) -> Result<(), StoreError> {
        self.ensure_txn()?;
        let info = *self
            .catalog
            .get(name)
            .ok_or_else(|| StoreError::UnknownSpace(name.to_string()))?;
        let rest = rp_next(self.pager.page(info.head)?);
        if rest != 0 {
            self.free_chain(rest)?;
        }
        rp_init(self.write_page(info.head)?);
        self.catalog.get_mut(name).expect("just looked up").tail = info.head;
        Ok(())
    }

    /// Append one record to a space (requires an open transaction).
    pub fn append(&mut self, space: &str, rec: &[u8]) -> Result<(), StoreError> {
        self.ensure_txn()?;
        if rec.len() > MAX_RECORD {
            return Err(StoreError::RecordTooLarge(rec.len()));
        }
        let info = *self
            .catalog
            .get(space)
            .ok_or_else(|| StoreError::UnknownSpace(space.to_string()))?;
        let mut tail = info.tail;
        let free = rp_free(self.pager.page(tail)?);
        if free < 2 + rec.len() {
            let np = self.alloc_page()?;
            rp_init(self.write_page(np)?);
            rp_set_next(self.write_page(tail)?, np);
            self.catalog.get_mut(space).expect("just looked up").tail = np;
            tail = np;
        }
        rp_push(self.write_page(tail)?, rec);
        Ok(())
    }

    /// All records in a space, in append order. Works outside a
    /// transaction (and inside one, it reads your own writes).
    pub fn scan(&mut self, space: &str) -> Result<Vec<Vec<u8>>, StoreError> {
        self.ensure_live()?;
        let info = *self
            .catalog
            .get(space)
            .ok_or_else(|| StoreError::UnknownSpace(space.to_string()))?;
        self.read_chain(info.head)
    }

    // ----------------------------------------------------- internals

    fn ensure_live(&self) -> Result<(), StoreError> {
        if self.wedged {
            return Err(StoreError::Wedged);
        }
        Ok(())
    }

    fn ensure_txn(&self) -> Result<(), StoreError> {
        self.ensure_live()?;
        if self.txn.is_none() {
            return Err(StoreError::NoTxn);
        }
        Ok(())
    }

    fn kill_check(&mut self, point: KillPoint) -> Result<(), StoreError> {
        if let Err(e) = self.faults.check(point) {
            self.wedged = true;
            return Err(e);
        }
        Ok(())
    }

    /// Mutable page access that snapshots the before-image into the
    /// open transaction on first touch.
    fn write_page(&mut self, id: u32) -> Result<&mut [u8], StoreError> {
        if self.txn.is_none() {
            return Err(StoreError::NoTxn);
        }
        let need = !self.txn.as_ref().expect("checked").before.contains_key(&id);
        if need {
            let img = self.pager.page(id)?.to_vec();
            self.txn.as_mut().expect("checked").before.insert(id, img);
        }
        self.pager.page_mut(id)
    }

    fn alloc_page(&mut self) -> Result<u32, StoreError> {
        let id = if self.header.freelist_head != 0 {
            let id = self.header.freelist_head;
            let next = rp_next(self.pager.page(id)?);
            self.header.freelist_head = next;
            id
        } else {
            let id = self.header.page_count;
            self.header.page_count += 1;
            id
        };
        self.header_dirty = true;
        self.write_page(id)?.fill(0);
        Ok(id)
    }

    fn free_page(&mut self, id: u32) -> Result<(), StoreError> {
        let head = self.header.freelist_head;
        let buf = self.write_page(id)?;
        buf.fill(0);
        buf[..4].copy_from_slice(&head.to_le_bytes());
        self.header.freelist_head = id;
        self.header_dirty = true;
        Ok(())
    }

    fn free_chain(&mut self, head: u32) -> Result<(), StoreError> {
        let mut ids = Vec::new();
        let mut p = head;
        while p != 0 {
            ids.push(p);
            p = rp_next(self.pager.page(p)?);
        }
        for id in ids {
            self.free_page(id)?;
        }
        Ok(())
    }

    /// Rebuild the catalog chain from the in-memory map (sorted by
    /// name, so catalog bytes are deterministic).
    fn rewrite_catalog(&mut self) -> Result<(), StoreError> {
        let old = self.header.catalog_head;
        if old != 0 {
            self.free_chain(old)?;
        }
        let entries: Vec<Vec<u8>> = self
            .catalog
            .iter()
            .map(|(name, info)| {
                let mut e = Vec::with_capacity(2 + name.len() + 4);
                e.extend_from_slice(&(name.len() as u16).to_le_bytes());
                e.extend_from_slice(name.as_bytes());
                e.extend_from_slice(&info.head.to_le_bytes());
                e
            })
            .collect();
        self.header.catalog_head = self.write_records_chain(&entries)?;
        self.header_dirty = true;
        Ok(())
    }

    fn write_records_chain(&mut self, recs: &[Vec<u8>]) -> Result<u32, StoreError> {
        if recs.is_empty() {
            return Ok(0);
        }
        let head = self.alloc_page()?;
        rp_init(self.write_page(head)?);
        let mut tail = head;
        for r in recs {
            if r.len() > MAX_RECORD {
                return Err(StoreError::RecordTooLarge(r.len()));
            }
            let free = rp_free(self.pager.page(tail)?);
            if free < 2 + r.len() {
                let np = self.alloc_page()?;
                rp_init(self.write_page(np)?);
                rp_set_next(self.write_page(tail)?, np);
                tail = np;
            }
            rp_push(self.write_page(tail)?, r);
        }
        Ok(head)
    }

    fn read_chain(&mut self, head: u32) -> Result<Vec<Vec<u8>>, StoreError> {
        let mut out = Vec::new();
        let mut p = head;
        while p != 0 {
            self.pager.pin(p)?;
            let parsed = {
                let buf = self.pager.page(p)?;
                rp_records(buf).map(|recs| (rp_next(buf), recs))
            };
            self.pager.unpin(p);
            let (next, mut recs) = parsed?;
            out.append(&mut recs);
            p = next;
        }
        Ok(out)
    }

    fn load_catalog(&mut self) -> Result<(), StoreError> {
        if self.header.catalog_head == 0 {
            return Ok(());
        }
        let entries = self.read_chain(self.header.catalog_head)?;
        for e in entries {
            if e.len() < 6 {
                return Err(StoreError::Corrupt("short catalog entry".into()));
            }
            let name_len = u16::from_le_bytes(e[..2].try_into().expect("2 bytes")) as usize;
            if e.len() != 2 + name_len + 4 {
                return Err(StoreError::Corrupt("catalog entry length mismatch".into()));
            }
            let name = String::from_utf8(e[2..2 + name_len].to_vec())
                .map_err(|_| StoreError::Corrupt("catalog name not utf-8".into()))?;
            let head = u32::from_le_bytes(e[2 + name_len..].try_into().expect("4 bytes"));
            let tail = self.chain_tail(head)?;
            self.catalog.insert(name, SpaceInfo { head, tail });
        }
        Ok(())
    }

    fn chain_tail(&mut self, head: u32) -> Result<u32, StoreError> {
        let mut p = head;
        loop {
            let next = rp_next(self.pager.page(p)?);
            if next == 0 {
                return Ok(p);
            }
            p = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use std::sync::{Arc, Mutex};

    fn shared(vfs: &Arc<Mutex<MemVfs>>) -> SharedVfs {
        vfs.clone()
    }

    fn open(vfs: &Arc<Mutex<MemVfs>>) -> Store {
        Store::open(shared(vfs), StoreConfig::default()).unwrap()
    }

    #[test]
    fn create_append_scan_round_trips_across_reopen() {
        let vfs = MemVfs::shared();
        {
            let mut s = open(&vfs);
            s.with_txn(|s| {
                s.create_space("notes")?;
                s.append("notes", b"alpha")?;
                s.append("notes", b"beta")
            })
            .unwrap();
            assert_eq!(s.scan("notes").unwrap(), vec![b"alpha".to_vec(), b"beta".to_vec()]);
        }
        let mut s2 = open(&vfs);
        assert_eq!(s2.spaces(), vec!["notes".to_string()]);
        assert_eq!(s2.scan("notes").unwrap(), vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(s2.recovery().committed_txns, 1);
    }

    #[test]
    fn records_spill_across_pages() {
        let vfs = MemVfs::shared();
        let mut s = open(&vfs);
        let recs: Vec<Vec<u8>> = (0..300u32).map(|i| vec![i as u8; 100]).collect();
        s.with_txn(|s| {
            s.create_space("big")?;
            for r in &recs {
                s.append("big", r)?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(s.scan("big").unwrap(), recs);
        // ~300 × 102 bytes ≈ 8 pages.
        drop(s);
        let mut s2 = open(&vfs);
        assert_eq!(s2.scan("big").unwrap(), recs);
    }

    #[test]
    fn rollback_restores_pages_and_metadata() {
        let vfs = MemVfs::shared();
        let mut s = open(&vfs);
        s.with_txn(|s| {
            s.create_space("a")?;
            s.append("a", b"keep")
        })
        .unwrap();
        let before = llmdm_rt::lock_recover(&vfs).bytes("data.db");

        s.begin().unwrap();
        s.append("a", b"discard").unwrap();
        s.create_space("b").unwrap();
        s.rollback().unwrap();

        assert_eq!(s.scan("a").unwrap(), vec![b"keep".to_vec()]);
        assert!(!s.has_space("b"));
        assert_eq!(
            llmdm_rt::lock_recover(&vfs).bytes("data.db"),
            before,
            "rollback never touches the database file"
        );
        // The store still works after a rollback.
        s.with_txn(|s| s.append("a", b"more")).unwrap();
        assert_eq!(s.scan("a").unwrap(), vec![b"keep".to_vec(), b"more".to_vec()]);
    }

    #[test]
    fn mutations_require_a_transaction() {
        let vfs = MemVfs::shared();
        let mut s = open(&vfs);
        assert_eq!(s.create_space("x"), Err(StoreError::NoTxn));
        s.begin().unwrap();
        s.create_space("x").unwrap();
        assert_eq!(s.begin(), Err(StoreError::TxnOpen));
        s.commit().unwrap();
        assert_eq!(s.append("x", b"r"), Err(StoreError::NoTxn));
    }

    #[test]
    fn drop_space_recycles_pages_through_the_freelist() {
        let vfs = MemVfs::shared();
        let mut s = open(&vfs);
        s.with_txn(|s| {
            s.create_space("tmp")?;
            for i in 0..200u32 {
                s.append("tmp", &i.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();
        let grown = s.header.page_count;
        s.with_txn(|s| s.drop_space("tmp")).unwrap();
        s.with_txn(|s| {
            s.create_space("reuse")?;
            for i in 0..200u32 {
                s.append("reuse", &i.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(s.header.page_count, grown, "dropped pages were reused, file did not grow");
        assert_eq!(s.scan("reuse").unwrap().len(), 200);
    }

    #[test]
    fn truncate_space_keeps_the_space_but_empties_it() {
        let vfs = MemVfs::shared();
        let mut s = open(&vfs);
        s.with_txn(|s| {
            s.create_space("q")?;
            for i in 0..500u32 {
                s.append("q", &[i as u8; 50])?;
            }
            Ok(())
        })
        .unwrap();
        s.with_txn(|s| s.truncate_space("q")).unwrap();
        assert_eq!(s.scan("q").unwrap(), Vec::<Vec<u8>>::new());
        s.with_txn(|s| s.append("q", b"fresh")).unwrap();
        drop(s);
        let mut s2 = open(&vfs);
        assert_eq!(s2.scan("q").unwrap(), vec![b"fresh".to_vec()]);
    }

    #[test]
    fn kill_post_wal_append_loses_the_txn() {
        let vfs = MemVfs::shared();
        let mut s = Store::open(
            shared(&vfs),
            StoreConfig::with_faults(StorageFaults::kill_at(KillPoint::PostWalAppend, 1)),
        )
        .unwrap();
        let err = s.with_txn(|s| {
            s.create_space("gone")?;
            s.append("gone", b"r")
        });
        assert_eq!(err, Err(StoreError::Killed(KillPoint::PostWalAppend)));
        assert_eq!(s.scan("gone"), Err(StoreError::Wedged), "store is wedged after a kill");
        drop(s);
        llmdm_rt::lock_recover(&vfs).crash();
        let s2 = open(&vfs);
        assert!(!s2.has_space("gone"), "unsynced txn must not survive");
        assert_eq!(s2.recovery().committed_txns, 0);
    }

    #[test]
    fn kill_post_wal_sync_preserves_the_txn_via_redo() {
        let vfs = MemVfs::shared();
        let mut s = Store::open(
            shared(&vfs),
            StoreConfig::with_faults(StorageFaults::kill_at(KillPoint::PostWalSync, 2)),
        )
        .unwrap();
        let err = s.with_txn(|s| {
            s.create_space("kept")?;
            s.append("kept", b"r")
        });
        assert_eq!(err, Err(StoreError::Killed(KillPoint::PostWalSync)));
        drop(s);
        llmdm_rt::lock_recover(&vfs).crash();
        let mut s2 = open(&vfs);
        assert!(s2.recovery().pages_redone > 0, "recovery must redo the committed images");
        assert_eq!(s2.scan("kept").unwrap(), vec![b"r".to_vec()]);
    }

    #[test]
    fn checkpoint_truncates_the_wal_once_over_threshold() {
        let vfs = MemVfs::shared();
        let mut s = Store::open(
            shared(&vfs),
            StoreConfig { checkpoint_bytes: Some(1), ..StoreConfig::default() },
        )
        .unwrap();
        s.with_txn(|s| s.create_space("c")).unwrap();
        assert_eq!(s.wal_len(), 0, "threshold 1 byte checkpoints after every commit");
        drop(s);
        let mut s2 = open(&vfs);
        assert_eq!(s2.recovery().frames, 0);
        assert!(s2.scan("c").unwrap().is_empty());
    }
}
