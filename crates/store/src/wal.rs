//! The write-ahead log: an append-only file of checksummed frames.
//!
//! Frame wire format (all integers little-endian):
//!
//! ```text
//! [kind u8][txn u64][page u32][len u32][payload len bytes][fnv1a u64]
//! ```
//!
//! The trailing checksum covers everything before it. `page` and the
//! payload are only meaningful for `PageImage` frames (a full
//! [`crate::PAGE_DATA`]-byte after-image); control frames carry
//! `page = 0, len = 0`.
//!
//! [`Wal::scan`] walks the file from the start and stops at the first
//! frame that is short, fails its checksum, or has an unknown kind —
//! exactly the state a crash mid-append leaves behind. Everything
//! before that point is trusted; everything after is a torn tail that
//! recovery truncates. A transaction counts as committed iff its
//! `Commit` frame lies in the trusted prefix.

use std::collections::BTreeSet;

use crate::vfs::{vfs_lock, SharedVfs};
use crate::{fnv1a, StoreError, PAGE_DATA};

const KIND_BEGIN: u8 = 1;
const KIND_PAGE: u8 = 2;
const KIND_COMMIT: u8 = 3;
const KIND_ROLLBACK: u8 = 4;

/// Fixed bytes around a frame's payload: kind + txn + page + len header
/// and the trailing checksum.
pub const FRAME_OVERHEAD: usize = 1 + 8 + 4 + 4 + 8;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Transaction `txn` started.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// Full after-image of `page` written by `txn`.
    PageImage {
        /// Transaction id.
        txn: u64,
        /// Page the image belongs to.
        page: u32,
        /// [`crate::PAGE_DATA`] bytes of page payload.
        data: Vec<u8>,
    },
    /// Transaction `txn` committed — the durability point.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// Transaction `txn` rolled back (informational; rollback restores
    /// in-memory state and writes nothing to the database file).
    Rollback {
        /// Transaction id.
        txn: u64,
    },
}

impl WalRecord {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::Begin { .. } => KIND_BEGIN,
            WalRecord::PageImage { .. } => KIND_PAGE,
            WalRecord::Commit { .. } => KIND_COMMIT,
            WalRecord::Rollback { .. } => KIND_ROLLBACK,
        }
    }

    /// Transaction id the record belongs to.
    pub fn txn(&self) -> u64 {
        match self {
            WalRecord::Begin { txn }
            | WalRecord::PageImage { txn, .. }
            | WalRecord::Commit { txn }
            | WalRecord::Rollback { txn } => *txn,
        }
    }

    /// Serialize to the frame wire format.
    pub fn encode(&self) -> Vec<u8> {
        let (txn, page, payload): (u64, u32, &[u8]) = match self {
            WalRecord::Begin { txn } => (*txn, 0, &[]),
            WalRecord::PageImage { txn, page, data } => (*txn, *page, data),
            WalRecord::Commit { txn } => (*txn, 0, &[]),
            WalRecord::Rollback { txn } => (*txn, 0, &[]),
        };
        let mut buf = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
        buf.push(self.kind());
        buf.extend_from_slice(&txn.to_le_bytes());
        buf.extend_from_slice(&page.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(payload);
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }
}

/// Result of scanning a WAL image: the trusted prefix.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalScan {
    /// Records in the trusted prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Transactions whose `Commit` frame is in the trusted prefix.
    pub committed: BTreeSet<u64>,
    /// Byte length of the trusted prefix (truncation point for a torn
    /// tail).
    pub valid_len: u64,
    /// Whether bytes beyond `valid_len` existed (a torn or corrupt
    /// tail).
    pub torn: bool,
}

/// Append-side handle to the log file (see module docs).
#[derive(Debug)]
pub struct Wal {
    vfs: SharedVfs,
    file: String,
    /// Bytes appended so far (volatile until [`Wal::sync`]).
    len: u64,
}

impl Wal {
    /// Open the log at `file`, trusting the first `len` bytes (the
    /// caller learns that from [`Wal::scan`] during recovery; 0 for a
    /// fresh store).
    pub fn open(vfs: SharedVfs, file: &str, len: u64) -> Self {
        Wal { vfs, file: file.to_string(), len }
    }

    /// Append one record. Volatile until [`Wal::sync`].
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), StoreError> {
        let frame = rec.encode();
        vfs_lock(&self.vfs).write_at(&self.file, self.len, &frame)?;
        self.len += frame.len() as u64;
        llmdm_obs::counter_add("store.wal.appends", 1.0);
        Ok(())
    }

    /// Make every appended frame durable (the commit durability point).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        vfs_lock(&self.vfs).sync(&self.file)
    }

    /// Discard the log: truncate to zero and sync (checkpoint; only
    /// legal after every committed image is flushed and the database
    /// file synced).
    pub fn reset(&mut self) -> Result<(), StoreError> {
        let mut v = vfs_lock(&self.vfs);
        v.truncate(&self.file, 0)?;
        v.sync(&self.file)?;
        self.len = 0;
        llmdm_obs::counter_add("store.wal.checkpoints", 1.0);
        Ok(())
    }

    /// Truncate a torn tail discovered by [`Wal::scan`] and sync.
    pub fn truncate_to(&mut self, len: u64) -> Result<(), StoreError> {
        let mut v = vfs_lock(&self.vfs);
        v.truncate(&self.file, len)?;
        v.sync(&self.file)?;
        self.len = len;
        Ok(())
    }

    /// Current logical length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Parse a raw WAL image into its trusted prefix. Pure function of
    /// the bytes — recovery, tests, and proptests all share it.
    pub fn scan(bytes: &[u8]) -> WalScan {
        let mut out = WalScan::default();
        let mut pos = 0usize;
        loop {
            let Some(rest) = bytes.get(pos..) else { break };
            if rest.len() < FRAME_OVERHEAD {
                out.torn = !rest.is_empty();
                break;
            }
            let kind = rest[0];
            let txn = u64::from_le_bytes(rest[1..9].try_into().expect("8 bytes"));
            let page = u32::from_le_bytes(rest[9..13].try_into().expect("4 bytes"));
            let len = u32::from_le_bytes(rest[13..17].try_into().expect("4 bytes")) as usize;
            let total = FRAME_OVERHEAD + len;
            if rest.len() < total || len > PAGE_DATA {
                out.torn = true;
                break;
            }
            let body = &rest[..total - 8];
            let stored = u64::from_le_bytes(rest[total - 8..total].try_into().expect("8 bytes"));
            if stored != fnv1a(body) {
                out.torn = true;
                break;
            }
            let rec = match kind {
                KIND_BEGIN => WalRecord::Begin { txn },
                KIND_PAGE => {
                    WalRecord::PageImage { txn, page, data: rest[17..17 + len].to_vec() }
                }
                KIND_COMMIT => {
                    out.committed.insert(txn);
                    WalRecord::Commit { txn }
                }
                KIND_ROLLBACK => WalRecord::Rollback { txn },
                _ => {
                    out.torn = true;
                    break;
                }
            };
            out.records.push(rec);
            pos += total;
            out.valid_len = pos as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn page_data(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_DATA]
    }

    fn sample_log() -> Vec<u8> {
        let mut bytes = Vec::new();
        for rec in [
            WalRecord::Begin { txn: 1 },
            WalRecord::PageImage { txn: 1, page: 2, data: page_data(0xAA) },
            WalRecord::Commit { txn: 1 },
            WalRecord::Begin { txn: 2 },
            WalRecord::PageImage { txn: 2, page: 3, data: page_data(0xBB) },
        ] {
            bytes.extend_from_slice(&rec.encode());
        }
        bytes
    }

    #[test]
    fn encode_scan_round_trip() {
        let bytes = sample_log();
        let scan = Wal::scan(&bytes);
        assert_eq!(scan.records.len(), 5);
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert!(scan.committed.contains(&1));
        assert!(!scan.committed.contains(&2), "txn 2 has no commit frame");
    }

    #[test]
    fn scan_stops_at_any_torn_cut() {
        let bytes = sample_log();
        let full = Wal::scan(&bytes);
        // Every strict prefix recovers only whole frames, never more.
        for cut in 0..bytes.len() {
            let scan = Wal::scan(&bytes[..cut]);
            assert!(scan.valid_len <= cut as u64);
            assert!(scan.records.len() <= full.records.len());
            if cut > 0 && scan.valid_len < cut as u64 {
                assert!(scan.torn, "partial frame at cut {cut} must flag torn");
            }
            // The trusted prefix itself always re-scans clean.
            let again = Wal::scan(&bytes[..scan.valid_len as usize]);
            assert_eq!(again.records, scan.records);
            assert!(!again.torn);
        }
    }

    #[test]
    fn scan_stops_at_corrupt_frame_not_just_short_one() {
        let mut bytes = sample_log();
        // Flip a byte inside the second frame's payload.
        let first_len = WalRecord::Begin { txn: 1 }.encode().len();
        bytes[first_len + 40] ^= 0xFF;
        let scan = Wal::scan(&bytes);
        assert_eq!(scan.records.len(), 1, "only the Begin before the corruption");
        assert!(scan.torn);
        assert!(scan.committed.is_empty());
    }

    #[test]
    fn append_sync_survive_crash_but_unsynced_do_not() {
        let vfs = MemVfs::shared();
        let shared: SharedVfs = vfs.clone();
        let mut wal = Wal::open(shared, "w.wal", 0);
        wal.append(&WalRecord::Begin { txn: 9 }).unwrap();
        wal.append(&WalRecord::Commit { txn: 9 }).unwrap();
        wal.sync().unwrap();
        wal.append(&WalRecord::Begin { txn: 10 }).unwrap();
        llmdm_rt::lock_recover(&vfs).crash();
        let scan = Wal::scan(&llmdm_rt::lock_recover(&vfs).bytes("w.wal"));
        assert_eq!(scan.records.len(), 2);
        assert!(scan.committed.contains(&9));
    }
}
