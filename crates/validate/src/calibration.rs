//! Bayesian confidence calibration (§III-E1 names "Bayesian modeling"
//! among the interpretable mechanisms for validating LLM outputs).
//!
//! Raw model confidence and self-consistency agreement are *signals*, not
//! probabilities. [`BayesianCalibrator`] turns them into calibrated
//! correctness probabilities: observations of (signal bucket, was the
//! output actually correct) update a Beta posterior per bucket
//! (Beta(1, 1) prior), so `P(correct | signal)` comes with honest
//! uncertainty that shrinks as evidence accumulates. Downstream gates
//! (§III-E's "score function") can then threshold a probability instead
//! of a raw score.


/// Per-bucket Beta posterior over correctness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaPosterior {
    /// Successes + 1 (prior).
    pub alpha: f64,
    /// Failures + 1 (prior).
    pub beta: f64,
}

impl Default for BetaPosterior {
    fn default() -> Self {
        BetaPosterior { alpha: 1.0, beta: 1.0 }
    }
}

impl BetaPosterior {
    /// Posterior mean `P(correct)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Posterior standard deviation (the calibrator's honesty about how
    /// little it has seen).
    pub fn std(&self) -> f64 {
        let (a, b) = (self.alpha, self.beta);
        let n = a + b;
        ((a * b) / (n * n * (n + 1.0))).sqrt()
    }

    /// Number of observations behind this posterior.
    pub fn observations(&self) -> f64 {
        self.alpha + self.beta - 2.0
    }
}

/// A bucketized Bayesian calibrator over a `[0, 1]` signal.
#[derive(Debug, Clone, PartialEq)]
pub struct BayesianCalibrator {
    buckets: Vec<BetaPosterior>,
}

impl BayesianCalibrator {
    /// A calibrator with `n_buckets` equal-width signal buckets.
    pub fn new(n_buckets: usize) -> Self {
        BayesianCalibrator { buckets: vec![BetaPosterior::default(); n_buckets.max(1)] }
    }

    fn bucket(&self, signal: f64) -> usize {
        let n = self.buckets.len();
        ((signal.clamp(0.0, 0.999_999) * n as f64) as usize).min(n - 1)
    }

    /// Record an observed outcome for a signal value.
    pub fn observe(&mut self, signal: f64, correct: bool) {
        let b = self.bucket(signal);
        if correct {
            self.buckets[b].alpha += 1.0;
        } else {
            self.buckets[b].beta += 1.0;
        }
    }

    /// Calibrated `P(correct | signal)`.
    pub fn calibrate(&self, signal: f64) -> f64 {
        self.buckets[self.bucket(signal)].mean()
    }

    /// The posterior behind a signal value (mean ± std, evidence count).
    pub fn posterior(&self, signal: f64) -> BetaPosterior {
        self.buckets[self.bucket(signal)]
    }

    /// Expected calibration error of raw signals against observed
    /// outcomes, evaluated on this calibrator's own evidence: the
    /// bucket-weighted |bucket midpoint − empirical accuracy|. A large
    /// value means the raw signal was *not* a probability and calibration
    /// was needed.
    pub fn raw_signal_ece(&self) -> f64 {
        let n = self.buckets.len() as f64;
        let total: f64 = self.buckets.iter().map(|b| b.observations()).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let mid = (i as f64 + 0.5) / n;
                (b.observations() / total) * (mid - b.mean()).abs()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_model::{CompletionRequest, LanguageModel, ModelZoo, PromptEnvelope};

    #[test]
    fn posterior_updates() {
        let mut c = BayesianCalibrator::new(10);
        assert!((c.calibrate(0.5) - 0.5).abs() < 1e-9, "uniform prior");
        for _ in 0..8 {
            c.observe(0.55, true);
        }
        c.observe(0.55, false);
        let p = c.calibrate(0.55);
        assert!((p - 9.0 / 11.0).abs() < 1e-9, "p={p}");
        // Other buckets untouched.
        assert!((c.calibrate(0.95) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uncertainty_shrinks_with_evidence() {
        let mut c = BayesianCalibrator::new(4);
        let before = c.posterior(0.1).std();
        for i in 0..50 {
            c.observe(0.1, i % 3 == 0);
        }
        assert!(c.posterior(0.1).std() < before / 2.0);
        assert_eq!(c.posterior(0.1).observations(), 50.0);
    }

    /// End-to-end: calibrate the simulated model's raw confidence on easy
    /// questions, where the confidence signal systematically *understates*
    /// the true accuracy; the calibrated probability tracks the empirical
    /// accuracy much more closely.
    #[test]
    fn calibrated_probability_tracks_empirical_accuracy() {
        let zoo = ModelZoo::standard(17);
        let model = zoo.large();
        let ask = |tag: u64| {
            let prompt = PromptEnvelope::builder("oracle")
                .header("gold", "gold")
                .header("difficulty", 0.1)
                .header("tag", tag)
                .header("alt", format!("wrong-{tag}"))
                .body("question")
                .build();
            let c = model.complete(&CompletionRequest::new(prompt)).unwrap();
            (c.confidence, c.text == "gold")
        };
        // Fit on 200 observations.
        let mut cal = BayesianCalibrator::new(10);
        let mut raw_sum = 0.0;
        let mut correct = 0usize;
        for tag in 0..200 {
            let (conf, ok) = ask(tag);
            cal.observe(conf, ok);
            raw_sum += conf;
            if ok {
                correct += 1;
            }
        }
        let empirical = correct as f64 / 200.0;
        let raw_mean = raw_sum / 200.0;
        // Evaluate both estimators on 100 fresh questions.
        let mut cal_sum = 0.0;
        for tag in 200..300 {
            let (conf, _) = ask(tag);
            cal_sum += cal.calibrate(conf);
        }
        let cal_mean = cal_sum / 100.0;
        assert!(
            (raw_mean - empirical).abs() > 0.04,
            "test premise: raw must be miscalibrated, raw {raw_mean:.3} vs empirical {empirical:.3}"
        );
        assert!(
            (cal_mean - empirical).abs() < (raw_mean - empirical).abs(),
            "calibrated {cal_mean:.3} vs raw {raw_mean:.3}, empirical {empirical:.3}"
        );
    }

    #[test]
    fn ece_flags_miscalibrated_signals() {
        // A signal that always reads 0.9 but is right half the time.
        let mut c = BayesianCalibrator::new(10);
        for i in 0..100 {
            c.observe(0.9, i % 2 == 0);
        }
        assert!(c.raw_signal_ece() > 0.3, "ece {}", c.raw_signal_ece());
        // A perfectly calibrated signal has low ECE.
        let mut good = BayesianCalibrator::new(10);
        for i in 0..1000u32 {
            let signal = (i % 10) as f64 / 10.0 + 0.05;
            let correct = (i as f64 * 0.618).fract() < signal;
            good.observe(signal, correct);
        }
        assert!(good.raw_signal_ece() < 0.1, "ece {}", good.raw_signal_ece());
    }

    #[test]
    fn empty_calibrator_ece_zero() {
        assert_eq!(BayesianCalibrator::new(5).raw_signal_ece(), 0.0);
    }
}
