//! Human-in-the-loop crowdsourced validation (§III-E2): "we can define a
//! score function, and then utilize crowdsourcing for scoring the LLM
//! outputs … invite humans to participate in different reasoning steps."

use std::sync::Arc;

use llmdm_model::hash::{combine, fnv1a_str, unit_f64};
use llmdm_model::{ModelError, SimLlm};

/// A simulated crowdworker with a fixed reliability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Worker {
    /// Worker id (drives the deterministic vote stream).
    pub id: u64,
    /// Probability this worker judges a binary task correctly.
    pub reliability: f64,
}

impl Worker {
    /// The worker's binary vote on a task with ground truth `truth`.
    /// Deterministic per (worker, task).
    pub fn vote(&self, task_key: &str, truth: bool) -> bool {
        let u = unit_f64(combine(self.id.wrapping_mul(0x9e3779b97f4a7c15), fnv1a_str(task_key)));
        if u < self.reliability {
            truth
        } else {
            !truth
        }
    }
}

/// A pool of workers.
#[derive(Debug, Clone)]
pub struct CrowdPool {
    /// The workers.
    pub workers: Vec<Worker>,
}

impl CrowdPool {
    /// A heterogeneous pool: reliabilities spread over `[low, high]`.
    pub fn heterogeneous(n: usize, low: f64, high: f64, seed: u64) -> CrowdPool {
        let workers = (0..n)
            .map(|i| {
                let frac = if n <= 1 { 0.5 } else { i as f64 / (n - 1) as f64 };
                Worker {
                    id: seed.wrapping_add(i as u64),
                    reliability: low + frac * (high - low),
                }
            })
            .collect();
        CrowdPool { workers }
    }

    /// Collect every worker's vote on a task.
    pub fn collect(&self, task_key: &str, truth: bool) -> Vec<(u64, bool)> {
        self.workers.iter().map(|w| (w.id, w.vote(task_key, truth))).collect()
    }
}

/// Majority aggregation of `(worker, vote)` pairs.
pub fn aggregate_majority(votes: &[(u64, bool)]) -> bool {
    let yes = votes.iter().filter(|(_, v)| *v).count();
    yes * 2 > votes.len()
}

/// EM-style (Dawid–Skene flavoured) weighted aggregation over many tasks:
/// iteratively estimate per-worker reliabilities from agreement with the
/// current consensus, then reweight votes. Returns per-task decisions and
/// the learned reliabilities.
pub fn aggregate_em(
    all_votes: &[Vec<(u64, bool)>],
    iterations: usize,
) -> (Vec<bool>, Vec<(u64, f64)>) {
    // Initialize consensus with majority.
    let mut consensus: Vec<bool> = all_votes.iter().map(|v| aggregate_majority(v)).collect();
    // Worker ids.
    let mut ids: Vec<u64> = all_votes
        .iter()
        .flat_map(|v| v.iter().map(|(id, _)| *id))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    let mut reliability: Vec<(u64, f64)> = ids.iter().map(|&id| (id, 0.5)).collect();

    for _ in 0..iterations {
        // M-step: reliability = agreement with consensus (Laplace
        // smoothed).
        for (id, rel) in &mut reliability {
            let mut agree = 1.0f64;
            let mut total = 2.0f64;
            for (task, votes) in all_votes.iter().enumerate() {
                if let Some((_, v)) = votes.iter().find(|(w, _)| w == id) {
                    total += 1.0;
                    if *v == consensus[task] {
                        agree += 1.0;
                    }
                }
            }
            *rel = (agree / total).clamp(0.01, 0.99);
        }
        // E-step: log-odds weighted vote.
        for (task, votes) in all_votes.iter().enumerate() {
            let mut score = 0.0;
            for (id, v) in votes {
                let rel = reliability
                    .iter()
                    .find(|(w, _)| w == id)
                    .map(|(_, r)| *r)
                    .unwrap_or(0.5);
                let weight = (rel / (1.0 - rel)).ln();
                score += if *v { weight } else { -weight };
            }
            consensus[task] = score > 0.0;
        }
    }
    (consensus, reliability)
}

/// The escalation loop: a model output whose self-consistency agreement is
/// below the threshold is routed to the crowd for a verdict; confident
/// outputs pass straight through. Implements the paper's "humans
/// participate in intermediate reasoning steps".
pub struct ReviewLoop {
    model: Arc<SimLlm>,
    crowd: CrowdPool,
    /// Agreement threshold below which the crowd reviews.
    pub escalation_threshold: f64,
    /// Self-consistency samples per query.
    pub samples: usize,
}

impl std::fmt::Debug for ReviewLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReviewLoop")
            .field("threshold", &self.escalation_threshold)
            .finish()
    }
}

/// Outcome of one reviewed query.
#[derive(Debug, Clone, PartialEq)]
pub struct ReviewedAnswer {
    /// The final answer text.
    pub text: String,
    /// Whether the crowd was consulted.
    pub escalated: bool,
    /// Whether the crowd (if consulted) endorsed the model's answer.
    pub crowd_endorsed: Option<bool>,
}

impl ReviewLoop {
    /// Create a loop.
    pub fn new(model: Arc<SimLlm>, crowd: CrowdPool) -> Self {
        ReviewLoop { model, crowd, escalation_threshold: 0.8, samples: 5 }
    }

    /// Answer a prompt; escalate to the crowd when the model's
    /// self-consistency agreement is low. `truth_check` tells the
    /// simulated workers whether the model's answer is actually correct
    /// (the workers see the real artifact; the harness sees the gold).
    pub fn answer(
        &self,
        prompt: &str,
        truth_check: impl Fn(&str) -> bool,
    ) -> Result<ReviewedAnswer, ModelError> {
        let rep = crate::consistency::self_consistency(&self.model, prompt, self.samples)?;
        if rep.agreement >= self.escalation_threshold {
            return Ok(ReviewedAnswer { text: rep.answer, escalated: false, crowd_endorsed: None });
        }
        // Crowd reviews the model's majority answer.
        let answer_correct = truth_check(&rep.answer);
        let votes = self.crowd.collect(&rep.answer, answer_correct);
        let endorsed = aggregate_majority(&votes);
        if endorsed {
            Ok(ReviewedAnswer {
                text: rep.answer,
                escalated: true,
                crowd_endorsed: Some(true),
            })
        } else {
            // Crowd rejected: fall back to the runner-up answer if any,
            // else keep the original flagged.
            let fallback = rep
                .votes
                .get(1)
                .map(|(a, _)| a.clone())
                .unwrap_or_else(|| rep.answer.clone());
            Ok(ReviewedAnswer { text: fallback, escalated: true, crowd_endorsed: Some(false) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_model::{CompletionRequest, LanguageModel, ModelZoo, PromptEnvelope};

    #[test]
    fn reliable_worker_mostly_right() {
        let w = Worker { id: 1, reliability: 0.9 };
        let right = (0..500)
            .filter(|i| w.vote(&format!("task {i}"), true))
            .count();
        assert!((420..=480).contains(&right), "right={right}");
    }

    #[test]
    fn majority_of_good_workers_is_reliable() {
        let pool = CrowdPool::heterogeneous(9, 0.7, 0.9, 1);
        let mut ok = 0;
        for i in 0..200 {
            let votes = pool.collect(&format!("t{i}"), i % 2 == 0);
            if aggregate_majority(&votes) == (i % 2 == 0) {
                ok += 1;
            }
        }
        assert!(ok > 190, "ok={ok}");
    }

    #[test]
    fn em_beats_majority_with_heterogeneous_workers() {
        // 3 good workers + 6 near-random ones: majority is diluted, EM
        // learns to trust the good ones.
        let mut workers = Vec::new();
        for i in 0..3 {
            workers.push(Worker { id: i, reliability: 0.95 });
        }
        for i in 3..9 {
            workers.push(Worker { id: i, reliability: 0.52 });
        }
        let pool = CrowdPool { workers };
        let n_tasks = 300;
        let truths: Vec<bool> = (0..n_tasks).map(|i| i % 3 != 0).collect();
        let all_votes: Vec<Vec<(u64, bool)>> = truths
            .iter()
            .enumerate()
            .map(|(i, &t)| pool.collect(&format!("task {i}"), t))
            .collect();
        let majority_ok = all_votes
            .iter()
            .zip(&truths)
            .filter(|(v, &t)| aggregate_majority(v) == t)
            .count();
        let (em, learned) = aggregate_em(&all_votes, 5);
        let em_ok = em.iter().zip(&truths).filter(|(e, t)| e == t).count();
        assert!(em_ok > majority_ok, "em {em_ok} vs majority {majority_ok}");
        // EM discovers who the good workers are.
        let good_rel = learned.iter().filter(|(id, _)| *id < 3).map(|(_, r)| r).sum::<f64>() / 3.0;
        let bad_rel = learned.iter().filter(|(id, _)| *id >= 3).map(|(_, r)| r).sum::<f64>() / 6.0;
        assert!(good_rel > bad_rel + 0.2, "good {good_rel} vs bad {bad_rel}");
    }

    fn oracle_prompt(gold: &str, difficulty: f64, tag: u64) -> String {
        PromptEnvelope::builder("oracle")
            .header("gold", gold)
            .header("difficulty", difficulty)
            .header("tag", tag)
            .header("alt", format!("wrong-{tag}"))
            .body("question")
            .build()
    }

    #[test]
    fn review_loop_improves_accuracy_on_hard_queries() {
        let zoo = ModelZoo::standard(13);
        let model = zoo.medium();
        let crowd = CrowdPool::heterogeneous(7, 0.8, 0.95, 3);
        let mut raw_ok = 0;
        let mut reviewed_ok = 0;
        let mut escalations = 0;
        let n = 120;
        for tag in 0..n {
            let prompt = oracle_prompt("gold", 0.8, tag);
            let raw = model.complete(&CompletionRequest::new(prompt.clone())).unwrap().text;
            if raw == "gold" {
                raw_ok += 1;
            }
            let review_loop = ReviewLoop::new(model.clone(), crowd.clone());
            let reviewed = review_loop.answer(&prompt, |a| a == "gold").unwrap();
            if reviewed.escalated {
                escalations += 1;
            }
            if reviewed.text == "gold" {
                reviewed_ok += 1;
            }
        }
        assert!(escalations > 5, "expected escalations, got {escalations}");
        assert!(
            reviewed_ok >= raw_ok,
            "reviewed {reviewed_ok} vs raw {raw_ok} out of {n}"
        );
    }

    #[test]
    fn confident_answers_skip_the_crowd() {
        let zoo = ModelZoo::standard(5);
        let model = zoo.large();
        let crowd = CrowdPool::heterogeneous(5, 0.8, 0.9, 1);
        let review_loop = ReviewLoop::new(model, crowd);
        let reviewed =
            review_loop.answer(&oracle_prompt("easy", 0.02, 0), |a| a == "easy").unwrap();
        assert!(!reviewed.escalated);
        assert_eq!(reviewed.text, "easy");
    }
}
