//! Self-consistency uncertainty estimation: resample the model and use
//! inter-sample agreement as the confidence signal (the paper: "the
//! probabilistic nature of LLM outputs poses a challenge to their
//! reliability" — agreement across samples is the practical reliability
//! probe that needs no gold labels).

use std::sync::Arc;

use llmdm_model::{CompletionRequest, LanguageModel, ModelError, SimLlm};

/// Result of a self-consistency probe.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsistencyReport {
    /// The majority answer.
    pub answer: String,
    /// Agreement ratio of the majority answer in `[1/k, 1]`.
    pub agreement: f64,
    /// All sampled answers with counts.
    pub votes: Vec<(String, usize)>,
}

/// Sample the model `k` times on `prompt` (varying a nonce header so the
/// deterministic simulation resamples), majority-vote the answer.
///
/// The prompt must be an envelope (`### task: …`); the nonce is injected
/// as an extra header line.
pub fn self_consistency(
    model: &Arc<SimLlm>,
    prompt: &str,
    k: usize,
) -> Result<ConsistencyReport, ModelError> {
    let mut votes: Vec<(String, usize)> = Vec::new();
    for nonce in 0..k.max(1) {
        let varied = inject_nonce(prompt, nonce as u64);
        let text = model.complete(&CompletionRequest::new(varied))?.text;
        match votes.iter_mut().find(|(a, _)| *a == text) {
            Some((_, c)) => *c += 1,
            None => votes.push((text, 1)),
        }
    }
    votes.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    let (answer, count) = votes[0].clone();
    Ok(ConsistencyReport { answer, agreement: count as f64 / k.max(1) as f64, votes })
}

/// Insert a `### nonce:` header after the task line.
fn inject_nonce(prompt: &str, nonce: u64) -> String {
    let mut out = String::with_capacity(prompt.len() + 24);
    let mut injected = false;
    for line in prompt.split_inclusive('\n') {
        out.push_str(line);
        if !injected && line.starts_with("### task:") {
            out.push_str(&format!("### nonce: {nonce}\n"));
            injected = true;
        }
    }
    if !injected {
        out.push_str(&format!("\n### nonce: {nonce}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_model::{ModelZoo, PromptEnvelope};

    fn oracle_prompt(gold: &str, difficulty: f64, tag: u64) -> String {
        PromptEnvelope::builder("oracle")
            .header("gold", gold)
            .header("difficulty", difficulty)
            .header("tag", tag)
            .header("alt", format!("wrong-{tag}-a"))
            .header("alt", format!("wrong-{tag}-b"))
            .header("alt", format!("wrong-{tag}-c"))
            .body("question body")
            .build()
    }

    #[test]
    fn easy_questions_have_high_agreement() {
        let zoo = ModelZoo::standard(3);
        let model = zoo.large();
        let rep = self_consistency(&model, &oracle_prompt("paris", 0.02, 1), 9).unwrap();
        assert_eq!(rep.answer, "paris");
        assert!(rep.agreement > 0.8, "agreement {}", rep.agreement);
    }

    #[test]
    fn voting_beats_single_sample_on_medium_difficulty() {
        let zoo = ModelZoo::standard(7);
        let model = zoo.medium();
        let n = 120;
        let mut single_ok = 0;
        let mut voted_ok = 0;
        for tag in 0..n {
            let prompt = oracle_prompt("gold-answer", 0.6, tag);
            let single = model
                .complete(&CompletionRequest::new(inject_nonce(&prompt, 0)))
                .unwrap()
                .text;
            if single == "gold-answer" {
                single_ok += 1;
            }
            let rep = self_consistency(&model, &prompt, 7).unwrap();
            if rep.answer == "gold-answer" {
                voted_ok += 1;
            }
        }
        assert!(
            voted_ok > single_ok,
            "voted {voted_ok} vs single {single_ok} out of {n}"
        );
    }

    #[test]
    fn agreement_correlates_with_correctness() {
        let zoo = ModelZoo::standard(11);
        let model = zoo.medium();
        let (mut agree_ok, mut n_ok, mut agree_bad, mut n_bad) = (0.0, 0, 0.0, 0);
        for tag in 0..100 {
            let rep =
                self_consistency(&model, &oracle_prompt("gold", 0.7, tag), 7).unwrap();
            if rep.answer == "gold" {
                agree_ok += rep.agreement;
                n_ok += 1;
            } else {
                agree_bad += rep.agreement;
                n_bad += 1;
            }
        }
        assert!(n_ok > 5 && n_bad > 5, "need both outcomes: {n_ok}/{n_bad}");
        let mean_ok = agree_ok / n_ok as f64;
        let mean_bad = agree_bad / n_bad as f64;
        assert!(
            mean_ok > mean_bad + 0.05,
            "agreement when right {mean_ok:.2} vs wrong {mean_bad:.2}"
        );
    }

    #[test]
    fn votes_account_for_all_samples() {
        let zoo = ModelZoo::standard(1);
        let model = zoo.small();
        let rep = self_consistency(&model, &oracle_prompt("x", 0.9, 5), 11).unwrap();
        let total: usize = rep.votes.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 11);
        assert!(rep.agreement >= 1.0 / 11.0);
    }

    #[test]
    fn nonce_injection_preserves_envelope() {
        let p = oracle_prompt("g", 0.5, 0);
        let varied = inject_nonce(&p, 3);
        let env = PromptEnvelope::parse(&varied).unwrap();
        assert_eq!(env.get("nonce"), Some("3"));
        assert_eq!(env.get("gold"), Some("g"));
    }
}
