//! # llmdm-validate — LLM output validation (§III-E)
//!
//! "Data management tasks typically have a high demand for the reliability
//! of the data … the LLM outputs for data management applications must be
//! of high quality and should be verified and validated before being
//! used." The paper envisions two directions; this crate implements both,
//! plus the mechanical validators any deployment needs first:
//!
//! * [`validators`] — deterministic output gates: SQL syntax, SQL
//!   execution, result-schema conformance, numeric range constraints, and
//!   composition;
//! * [`consistency`] — **self-consistency** uncertainty estimation:
//!   resample the model (nonce-varied prompts), majority-vote the answer,
//!   and use the agreement ratio as a calibrated confidence signal;
//! * [`attribution`] — **interpretable LLMs** via leave-one-out example
//!   attribution: which few-shot examples actually drive the answer;
//! * [`calibration`] — the section's "Bayesian modeling": per-bucket Beta
//!   posteriors turning raw confidence/agreement signals into calibrated
//!   correctness probabilities with honest uncertainty;
//! * [`crowd`] — **human-in-the-loop exploitation**: simulated
//!   crowdworkers with heterogeneous reliabilities, majority vs
//!   EM-weighted aggregation (the paper's "define a score function, and
//!   then utilize crowdsourcing for scoring the LLM outputs"), and an
//!   escalation loop that routes low-agreement model outputs to the crowd.

#![warn(missing_docs)]

pub mod attribution;
pub mod calibration;
pub mod consistency;
pub mod crowd;
pub mod validators;

pub use attribution::{attribute_examples, ExampleInfluence};
pub use calibration::{BayesianCalibrator, BetaPosterior};
pub use consistency::{self_consistency, ConsistencyReport};
pub use crowd::{aggregate_em, aggregate_majority, CrowdPool, ReviewLoop, Worker};
pub use validators::{
    CompositeValidator, OutputValidator, RangeValidator, SchemaValidator, SqlExecValidator,
    SqlSyntaxValidator, Verdict,
};
