//! Deterministic output validators.

use llmdm_sqlengine::{Database, Statement};

/// A validation verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The output passed.
    Pass,
    /// The output failed, with a reason.
    Fail(String),
}

impl Verdict {
    /// Whether the verdict is a pass.
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Pass)
    }
}

/// A validator over model output text.
pub trait OutputValidator {
    /// Validator name (for reports).
    fn name(&self) -> &str;
    /// Validate the output.
    fn validate(&self, output: &str) -> Verdict;
}

/// Output must parse as a SQL statement.
#[derive(Debug, Default)]
pub struct SqlSyntaxValidator;

impl OutputValidator for SqlSyntaxValidator {
    fn name(&self) -> &str {
        "sql-syntax"
    }
    fn validate(&self, output: &str) -> Verdict {
        match llmdm_sqlengine::parse_statement(output.trim()) {
            Ok(_) => Verdict::Pass,
            Err(e) => Verdict::Fail(format!("does not parse: {e}")),
        }
    }
}

/// Output must parse *and* execute against a database snapshot.
#[derive(Debug)]
pub struct SqlExecValidator {
    db: Database,
}

impl SqlExecValidator {
    /// Validator executing against a clone of `db`.
    pub fn new(db: Database) -> Self {
        SqlExecValidator { db }
    }
}

impl OutputValidator for SqlExecValidator {
    fn name(&self) -> &str {
        "sql-exec"
    }
    fn validate(&self, output: &str) -> Verdict {
        let mut scratch = self.db.clone();
        match scratch.execute(output.trim()) {
            Ok(_) => Verdict::Pass,
            Err(e) => Verdict::Fail(format!("does not execute: {e}")),
        }
    }
}

/// A SELECT output must project the expected number of columns.
#[derive(Debug)]
pub struct SchemaValidator {
    /// Expected projection arity.
    pub expected_columns: usize,
    db: Database,
}

impl SchemaValidator {
    /// Build a validator for `expected_columns` against `db`.
    pub fn new(db: Database, expected_columns: usize) -> Self {
        SchemaValidator { expected_columns, db }
    }
}

impl OutputValidator for SchemaValidator {
    fn name(&self) -> &str {
        "schema-conformance"
    }
    fn validate(&self, output: &str) -> Verdict {
        let stmt = match llmdm_sqlengine::parse_statement(output.trim()) {
            Ok(s) => s,
            Err(e) => return Verdict::Fail(format!("does not parse: {e}")),
        };
        let Statement::Select(select) = stmt else {
            return Verdict::Fail("expected a SELECT".into());
        };
        match llmdm_sqlengine::exec::execute_select(&self.db, &select) {
            Ok(rs) if rs.columns.len() == self.expected_columns => Verdict::Pass,
            Ok(rs) => Verdict::Fail(format!(
                "projects {} columns, expected {}",
                rs.columns.len(),
                self.expected_columns
            )),
            Err(e) => Verdict::Fail(format!("does not execute: {e}")),
        }
    }
}

/// Output must be a number within `[min, max]` (label imputation, cost
/// estimates, scores).
#[derive(Debug)]
pub struct RangeValidator {
    /// Inclusive minimum.
    pub min: f64,
    /// Inclusive maximum.
    pub max: f64,
}

impl OutputValidator for RangeValidator {
    fn name(&self) -> &str {
        "numeric-range"
    }
    fn validate(&self, output: &str) -> Verdict {
        match output.trim().parse::<f64>() {
            Ok(v) if (self.min..=self.max).contains(&v) => Verdict::Pass,
            Ok(v) => Verdict::Fail(format!("{v} outside [{}, {}]", self.min, self.max)),
            Err(_) => Verdict::Fail(format!("not a number: {output:?}")),
        }
    }
}

/// All inner validators must pass; reports the first failure.
pub struct CompositeValidator {
    validators: Vec<Box<dyn OutputValidator + Send + Sync>>,
}

impl std::fmt::Debug for CompositeValidator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeValidator")
            .field("validators", &self.validators.iter().map(|v| v.name()).collect::<Vec<_>>())
            .finish()
    }
}

impl CompositeValidator {
    /// An empty composite (passes everything).
    pub fn new() -> Self {
        CompositeValidator { validators: Vec::new() }
    }

    /// Add a validator.
    pub fn with(mut self, v: impl OutputValidator + Send + Sync + 'static) -> Self {
        self.validators.push(Box::new(v));
        self
    }
}

impl Default for CompositeValidator {
    fn default() -> Self {
        Self::new()
    }
}

impl OutputValidator for CompositeValidator {
    fn name(&self) -> &str {
        "composite"
    }
    fn validate(&self, output: &str) -> Verdict {
        for v in &self.validators {
            if let Verdict::Fail(reason) = v.validate(output) {
                return Verdict::Fail(format!("{}: {reason}", v.name()));
            }
        }
        Verdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
        db
    }

    #[test]
    fn syntax_validator() {
        let v = SqlSyntaxValidator;
        assert!(v.validate("SELECT id FROM t").is_pass());
        assert!(!v.validate("SELEC id FRM t").is_pass());
    }

    #[test]
    fn exec_validator_catches_unknown_tables() {
        let v = SqlExecValidator::new(db());
        assert!(v.validate("SELECT id FROM t WHERE id = 1").is_pass());
        assert!(!v.validate("SELECT id FROM missing").is_pass());
        assert!(!v.validate("SELECT wrong FROM t").is_pass());
    }

    #[test]
    fn exec_validator_does_not_mutate_source() {
        let source = db();
        let v = SqlExecValidator::new(source.clone());
        assert!(v.validate("DELETE FROM t").is_pass());
        // Validating a DELETE must not delete from the validator's copy
        // for subsequent validations.
        assert!(v.validate("SELECT id FROM t WHERE id = 1").is_pass());
    }

    #[test]
    fn schema_validator_checks_arity() {
        let v = SchemaValidator::new(db(), 2);
        assert!(v.validate("SELECT id, name FROM t").is_pass());
        assert!(!v.validate("SELECT id FROM t").is_pass());
        assert!(!v.validate("DELETE FROM t").is_pass());
    }

    #[test]
    fn range_validator() {
        let v = RangeValidator { min: 0.0, max: 100.0 };
        assert!(v.validate("42.5").is_pass());
        assert!(!v.validate("-3").is_pass());
        assert!(!v.validate("not a number").is_pass());
    }

    #[test]
    fn composite_reports_first_failure() {
        let v = CompositeValidator::new()
            .with(SqlSyntaxValidator)
            .with(SqlExecValidator::new(db()));
        assert!(v.validate("SELECT id FROM t").is_pass());
        match v.validate("SELECT id FROM missing") {
            Verdict::Fail(reason) => assert!(reason.contains("sql-exec")),
            Verdict::Pass => panic!("should fail"),
        }
    }

    #[test]
    fn empty_composite_passes() {
        assert!(CompositeValidator::new().validate("anything").is_pass());
    }
}
