//! Leave-one-out example attribution — the "interpretable LLMs" direction
//! (§III-E1): explain a few-shot answer by measuring how much each
//! in-context example contributed to it.

use std::sync::Arc;

use llmdm_model::{CompletionRequest, LanguageModel, ModelError, SimLlm};

/// Influence of one example on the model's output.
#[derive(Debug, Clone, PartialEq)]
pub struct ExampleInfluence {
    /// Index of the example in the prompt.
    pub index: usize,
    /// The example's first line (for display).
    pub summary: String,
    /// Confidence drop when the example is removed (higher = more
    /// influential).
    pub confidence_drop: f64,
    /// Whether removing it flips the answer.
    pub flips_answer: bool,
}

/// Leave-one-out attribution over an envelope prompt whose body contains
/// `Example:`-prefixed lines. Returns influences sorted most-influential
/// first.
pub fn attribute_examples(
    model: &Arc<SimLlm>,
    prompt: &str,
) -> Result<Vec<ExampleInfluence>, ModelError> {
    let base = model.complete(&CompletionRequest::new(prompt.to_string()))?;
    let example_lines: Vec<usize> = prompt
        .lines()
        .enumerate()
        .filter(|(_, l)| l.trim_start().starts_with("Example"))
        .map(|(i, _)| i)
        .collect();

    let mut influences = Vec::with_capacity(example_lines.len());
    for (k, &line_idx) in example_lines.iter().enumerate() {
        let reduced: String = prompt
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != line_idx)
            .map(|(_, l)| l)
            .collect::<Vec<_>>()
            .join("\n");
        let reduced = decrement_examples_header(&reduced);
        let ablated = model.complete(&CompletionRequest::new(reduced))?;
        let summary: String =
            prompt.lines().nth(line_idx).unwrap_or("").chars().take(60).collect();
        influences.push(ExampleInfluence {
            index: k,
            summary,
            confidence_drop: base.confidence - ablated.confidence,
            flips_answer: ablated.text != base.text,
        });
    }
    influences.sort_by(|a, b| {
        b.flips_answer
            .cmp(&a.flips_answer)
            .then_with(|| b.confidence_drop.total_cmp(&a.confidence_drop))
    });
    Ok(influences)
}

/// Decrement an explicit `### examples:` header to match the ablation.
fn decrement_examples_header(prompt: &str) -> String {
    let mut out = String::with_capacity(prompt.len());
    let mut done = false;
    for line in prompt.split_inclusive('\n') {
        if !done {
            if let Some(rest) = line.trim_end().strip_prefix("### examples: ") {
                if let Ok(n) = rest.parse::<usize>() {
                    out.push_str(&format!("### examples: {}\n", n.saturating_sub(1)));
                    done = true;
                    continue;
                }
            }
        }
        out.push_str(line);
    }
    // Preserve a missing trailing newline edge: split_inclusive keeps it.
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_model::{ModelZoo, PromptEnvelope};

    fn few_shot_prompt(shots: usize) -> String {
        let mut body = String::new();
        for i in 0..shots {
            body.push_str(&format!("Example {i}: question -> answer\n"));
        }
        body.push_str("Now answer the target question.\n");
        PromptEnvelope::builder("oracle")
            .header("gold", "target-answer")
            .header("difficulty", 0.75)
            .header("examples", shots)
            .header("alt", "wrong-answer")
            .body(body)
            .build()
    }

    #[test]
    fn attribution_covers_every_example() {
        let zoo = ModelZoo::standard(3);
        let model = zoo.large();
        let influences = attribute_examples(&model, &few_shot_prompt(4)).unwrap();
        assert_eq!(influences.len(), 4);
        let mut idxs: Vec<usize> = influences.iter().map(|i| i.index).collect();
        idxs.sort_unstable();
        assert_eq!(idxs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn removing_all_examples_reduces_confidence_on_average() {
        // The ICL effect attribution measures: with every example ablated
        // the effective difficulty rises, so confidence drops. A single
        // leave-one-out step moves confidence by less than the model's
        // confidence noise, which is why attribution ranks rather than
        // thresholds.
        use llmdm_model::CompletionRequest;
        let zoo = ModelZoo::standard(9);
        let model = zoo.medium();
        let mut gap = 0.0;
        for tag in 0..60 {
            let with = few_shot_prompt(8)
                .replace("target question", &format!("target question {tag}"));
            let without = PromptEnvelope::builder("oracle")
                .header("gold", "target-answer")
                .header("difficulty", 0.75)
                .header("examples", 0)
                .header("alt", "wrong-answer")
                .body(format!("Now answer the target question {tag}.\n"))
                .build();
            let c_with = model.complete(&CompletionRequest::new(with)).unwrap().confidence;
            let c_without =
                model.complete(&CompletionRequest::new(without)).unwrap().confidence;
            gap += c_with - c_without;
        }
        assert!(gap / 60.0 > 0.03, "mean gap {}", gap / 60.0);
    }

    #[test]
    fn loo_influence_is_small_but_not_systematically_negative() {
        let zoo = ModelZoo::standard(9);
        let model = zoo.medium();
        let mut total_drop = 0.0;
        let mut count = 0;
        for tag in 0..30 {
            let prompt = few_shot_prompt(4)
                .replace("target question", &format!("target question {tag}"));
            for inf in attribute_examples(&model, &prompt).unwrap() {
                total_drop += inf.confidence_drop;
                count += 1;
            }
        }
        assert!(count > 0);
        let mean = total_drop / count as f64;
        assert!(mean > -0.03, "mean drop {mean}");
    }

    #[test]
    fn flips_are_ranked_first() {
        let zoo = ModelZoo::standard(5);
        let model = zoo.small(); // weak model: ablation flips more often
        let mut saw_flip = false;
        for tag in 0..20 {
            let prompt =
                few_shot_prompt(4).replace("target question", &format!("tq {tag}"));
            let influences = attribute_examples(&model, &prompt).unwrap();
            if influences.iter().any(|i| i.flips_answer) {
                saw_flip = true;
                assert!(influences[0].flips_answer, "flipping example must rank first");
            }
        }
        assert!(saw_flip, "expected at least one answer flip with the small tier");
    }

    #[test]
    fn no_examples_yields_empty_attribution() {
        let zoo = ModelZoo::standard(1);
        let model = zoo.large();
        let prompt = PromptEnvelope::builder("oracle")
            .header("gold", "x")
            .header("difficulty", 0.1)
            .body("no examples here")
            .build();
        assert!(attribute_examples(&model, &prompt).unwrap().is_empty());
    }

    #[test]
    fn header_decrement() {
        let p = "### task: t\n### examples: 3\n\nbody\n";
        let out = decrement_examples_header(p);
        assert!(out.contains("### examples: 2"));
    }
}
