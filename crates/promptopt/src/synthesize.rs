//! Automatic prompt synthesis from historical prompts.
//!
//! §III-A's full vision: "selecting appropriate historical prompts and
//! then using them to generate new prompts automatically can be a good
//! choice". Selection is [`crate::select`]; this module is the *generate*
//! step: compose a fresh prompt for a new request by merging the example
//! blocks of the best historical prompts, de-duplicating near-identical
//! examples (by embedding similarity) and ordering them utility-first so
//! the strongest guidance sits closest to the question.

use llmdm_model::embed::cosine;
use llmdm_model::{Embedder, PromptEnvelope};
use llmdm_vecdb::VecDbError;

use crate::select::PromptSelector;
use crate::store::PromptStore;

/// A synthesized prompt plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesizedPrompt {
    /// The rendered envelope prompt.
    pub prompt: String,
    /// Ids of the historical prompts that contributed.
    pub sources: Vec<u64>,
    /// Examples kept after dedup.
    pub examples: usize,
    /// Examples dropped as near-duplicates.
    pub deduped: usize,
}

/// Configuration for prompt synthesis.
#[derive(Debug, Clone, Copy)]
pub struct SynthesisConfig {
    /// Historical prompts to draw from.
    pub top_k: usize,
    /// Maximum examples in the synthesized prompt.
    pub max_examples: usize,
    /// Cosine similarity above which two examples are duplicates.
    pub dedup_threshold: f32,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig { top_k: 6, max_examples: 8, dedup_threshold: 0.92 }
    }
}

/// Synthesize a new prompt for `request` (task id `task`) from the store,
/// using `selector` to rank historical prompts.
///
/// Each stored prompt's text is treated as one example snippet; snippets
/// merge into a single example block, utility-ranked, embedding-deduped.
pub fn synthesize_prompt(
    store: &PromptStore,
    selector: &mut dyn PromptSelector,
    task: &str,
    request: &str,
    config: SynthesisConfig,
) -> Result<SynthesizedPrompt, VecDbError> {
    let picked = selector.select(store, request, config.top_k)?;
    let embedder = Embedder::standard(0x5eed);

    // Utility-first ordering.
    let mut ranked: Vec<(f64, u64, String)> = picked
        .iter()
        .filter_map(|id| store.get(*id).map(|r| (r.utility(), r.id, r.text.clone())))
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0));

    // Embedding dedup.
    let mut kept: Vec<(u64, String)> = Vec::new();
    let mut kept_vecs: Vec<Vec<f32>> = Vec::new();
    let mut deduped = 0usize;
    for (_, id, text) in ranked {
        if kept.len() >= config.max_examples {
            break;
        }
        let Ok(v) = embedder.embed(&text) else { continue };
        let dup = kept_vecs.iter().any(|k| cosine(k, &v) >= config.dedup_threshold);
        if dup {
            deduped += 1;
            continue;
        }
        kept_vecs.push(v);
        kept.push((id, text));
    }

    let mut body = String::new();
    for (_, text) in &kept {
        body.push_str(&format!("Example: {text}\n"));
    }
    body.push('\n');
    body.push_str(request);
    body.push('\n');

    let prompt = PromptEnvelope::builder(task)
        .header("examples", kept.len())
        .header("synthesized", "true")
        .body(body)
        .build();
    Ok(SynthesizedPrompt {
        prompt,
        sources: kept.iter().map(|(id, _)| *id).collect(),
        examples: kept.len(),
        deduped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{PerformanceAware, SimilarityTopK};

    fn store_with_history() -> PromptStore {
        let mut s = PromptStore::new(1);
        let texts = [
            "Q: stadiums with concerts in 2014 -> SELECT name FROM stadium WHERE ...",
            "Q: stadiums with concerts in 2015 -> SELECT name FROM stadium WHERE ...",
            "Q: stadiums with the most concerts -> SELECT ... ORDER BY COUNT(*) DESC LIMIT 1",
            "Q: singers on tour -> SELECT name FROM singer WHERE ...",
            "Q: customers by city -> SELECT city, COUNT(*) FROM customer GROUP BY city",
        ];
        for t in texts {
            s.insert(t, "nl2sql").unwrap();
        }
        s
    }

    #[test]
    fn synthesizes_a_parseable_envelope() {
        let store = store_with_history();
        let mut sel = SimilarityTopK;
        let out = synthesize_prompt(
            &store,
            &mut sel,
            "nl2sql",
            "Q: stadiums with festivals in 2013",
            SynthesisConfig::default(),
        )
        .unwrap();
        let env = PromptEnvelope::parse(&out.prompt).unwrap();
        assert_eq!(env.task, "nl2sql");
        assert_eq!(env.examples(), out.examples);
        assert!(env.body.contains("festivals in 2013"));
        assert!(out.examples >= 2);
    }

    #[test]
    fn near_duplicate_examples_are_deduped() {
        let mut store = PromptStore::new(2);
        store.insert("Q: stadiums with concerts in 2014 -> SELECT name one", "t").unwrap();
        store.insert("Q: stadiums with concerts in 2014 -> SELECT name two", "t").unwrap();
        store.insert("Q: customers by city -> SELECT city", "t").unwrap();
        let mut sel = SimilarityTopK;
        let out = synthesize_prompt(
            &store,
            &mut sel,
            "t",
            "Q: stadiums with concerts in 2016",
            SynthesisConfig::default(),
        )
        .unwrap();
        assert!(out.deduped >= 1, "expected dedup, got {out:?}");
    }

    #[test]
    fn utility_orders_examples_first() {
        let mut store = store_with_history();
        // Make the superlative example the proven one.
        let target = store
            .iter()
            .find(|r| r.text.contains("most concerts"))
            .map(|r| r.id)
            .unwrap();
        for _ in 0..8 {
            store.record_reward(target, 1.0);
        }
        let others: Vec<u64> =
            store.iter().filter(|r| r.id != target).map(|r| r.id).collect();
        for id in others {
            store.record_reward(id, 0.2);
        }
        let mut sel = PerformanceAware::default();
        let out = synthesize_prompt(
            &store,
            &mut sel,
            "nl2sql",
            "Q: stadiums with the most sports meetings",
            SynthesisConfig::default(),
        )
        .unwrap();
        assert_eq!(out.sources.first(), Some(&target), "proven prompt leads");
        let first_example = out
            .prompt
            .lines()
            .find(|l| l.starts_with("Example:"))
            .unwrap();
        assert!(first_example.contains("most concerts"));
    }

    #[test]
    fn empty_store_yields_zero_example_prompt() {
        let store = PromptStore::new(3);
        let mut sel = SimilarityTopK;
        let out = synthesize_prompt(
            &store,
            &mut sel,
            "t",
            "Q: anything",
            SynthesisConfig::default(),
        )
        .unwrap();
        assert_eq!(out.examples, 0);
        assert!(PromptEnvelope::parse(&out.prompt).is_some());
    }

    #[test]
    fn max_examples_respected() {
        let mut store = PromptStore::new(4);
        for i in 0..10 {
            store
                .insert(&format!("Q: template {i} about widget sales -> SELECT {i}"), "t")
                .unwrap();
        }
        let mut sel = SimilarityTopK;
        let cfg = SynthesisConfig { top_k: 10, max_examples: 3, ..Default::default() };
        let out =
            synthesize_prompt(&store, &mut sel, "t", "Q: widget sales", cfg).unwrap();
        assert!(out.examples <= 3);
    }
}
