//! The historical prompt store: prompt text + embedding + utility record.

use llmdm_model::Embedder;
use llmdm_vecdb::{AttrValue, Collection, Metric, VecDbError};

/// One stored prompt with its usage statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PromptRecord {
    /// Store-assigned id.
    pub id: u64,
    /// The prompt text (typically a few-shot example or template).
    pub text: String,
    /// Free-form task tag ("nl2sql", "entity-resolution", …).
    pub task: String,
    /// Times this prompt was selected.
    pub uses: u64,
    /// Sum of observed rewards (1.0 = the output it helped produce was
    /// correct).
    pub reward_sum: f64,
}

impl PromptRecord {
    /// Mean observed utility, with an optimistic prior of 0.5 for unused
    /// prompts.
    pub fn utility(&self) -> f64 {
        if self.uses == 0 {
            0.5
        } else {
            self.reward_sum / self.uses as f64
        }
    }
}

/// Historical prompts stored in the vector database.
#[derive(Debug)]
pub struct PromptStore {
    embedder: Embedder,
    coll: Collection,
    records: Vec<PromptRecord>,
    next_id: u64,
}

impl PromptStore {
    /// Create a store with the shared embedding space.
    pub fn new(seed: u64) -> Self {
        let embedder = Embedder::standard(seed);
        let coll = Collection::new(embedder.dim(), Metric::Cosine);
        PromptStore { embedder, coll, records: Vec::new(), next_id: 0 }
    }

    /// Number of stored prompts.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Insert a prompt; returns its id.
    pub fn insert(&mut self, text: &str, task: &str) -> Result<u64, VecDbError> {
        let v = self.embedder.embed(text).map_err(|_| VecDbError::Empty("prompt text"))?;
        let id = self.next_id;
        self.next_id += 1;
        self.coll.insert(id, v, [("task", AttrValue::from(task))])?;
        self.records.push(PromptRecord {
            id,
            text: text.to_string(),
            task: task.to_string(),
            uses: 0,
            reward_sum: 0.0,
        });
        Ok(id)
    }

    /// Remove a prompt.
    pub fn remove(&mut self, id: u64) -> Result<(), VecDbError> {
        self.coll.remove(id)?;
        self.records.retain(|r| r.id != id);
        Ok(())
    }

    /// Fetch a record.
    pub fn get(&self, id: u64) -> Option<&PromptRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Record the reward observed after using prompt `id` (1.0 = helped
    /// produce a correct output, 0.0 = did not).
    pub fn record_reward(&mut self, id: u64, reward: f64) {
        if let Some(r) = self.records.iter_mut().find(|r| r.id == id) {
            r.uses += 1;
            r.reward_sum += reward.clamp(0.0, 1.0);
        }
    }

    /// The `k` most similar prompts to `query` with their similarities,
    /// optionally restricted to a task tag.
    pub fn similar(
        &self,
        query: &str,
        k: usize,
        task: Option<&str>,
    ) -> Result<Vec<(f32, &PromptRecord)>, VecDbError> {
        let v = self.embedder.embed(query).map_err(|_| VecDbError::Empty("query text"))?;
        let hits = match task {
            None => self.coll.search_exact(&v, k)?,
            Some(t) => {
                let filter = llmdm_vecdb::Filter::eq("task", t);
                self.coll.search_filtered(&v, k, &filter)?
            }
        };
        Ok(hits
            .into_iter()
            .filter_map(|h| self.get(h.id).map(|r| (h.score, r)))
            .collect())
    }

    /// Iterate all records.
    pub fn iter(&self) -> impl Iterator<Item = &PromptRecord> {
        self.records.iter()
    }

    /// The record with the lowest utility (eviction candidate).
    pub fn worst(&self) -> Option<&PromptRecord> {
        self.records.iter().min_by(|a, b| {
            a.utility().total_cmp(&b.utility()).then_with(|| b.uses.cmp(&a.uses))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> PromptStore {
        let mut s = PromptStore::new(1);
        s.insert("translate stadium concert questions to SQL", "nl2sql").unwrap();
        s.insert("translate sports meeting questions to SQL", "nl2sql").unwrap();
        s.insert("match customer entities by name and address", "er").unwrap();
        s
    }

    #[test]
    fn insert_and_similar() {
        let s = store();
        let hits = s.similar("how to turn concert questions into SQL", 2, None).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(hits[0].1.text.contains("concert"), "top hit: {}", hits[0].1.text);
    }

    #[test]
    fn task_filter_restricts() {
        let s = store();
        let hits = s.similar("match entities", 3, Some("er")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.task, "er");
    }

    #[test]
    fn rewards_update_utility() {
        let mut s = store();
        let id = s.iter().next().unwrap().id;
        assert_eq!(s.get(id).unwrap().utility(), 0.5);
        s.record_reward(id, 1.0);
        s.record_reward(id, 0.0);
        assert_eq!(s.get(id).unwrap().utility(), 0.5);
        s.record_reward(id, 1.0);
        assert!((s.get(id).unwrap().utility() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn worst_prefers_low_utility() {
        let mut s = store();
        let ids: Vec<u64> = s.iter().map(|r| r.id).collect();
        s.record_reward(ids[0], 1.0);
        s.record_reward(ids[1], 0.0);
        s.record_reward(ids[2], 1.0);
        assert_eq!(s.worst().unwrap().id, ids[1]);
    }

    #[test]
    fn remove_works() {
        let mut s = store();
        let id = s.iter().next().unwrap().id;
        s.remove(id).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.get(id).is_none());
        assert!(s.remove(id).is_err());
    }
}
