//! # llmdm-promptopt — historical prompt storage & selection (§III-A)
//!
//! "Considering prompts are typically represented as vectors, vector
//! databases are suitable for storing historical prompts for selection …
//! the vector with the highest similarity does not necessarily indicate
//! the optimal prompt for improving LLM performance. We may need to design
//! an indexing method to cater to the optimal prompt … we can incorporate
//! the performance of LLMs as a target for the learned index. Meanwhile,
//! determining which historical prompts should be stored within a limited
//! budget is also important. We envision that reinforcement learning
//! algorithms can be designed."
//!
//! This crate implements all three envisioned mechanisms:
//!
//! * [`store::PromptStore`] — historical prompts in the vector database,
//!   each carrying an online **utility** record (how much the prompt
//!   helped when used);
//! * [`select`] — selection strategies: pure similarity top-k (the common
//!   practice), **performance-aware** scoring (similarity × utility — the
//!   paper's "performance as a target"), and **bandit** selection
//!   (ε-greedy / UCB1) that learns which prompts help from reward
//!   feedback;
//! * [`synthesize`] — the *generate* step: compose new prompts from the
//!   selected historical ones (merged, utility-ranked, embedding-deduped
//!   example blocks);
//! * [`budget::BudgetedStore`] — a capacity-limited store whose admission
//!   and replacement decisions are made by the utility estimates
//!   (replace-worst with ε exploration), the paper's "most promising
//!   prompts within a limited budget".

#![warn(missing_docs)]

pub mod budget;
pub mod select;
pub mod store;
pub mod synthesize;

pub use budget::BudgetedStore;
pub use select::{BanditSelector, PerformanceAware, PromptSelector, SimilarityTopK};
pub use store::{PromptRecord, PromptStore};
pub use synthesize::{synthesize_prompt, SynthesisConfig, SynthesizedPrompt};
