//! Prompt selection strategies.
//!
//! The paper's key observation: "the vector with the highest similarity
//! does not necessarily indicate the optimal prompt for improving LLM
//! performance". [`SimilarityTopK`] is the common-practice baseline;
//! [`PerformanceAware`] folds the observed utility into the ranking (the
//! "learned index" target); [`BanditSelector`] treats candidate prompts as
//! arms and learns from reward feedback (ε-greedy or UCB1).

use llmdm_vecdb::VecDbError;
use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::{Rng, SeedableRng};

use crate::store::PromptStore;

/// A prompt-selection strategy.
pub trait PromptSelector {
    /// Pick up to `k` prompt ids for `query`.
    fn select(
        &mut self,
        store: &PromptStore,
        query: &str,
        k: usize,
    ) -> Result<Vec<u64>, VecDbError>;
}

/// Pure similarity top-k (the baseline).
#[derive(Debug, Default, Clone)]
pub struct SimilarityTopK;

impl PromptSelector for SimilarityTopK {
    fn select(
        &mut self,
        store: &PromptStore,
        query: &str,
        k: usize,
    ) -> Result<Vec<u64>, VecDbError> {
        Ok(store.similar(query, k, None)?.into_iter().map(|(_, r)| r.id).collect())
    }
}

/// Similarity × utility ranking: fetch a wider candidate set by
/// similarity, then re-rank by `sim.max(0)^alpha * utility`.
#[derive(Debug, Clone)]
pub struct PerformanceAware {
    /// Exponent on similarity (higher = trust similarity more).
    pub alpha: f64,
    /// Candidate over-fetch factor.
    pub overfetch: usize,
}

impl Default for PerformanceAware {
    fn default() -> Self {
        PerformanceAware { alpha: 1.0, overfetch: 4 }
    }
}

impl PromptSelector for PerformanceAware {
    fn select(
        &mut self,
        store: &PromptStore,
        query: &str,
        k: usize,
    ) -> Result<Vec<u64>, VecDbError> {
        let mut cands = store.similar(query, k * self.overfetch.max(1), None)?;
        cands.sort_by(|(sa, ra), (sb, rb)| {
            let score_a = (*sa as f64).max(0.0).powf(self.alpha) * ra.utility();
            let score_b = (*sb as f64).max(0.0).powf(self.alpha) * rb.utility();
            score_b.total_cmp(&score_a)
        });
        Ok(cands.into_iter().take(k).map(|(_, r)| r.id).collect())
    }
}

/// Bandit algorithms for reward-driven selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BanditKind {
    /// ε-greedy: explore a random candidate with probability ε.
    EpsilonGreedy {
        /// Exploration probability.
        epsilon: f64,
    },
    /// UCB1 over mean utility with exploration bonus.
    Ucb1 {
        /// Exploration coefficient (√(c·ln T / n)).
        c: f64,
    },
}

/// Bandit prompt selector: candidate arms come from a similarity
/// pre-filter; the arm score mixes observed utility with exploration.
#[derive(Debug)]
pub struct BanditSelector {
    kind: BanditKind,
    rng: SmallRng,
    /// Total pulls (the bandit's T).
    t: u64,
    /// Candidate pool width.
    pub overfetch: usize,
}

impl BanditSelector {
    /// Create a selector.
    pub fn new(kind: BanditKind, seed: u64) -> Self {
        BanditSelector { kind, rng: SmallRng::seed_from_u64(seed), t: 0, overfetch: 4 }
    }
}

impl PromptSelector for BanditSelector {
    fn select(
        &mut self,
        store: &PromptStore,
        query: &str,
        k: usize,
    ) -> Result<Vec<u64>, VecDbError> {
        let cands = store.similar(query, k * self.overfetch.max(1), None)?;
        if cands.is_empty() {
            return Ok(Vec::new());
        }
        self.t += 1;
        match self.kind {
            BanditKind::EpsilonGreedy { epsilon } => {
                let mut ranked: Vec<(f64, u64)> = cands
                    .iter()
                    .map(|(s, r)| ((*s as f64).max(0.0) * r.utility(), r.id))
                    .collect();
                ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
                let mut picked: Vec<u64> = ranked.iter().take(k).map(|(_, id)| *id).collect();
                if self.rng.gen_bool(epsilon.clamp(0.0, 1.0)) && cands.len() > k {
                    // Swap the last exploit pick for a random explore pick.
                    let explore = cands[self.rng.gen_range(0..cands.len())].1.id;
                    if !picked.contains(&explore) {
                        if let Some(last) = picked.last_mut() {
                            *last = explore;
                        }
                    }
                }
                Ok(picked)
            }
            BanditKind::Ucb1 { c } => {
                let ln_t = (self.t as f64).ln().max(0.0);
                let mut ranked: Vec<(f64, u64)> = cands
                    .iter()
                    .map(|(s, r)| {
                        let bonus = if r.uses == 0 {
                            f64::INFINITY // pull every arm once
                        } else {
                            (c * ln_t / r.uses as f64).sqrt()
                        };
                        ((*s as f64).max(0.0) * (r.utility() + bonus), r.id)
                    })
                    .collect();
                ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
                Ok(ranked.into_iter().take(k).map(|(_, id)| id).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A store where the most similar prompt is known-bad and a slightly
    /// less similar prompt is known-good.
    fn poisoned_store() -> (PromptStore, u64, u64) {
        let mut s = PromptStore::new(2);
        let bad = s
            .insert("translate stadium concert questions into SQL queries quickly", "nl2sql")
            .unwrap();
        let good = s
            .insert("translate stadium concert questions into SQL", "nl2sql")
            .unwrap();
        // The bad prompt has been tried and failed; the good one succeeded.
        for _ in 0..10 {
            s.record_reward(bad, 0.0);
            s.record_reward(good, 1.0);
        }
        (s, bad, good)
    }

    #[test]
    fn performance_aware_overrides_raw_similarity() {
        let (s, bad, good) = poisoned_store();
        let query = "translate stadium concert questions into SQL queries quickly please";
        // Sanity: pure similarity prefers the bad (more similar) prompt.
        let mut sim = SimilarityTopK;
        let picked = sim.select(&s, query, 1).unwrap();
        assert_eq!(picked, vec![bad]);
        // Performance-aware picks the good one.
        let mut pa = PerformanceAware::default();
        let picked = pa.select(&s, query, 1).unwrap();
        assert_eq!(picked, vec![good]);
    }

    #[test]
    fn bandit_learns_good_arm() {
        let mut s = PromptStore::new(3);
        let a = s.insert("sql example alpha for concerts", "nl2sql").unwrap();
        let b = s.insert("sql example bravo for concerts", "nl2sql").unwrap();
        let mut bandit = BanditSelector::new(BanditKind::Ucb1 { c: 2.0 }, 7);
        // Simulate: arm `a` always rewards, arm `b` never does.
        for _ in 0..60 {
            let picked = bandit.select(&s, "concert sql examples", 1).unwrap();
            let id = picked[0];
            s.record_reward(id, if id == a { 1.0 } else { 0.0 });
        }
        let pulls_a = s.get(a).unwrap().uses;
        let pulls_b = s.get(b).unwrap().uses;
        assert!(pulls_a > pulls_b * 2, "a={pulls_a} b={pulls_b}");
    }

    #[test]
    fn epsilon_greedy_explores() {
        let (s, _bad, _good) = poisoned_store();
        let mut e = BanditSelector::new(BanditKind::EpsilonGreedy { epsilon: 1.0 }, 11);
        // With ε = 1 the last slot is always a random candidate — just
        // assert it returns something valid and never panics.
        for _ in 0..20 {
            let picked = e.select(&s, "translate concert questions", 1).unwrap();
            assert_eq!(picked.len(), 1);
        }
    }

    #[test]
    fn empty_store_returns_empty() {
        let s = PromptStore::new(4);
        let mut sim = SimilarityTopK;
        assert!(sim.select(&s, "anything", 3).unwrap().is_empty());
        let mut ucb = BanditSelector::new(BanditKind::Ucb1 { c: 2.0 }, 1);
        assert!(ucb.select(&s, "anything", 3).unwrap().is_empty());
    }
}
