//! Budget-constrained prompt storage (§III-A: "determining which
//! historical prompts should be stored within a limited budget").
//!
//! [`BudgetedStore`] keeps at most `capacity` prompts. Admission of a new
//! candidate is a replace-worst decision driven by utility estimates, with
//! ε exploration so that unproven candidates still get a chance — the
//! reinforcement-learning flavour the paper envisions.

use llmdm_vecdb::VecDbError;
use llmdm_rt::rand::rngs::SmallRng;
use llmdm_rt::rand::{Rng, SeedableRng};

use crate::store::PromptStore;

/// A capacity-limited prompt store with learned admission.
#[derive(Debug)]
pub struct BudgetedStore {
    store: PromptStore,
    capacity: usize,
    epsilon: f64,
    rng: SmallRng,
    admitted: u64,
    rejected: u64,
}

impl BudgetedStore {
    /// Create a budgeted store.
    pub fn new(capacity: usize, epsilon: f64, seed: u64) -> Self {
        BudgetedStore {
            store: PromptStore::new(seed),
            capacity: capacity.max(1),
            epsilon: epsilon.clamp(0.0, 1.0),
            rng: SmallRng::seed_from_u64(seed ^ 0xb4d6e7),
            admitted: 0,
            rejected: 0,
        }
    }

    /// The underlying store (selection, rewards).
    pub fn store(&self) -> &PromptStore {
        &self.store
    }

    /// Mutable access for reward recording.
    pub fn store_mut(&mut self) -> &mut PromptStore {
        &mut self.store
    }

    /// Admission counters `(admitted, rejected)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.admitted, self.rejected)
    }

    /// Offer a candidate prompt with a prior utility estimate in `[0, 1]`
    /// (e.g. from offline evaluation, or 0.5 when unknown). Returns the id
    /// if admitted.
    pub fn offer(
        &mut self,
        text: &str,
        task: &str,
        prior_utility: f64,
    ) -> Result<Option<u64>, VecDbError> {
        if self.store.len() < self.capacity {
            self.admitted += 1;
            return self.store.insert(text, task).map(Some);
        }
        let explore = self.rng.gen_bool(self.epsilon);
        let worst = self.store.worst().map(|r| (r.id, r.utility()));
        let Some((worst_id, worst_utility)) = worst else {
            self.admitted += 1;
            return self.store.insert(text, task).map(Some);
        };
        if explore || prior_utility > worst_utility {
            self.store.remove(worst_id)?;
            self.admitted += 1;
            self.store.insert(text, task).map(Some)
        } else {
            self.rejected += 1;
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_capacity_unconditionally() {
        let mut b = BudgetedStore::new(3, 0.0, 1);
        for i in 0..3 {
            assert!(b.offer(&format!("prompt number {i}"), "t", 0.0).unwrap().is_some());
        }
        assert_eq!(b.store().len(), 3);
    }

    #[test]
    fn replaces_worst_when_candidate_is_better() {
        let mut b = BudgetedStore::new(2, 0.0, 1);
        let a = b.offer("prompt alpha words", "t", 0.5).unwrap().unwrap();
        let c = b.offer("prompt charlie words", "t", 0.5).unwrap().unwrap();
        // Make `a` good and `c` bad.
        for _ in 0..5 {
            b.store_mut().record_reward(a, 1.0);
            b.store_mut().record_reward(c, 0.0);
        }
        // A strong candidate displaces `c`.
        let d = b.offer("prompt delta words", "t", 0.9).unwrap();
        assert!(d.is_some());
        assert_eq!(b.store().len(), 2);
        assert!(b.store().get(a).is_some(), "good prompt kept");
        assert!(b.store().get(c).is_none(), "bad prompt evicted");
    }

    #[test]
    fn rejects_weak_candidates_when_full() {
        let mut b = BudgetedStore::new(1, 0.0, 1);
        let a = b.offer("prompt alpha words", "t", 0.5).unwrap().unwrap();
        for _ in 0..5 {
            b.store_mut().record_reward(a, 1.0);
        }
        let r = b.offer("prompt weak words", "t", 0.1).unwrap();
        assert!(r.is_none());
        assert_eq!(b.counters().1, 1);
    }

    #[test]
    fn epsilon_one_always_explores() {
        let mut b = BudgetedStore::new(1, 1.0, 9);
        let a = b.offer("prompt alpha words", "t", 0.5).unwrap().unwrap();
        for _ in 0..5 {
            b.store_mut().record_reward(a, 1.0);
        }
        // Even a bad candidate gets in when exploring.
        let r = b.offer("prompt weak words", "t", 0.0).unwrap();
        assert!(r.is_some());
        assert!(b.store().get(a).is_none());
    }
}
