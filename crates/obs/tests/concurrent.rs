//! Concurrent-recording stress test: N threads open nested spans and
//! bump counters/histograms simultaneously. Asserts no poisoned locks,
//! stable aggregate counts, and that span parentage stays thread-local
//! (a span's parent is always a span from the same thread).

use std::collections::BTreeMap;

use llmdm_obs::Recorder;

const THREADS: usize = 8;
const ITERS: usize = 200;

#[test]
fn concurrent_spans_and_metrics_stay_consistent() {
    let r = Recorder::new();
    r.enable();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let r = &r;
            s.spawn(move || {
                for i in 0..ITERS {
                    let mut outer = r.span("stress.outer");
                    outer.field("thread", t as u64);
                    {
                        let mut inner = r.span("stress.inner");
                        inner.field("i", i as u64);
                        {
                            let _leaf = r.span("stress.leaf");
                        }
                    }
                    r.counter_add("stress.iterations", 1.0);
                    r.observe("stress.value", (i + 1) as f64);
                }
            });
        }
    });

    let rep = r.snapshot();

    // Aggregate counts are exact: no lost updates, no poison.
    let expected = (THREADS * ITERS) as u64;
    assert_eq!(r.counter_value("stress.iterations"), expected as f64);
    assert_eq!(rep.histograms["stress.value"].count, expected);
    assert_eq!(rep.spans.len(), 3 * expected as usize, "3 spans per iteration");
    for name in ["stress.outer", "stress.inner", "stress.leaf"] {
        assert_eq!(
            rep.spans.iter().filter(|s| s.name == name).count(),
            expected as usize,
            "{name} count"
        );
    }

    // Parentage stays thread-local: every child's parent lives on the
    // same thread ordinal, and nesting depth matches the span name.
    let by_id: BTreeMap<u64, &llmdm_obs::SpanRecord> =
        rep.spans.iter().map(|s| (s.id, s)).collect();
    for s in &rep.spans {
        match s.name.as_str() {
            "stress.outer" => assert_eq!(s.parent, None, "outer spans are roots"),
            "stress.inner" | "stress.leaf" => {
                let parent_id = s.parent.unwrap_or_else(|| panic!("{} must have a parent", s.name));
                let parent = by_id[&parent_id];
                assert_eq!(
                    parent.thread, s.thread,
                    "parent of a {} span must be on the same thread",
                    s.name
                );
                let expected_parent =
                    if s.name == "stress.inner" { "stress.outer" } else { "stress.inner" };
                assert_eq!(parent.name, expected_parent);
            }
            other => panic!("unexpected span {other}"),
        }
    }

    // Span ids are unique.
    assert_eq!(by_id.len(), rep.spans.len());

    // The recorder survives a panicking thread without poisoning: a
    // panic while a span guard is live must not wedge later recording.
    let result = std::thread::scope(|s| {
        s.spawn(|| {
            let _open = r.span("stress.panicking");
            panic!("deliberate panic with open span");
        })
        .join()
    });
    assert!(result.is_err(), "thread panicked as intended");
    r.counter_add("stress.after_panic", 1.0);
    assert_eq!(r.counter_value("stress.after_panic"), 1.0, "no poisoned lock");
    let _post = r.span("stress.post_panic");
    assert!(r.snapshot().spans.iter().any(|s| s.name == "stress.panicking"));
}

#[test]
fn quantiles_are_stable_under_concurrency() {
    let r = Recorder::new();
    r.enable();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let r = &r;
            s.spawn(move || {
                for i in 1..=1000u64 {
                    r.observe("stress.latency", i as f64);
                }
            });
        }
    });
    let h = &r.snapshot().histograms["stress.latency"];
    assert_eq!(h.count, 4000);
    assert_eq!(h.min, 1.0);
    assert_eq!(h.max, 1000.0);
    // Identical distribution per thread → p50 near 500 (±20% bucket error).
    assert!((h.p50 / 500.0 - 1.0).abs() < 0.25, "p50={}", h.p50);
    assert!(h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max);
}
