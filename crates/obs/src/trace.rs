//! Request-scoped trace contexts: cross-thread span parentage.
//!
//! The recorder's span parentage is thread-local by design (a span opened
//! on thread T is a child of the innermost span open *on T*). That is the
//! right default for single-threaded pipelines, but the serving layer
//! hands one request across at least two threads — admitted on the
//! caller's thread, executed on a worker — and without help the request's
//! trace shatters into per-thread fragments.
//!
//! A [`TraceContext`] is the help: a `(trace id, parent span id)` pair
//! captured where the request enters the system, carried through queues
//! as plain data (it is `Copy`), and *adopted* on whatever thread ends up
//! doing the work via the RAII [`TraceContext::attach`] guard. While the
//! guard lives, every span opened on that thread
//!
//! 1. is stamped with the context's trace id, and
//! 2. parents to the context's span — even though that span was opened
//!    (and possibly already closed) on a different thread.
//!
//! Trace ids are plain `u64`s; `0` means "no trace". Producers that need
//! deterministic ids (the serving layer derives them from its seed via
//! SplitMix64, so a request's trace id is byte-stable across worker
//! counts) use [`TraceContext::derive`].
//!
//! Reassembly lives on [`crate::Report`]: [`crate::Report::trace_ids`],
//! [`crate::Report::trace_tree`], and [`crate::Report::render_trace`]
//! stitch the per-thread span logs back into one flame tree per request.

use std::cell::Cell;

use crate::recorder;

thread_local! {
    /// The trace id stamped on spans opened on this thread (0 = none).
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// The trace id currently attached to this thread (0 = none).
pub fn current_trace_id() -> u64 {
    CURRENT_TRACE.with(|c| c.get())
}

/// SplitMix64 — the workspace-standard seeded mixer (same constants as
/// the serving layer's stream ids), so trace ids derived from a seed are
/// byte-stable across processes, runs, and worker counts.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A request-scoped trace context: which trace spans belong to, and which
/// span they should parent to when the context is attached on another
/// thread. `Copy`, 16 bytes — designed to ride inside queued jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceContext {
    /// The trace id (0 = no trace; spans are stamped with this value).
    pub trace_id: u64,
    /// Span id adopted as the parent for spans opened under
    /// [`TraceContext::attach`] (0 = keep the thread's own parentage).
    pub parent_span: u64,
}

impl TraceContext {
    /// The inert context: attaching it clears the thread's trace.
    pub const NONE: TraceContext = TraceContext { trace_id: 0, parent_span: 0 };

    /// A root context for `trace_id` with no parent span yet.
    pub fn root(trace_id: u64) -> TraceContext {
        TraceContext { trace_id, parent_span: 0 }
    }

    /// Deterministically derive a root context for request number
    /// `request` under `seed` (SplitMix64, like the serving layer's
    /// stream ids — in fact equal to them unless the mix lands on 0,
    /// which is reserved for "no trace").
    pub fn derive(seed: u64, request: u64) -> TraceContext {
        TraceContext::root(mix64(seed ^ mix64(request)).max(1))
    }

    /// Whether this context carries a real trace id.
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }

    /// This context, re-rooted at `span` (typically a span opened while
    /// the context was attached, so later threads parent beneath it).
    /// An inert span (disabled recorder) leaves the parent unchanged.
    pub fn at(&self, span: &crate::Span<'_>) -> TraceContext {
        TraceContext { trace_id: self.trace_id, parent_span: span.id().unwrap_or(self.parent_span) }
    }

    /// Snapshot this thread's current trace id and innermost open span —
    /// the context to hand to a helper thread so its spans land in the
    /// same tree.
    pub fn capture() -> TraceContext {
        TraceContext { trace_id: current_trace_id(), parent_span: recorder::current_span_id() }
    }

    /// Adopt this context on the current thread. While the returned guard
    /// lives, spans opened on this thread are stamped with `trace_id` and
    /// (when `parent_span != 0`) parent to `parent_span`. Both
    /// thread-locals are restored on drop, so attaches nest correctly.
    ///
    /// Cost: two `Cell` swaps — safe on the disabled-recorder fast path.
    #[must_use = "the context detaches when the guard drops; binding to `_` drops immediately"]
    pub fn attach(&self) -> TraceGuard {
        let prev_trace = CURRENT_TRACE.with(|c| c.replace(self.trace_id));
        let prev_span = if self.parent_span != 0 {
            Some(recorder::set_current_span(self.parent_span))
        } else {
            None
        };
        TraceGuard { prev_trace, prev_span }
    }
}

/// RAII guard for an attached [`TraceContext`]; restores the thread's
/// previous trace id and span parentage on drop.
#[derive(Debug)]
pub struct TraceGuard {
    prev_trace: u64,
    prev_span: Option<u64>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev_trace));
        if let Some(prev) = self.prev_span {
            recorder::set_current_span(prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn derive_is_stable_and_nonzero() {
        assert_eq!(TraceContext::derive(42, 7), TraceContext::derive(42, 7));
        assert_ne!(TraceContext::derive(42, 7), TraceContext::derive(42, 8));
        assert_ne!(TraceContext::derive(42, 7), TraceContext::derive(43, 7));
        for i in 0..1000 {
            assert!(TraceContext::derive(0, i).is_active());
        }
    }

    #[test]
    fn attach_stamps_trace_and_restores() {
        let r = Recorder::new();
        r.enable();
        let ctx = TraceContext::root(0xABCD);
        {
            let _g = ctx.attach();
            assert_eq!(current_trace_id(), 0xABCD);
            let _s = r.span("in.trace");
        }
        assert_eq!(current_trace_id(), 0);
        {
            let _s = r.span("out.of.trace");
        }
        let rep = r.snapshot();
        let inside = rep.spans.iter().find(|s| s.name == "in.trace").unwrap();
        let outside = rep.spans.iter().find(|s| s.name == "out.of.trace").unwrap();
        assert_eq!(inside.trace, 0xABCD);
        assert_eq!(outside.trace, 0);
    }

    #[test]
    fn cross_thread_parentage_stitches() {
        let r = Recorder::new();
        r.enable();
        let ctx = {
            let root = r.span("req.root");
            let ctx = TraceContext::root(77).at(&root);
            assert!(ctx.parent_span != 0);
            ctx
        };
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = ctx.attach();
                let _child = r.span("req.work");
            });
        });
        let rep = r.snapshot();
        let root = rep.spans.iter().find(|s| s.name == "req.root").unwrap();
        let child = rep.spans.iter().find(|s| s.name == "req.work").unwrap();
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(child.trace, 77);
        assert_ne!(child.thread, root.thread);
    }

    #[test]
    fn attaches_nest_and_restore() {
        let outer = TraceContext::root(1);
        let inner = TraceContext { trace_id: 2, parent_span: 99 };
        let _g1 = outer.attach();
        assert_eq!(current_trace_id(), 1);
        {
            let _g2 = inner.attach();
            assert_eq!(current_trace_id(), 2);
            assert_eq!(recorder::current_span_id(), 99);
        }
        assert_eq!(current_trace_id(), 1);
        assert_eq!(recorder::current_span_id(), 0);
    }

    #[test]
    fn capture_sees_attached_context() {
        let r = Recorder::new();
        r.enable();
        let ctx = TraceContext::root(5);
        let _g = ctx.attach();
        let span = r.span("cap.here");
        let snap = TraceContext::capture();
        assert_eq!(snap.trace_id, 5);
        assert_eq!(Some(snap.parent_span), span.id());
        drop(span);
    }
}
