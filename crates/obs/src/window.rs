//! Windowed telemetry: fixed-memory rings of time-bucketed histograms
//! and counters.
//!
//! Plain [`crate::Histogram`]s accumulate forever — perfect for a bench
//! report, useless for an SLO ("p99 over the last 4 seconds, per tenant
//! class"). A [`Window`] is the rolling complement: a ring of `nbuckets`
//! slots, each covering `bucket_ms` of time and holding one log-scale
//! histogram plus one counter sum. Recording hits exactly one slot;
//! when the ring wraps, the slot whose time bucket expired is reset in
//! place, so memory is fixed no matter how long the process runs.
//!
//! [`Window::summary`] merges the live slots (those still inside the
//! `nbuckets × bucket_ms` horizon) into rolling count/p50/p95/p99/max
//! figures plus the per-bucket series — the substrate a QoS layer reads
//! to make shed/route decisions and what the `WINDOW_*.json` exporter
//! ([`crate::Report::write_window`]) serializes.
//!
//! Windows are registered per `(metric name, class label)` on a
//! [`crate::Recorder`] (see [`crate::window`]); the *class* dimension is
//! how per-tenant / per-model-tier aggregation stays one map lookup away
//! from the flat metric namespace. The handle returned by
//! [`crate::Recorder::window`] records without touching the registry, so
//! hot paths pay roughly what a plain [`crate::observe`] pays — pinned by
//! the `obs_window` bench.
//!
//! Time is the recorder's monotonic epoch clock, sampled on an amortized
//! schedule ([`crate::Recorder`] re-reads `Instant::now` every few dozen
//! records); tests drive the pure `*_at` methods with explicit
//! timestamps instead.

use crate::hist::{Histogram, HistogramSummary};

/// Ring geometry for windowed metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one time bucket in milliseconds (clamped to ≥ 1).
    pub bucket_ms: u64,
    /// Number of ring slots == how many buckets the rolling horizon
    /// spans (clamped to ≥ 1).
    pub nbuckets: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        // 8 × 500 ms = a 4-second rolling horizon: long enough to smooth
        // a micro-batch burst, short enough that shed decisions react.
        WindowConfig { bucket_ms: 500, nbuckets: 8 }
    }
}

/// One ring slot: the absolute time bucket it currently holds, plus that
/// bucket's histogram and counter sum.
#[derive(Debug, Clone)]
struct Slot {
    /// Absolute bucket index (`now_ms / bucket_ms`); `u64::MAX` = never
    /// written.
    bucket: u64,
    hist: Histogram,
    sum: f64,
}

impl Slot {
    fn new() -> Slot {
        Slot { bucket: u64::MAX, hist: Histogram::new(), sum: 0.0 }
    }

    /// Re-point this slot at absolute bucket `b`, clearing its contents
    /// in place (no reallocation — the fixed-memory contract).
    fn rotate_to(&mut self, b: u64) {
        self.bucket = b;
        self.hist.reset();
        self.sum = 0.0;
    }
}

/// A fixed-memory rolling window of time-bucketed observations.
#[derive(Debug, Clone)]
pub struct Window {
    bucket_ms: u64,
    slots: Vec<Slot>,
}

impl Window {
    /// An empty window with the given ring geometry.
    pub fn new(config: WindowConfig) -> Window {
        Window {
            bucket_ms: config.bucket_ms.max(1),
            slots: vec![Slot::new(); config.nbuckets.max(1)],
        }
    }

    /// Width of one bucket in milliseconds.
    pub fn bucket_ms(&self) -> u64 {
        self.bucket_ms
    }

    /// Number of ring slots.
    pub fn nbuckets(&self) -> usize {
        self.slots.len()
    }

    fn slot_for(&mut self, now_ms: u64) -> &mut Slot {
        let b = now_ms / self.bucket_ms;
        let n = self.slots.len() as u64;
        let slot = &mut self.slots[(b % n) as usize];
        if slot.bucket != b {
            slot.rotate_to(b);
        }
        slot
    }

    /// Record one histogram observation at time `now_ms`.
    pub fn record_at(&mut self, now_ms: u64, value: f64) {
        self.slot_for(now_ms).hist.record(value);
    }

    /// Add `delta` to the window's counter at time `now_ms`.
    pub fn add_at(&mut self, now_ms: u64, delta: f64) {
        self.slot_for(now_ms).sum += delta;
    }

    /// Merge the live buckets (those within the rolling horizon ending at
    /// `now_ms`) into one summary. Slots older than the horizon are
    /// ignored even if they have not been overwritten yet.
    pub fn summary(&self, now_ms: u64) -> WindowSummary {
        let b = now_ms / self.bucket_ms;
        let oldest = b.saturating_sub(self.slots.len() as u64 - 1);
        let mut merged = Histogram::new();
        let mut counter = 0.0;
        let mut series: Vec<WindowBucket> = Vec::new();
        for slot in &self.slots {
            if slot.bucket == u64::MAX || slot.bucket < oldest || slot.bucket > b {
                continue;
            }
            merged.merge(&slot.hist);
            counter += slot.sum;
            series.push(WindowBucket {
                bucket: slot.bucket,
                start_ms: slot.bucket * self.bucket_ms,
                count: slot.hist.count(),
                sum: slot.sum,
            });
        }
        series.sort_by_key(|s| s.bucket);
        WindowSummary { hist: merged.summary(), counter, series }
    }
}

/// One live bucket of a [`WindowSummary`]'s series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowBucket {
    /// Absolute bucket index (`start_ms / bucket_ms`).
    pub bucket: u64,
    /// Bucket start offset from the recorder epoch, in milliseconds.
    pub start_ms: u64,
    /// Histogram observations recorded in this bucket.
    pub count: u64,
    /// Counter sum accumulated in this bucket.
    pub sum: f64,
}

/// Rolling figures for one window at one point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummary {
    /// Merged histogram statistics over the live buckets.
    pub hist: HistogramSummary,
    /// Counter sum over the live buckets.
    pub counter: f64,
    /// The live buckets, oldest first.
    pub series: Vec<WindowBucket>,
}

impl WindowSummary {
    /// Whether anything landed in the window's live horizon.
    pub fn is_empty(&self) -> bool {
        self.hist.count == 0 && self.counter == 0.0 && self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bucket_ms: u64, nbuckets: usize) -> WindowConfig {
        WindowConfig { bucket_ms, nbuckets }
    }

    #[test]
    fn records_land_in_time_buckets() {
        let mut w = Window::new(cfg(100, 4));
        w.record_at(10, 5.0);
        w.record_at(110, 7.0);
        w.record_at(120, 9.0);
        let s = w.summary(150);
        assert_eq!(s.hist.count, 3);
        assert_eq!(s.series.len(), 2);
        assert_eq!(s.series[0].count, 1);
        assert_eq!(s.series[1].count, 2);
        assert_eq!(s.hist.max, 9.0);
    }

    #[test]
    fn old_buckets_age_out_of_the_summary() {
        let mut w = Window::new(cfg(100, 4));
        w.record_at(0, 1000.0);
        // Horizon at t=450 is buckets 1..=4; bucket 0 is stale even
        // though its slot has not been overwritten.
        let s = w.summary(450);
        assert_eq!(s.hist.count, 0);
        assert!(s.is_empty());
        // At t=350 bucket 0 is the oldest live bucket.
        let s = w.summary(350);
        assert_eq!(s.hist.count, 1);
    }

    #[test]
    fn ring_reuses_slots_in_place() {
        let mut w = Window::new(cfg(100, 2));
        w.record_at(0, 1.0); // bucket 0 → slot 0
        w.record_at(100, 2.0); // bucket 1 → slot 1
        w.record_at(200, 4.0); // bucket 2 → slot 0 again (bucket 0 evicted)
        assert_eq!(w.nbuckets(), 2);
        let s = w.summary(250);
        assert_eq!(s.hist.count, 2);
        assert_eq!(s.hist.max, 4.0);
        assert_eq!(s.series.iter().map(|b| b.bucket).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn counters_accumulate_per_bucket() {
        let mut w = Window::new(cfg(50, 4));
        w.add_at(0, 0.25);
        w.add_at(10, 0.25);
        w.add_at(60, 1.0);
        let s = w.summary(99);
        assert_eq!(s.counter, 1.5);
        assert_eq!(s.series.len(), 2);
        assert_eq!(s.series[0].sum, 0.5);
        assert_eq!(s.series[1].sum, 1.0);
        // After the first bucket ages out only the second remains.
        let s = w.summary(220);
        assert_eq!(s.counter, 1.0);
    }

    #[test]
    fn rolling_quantiles_track_recent_load() {
        let mut w = Window::new(cfg(100, 4));
        for i in 0..50 {
            w.record_at(i, 10.0);
        }
        for i in 0..50 {
            w.record_at(200 + i, 1000.0);
        }
        // With both buckets live, p99 sees the slow tail.
        let s = w.summary(250);
        assert!(s.hist.p99 > 500.0, "p99={}", s.hist.p99);
        // Once the fast bucket ages out (horizon at t=550 is buckets
        // 2..=5), p50 jumps to the slow regime.
        let s = w.summary(550);
        assert_eq!(s.hist.count, 50);
        assert!(s.hist.p50 > 500.0, "p50={}", s.hist.p50);
    }

    #[test]
    fn empty_window_is_empty() {
        let w = Window::new(WindowConfig::default());
        assert!(w.summary(0).is_empty());
        assert!(w.summary(u64::MAX / 2).is_empty());
    }
}
