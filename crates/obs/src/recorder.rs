//! The thread-safe recorder: span collection + metric registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::export::Report;
use crate::hist::Histogram;
use crate::window::{Window, WindowConfig, WindowSummary};

/// A typed span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string field (e.g. `model=sim-large`, `cache=hit`).
    Str(String),
    /// An unsigned integer field (e.g. `tokens_in=214`).
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A float field (e.g. `cost_usd=0.0123`).
    F64(f64),
    /// A boolean field (e.g. `accepted=true`).
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(v as f64)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::Str(s) => f.write_str(s),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => {
                if v.abs() < 0.01 && *v != 0.0 {
                    write!(f, "{v:.5}")
                } else {
                    write!(f, "{v:.3}")
                }
            }
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id (monotone per recorder, starts at 1).
    pub id: u64,
    /// Parent span id, if this span was opened while another span was
    /// open on the same thread — or while a [`crate::TraceContext`] with
    /// a parent span was attached (cross-thread parentage).
    pub parent: Option<u64>,
    /// Trace id stamped from the attached [`crate::TraceContext`]
    /// (0 = the span belongs to no request-scoped trace).
    pub trace: u64,
    /// Ordinal of the opening thread (stable within a process).
    pub thread: u64,
    /// Span name (`crate.subsystem.op`).
    pub name: String,
    /// Start offset from the recorder's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Key/value fields in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

struct State {
    spans: Vec<SpanRecord>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    /// Windowed metrics: metric name → class label → window. Behind
    /// `Arc<Mutex<_>>` so a [`WindowHandle`] can record without touching
    /// this registry (one map lookup at handle creation, never per call).
    windows: BTreeMap<String, BTreeMap<String, Arc<Mutex<Window>>>>,
    window_config: WindowConfig,
}

/// Number of independent counter locks. Counters are the hottest metric
/// under the concurrent serving layer (every worker bumps
/// `model.calls`/`serve.*` per request), so they live outside the main
/// state mutex in hash-striped shards: two workers bumping different
/// counters never contend, and bumping the *same* counter contends only
/// on its own stripe, not on span collection.
const COUNTER_STRIPES: usize = 8;

fn counter_stripe(name: &str) -> usize {
    // FNV-1a over the name; stable across runs so tests can reason
    // about striping.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % COUNTER_STRIPES as u64) as usize
}

/// A thread-safe span + metric recorder.
///
/// Prefer the crate-level free functions (which use the process-wide
/// [`crate::global`] recorder); construct your own instance only for
/// isolation (tests, nested tooling).
pub struct Recorder {
    enabled: AtomicBool,
    next_id: AtomicU64,
    epoch: Instant,
    state: Mutex<State>,
    counters: [Mutex<BTreeMap<String, f64>>; COUNTER_STRIPES],
    /// Amortized millisecond clock for windowed metrics: `Instant::now`
    /// is re-sampled only every [`CLOCK_SAMPLE_INTERVAL`] per-thread
    /// ticks (see [`CLOCK_TICKS`]); in between, window records reuse the
    /// cached value. Bucket widths are hundreds of milliseconds, so the
    /// staleness is invisible — and the hot path pays a `Cell` bump and
    /// one relaxed load instead of a syscall-backed clock read.
    clock_ms: AtomicU64,
}

/// How many `now_ms` ticks reuse the cached clock before re-sampling
/// `Instant::now`.
const CLOCK_SAMPLE_INTERVAL: u64 = 32;

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.is_enabled()).finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// Innermost open span id on this thread (0 = none). Shared across
    /// recorder instances: interleaving spans of *different* recorders on
    /// one thread is unsupported (parentage would cross recorders).
    static CURRENT_SPAN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    /// Per-thread tick counter for the amortized window clock: a plain
    /// `Cell` bump instead of a shared atomic RMW, so windowed recording
    /// on N threads never bounces a cache line just to count calls.
    /// Shared across recorder instances (it only paces *when* each
    /// recorder re-samples `Instant::now`, never what it reads).
    static CLOCK_TICKS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static THREAD_ORD: u64 = {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
        NEXT_THREAD.fetch_add(1, Ordering::Relaxed)
    };
}

fn thread_ord() -> u64 {
    THREAD_ORD.with(|t| *t)
}

/// This thread's innermost open span id (0 = none). Used by
/// [`crate::TraceContext::capture`] to snapshot a parent for helper
/// threads.
pub(crate) fn current_span_id() -> u64 {
    CURRENT_SPAN.with(|c| c.get())
}

/// Overwrite this thread's parent-span pointer, returning the previous
/// value. The cross-thread half of [`crate::TraceContext::attach`]: spans
/// opened afterwards parent to `id` even though it was opened on another
/// thread. Callers must restore the returned value (the trace guard does).
pub(crate) fn set_current_span(id: u64) -> u64 {
    CURRENT_SPAN.with(|c| c.replace(id))
}

impl Recorder {
    /// A fresh, **disabled** recorder.
    pub fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            state: Mutex::new(State {
                spans: Vec::new(),
                gauges: BTreeMap::new(),
                hists: BTreeMap::new(),
                windows: BTreeMap::new(),
                window_config: WindowConfig::default(),
            }),
            counters: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            clock_ms: AtomicU64::new(0),
        }
    }

    /// Start recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording (already-open spans still record on drop).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether the recorder is currently recording. This is the one
    /// atomic load every disabled-path entry point pays.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Lock the state, recovering from poison (a panicking span drop
    /// leaves the collections merely stale, never structurally broken).
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Clear all recorded data; keeps the enabled/disabled state.
    /// [`WindowHandle`]s created before the reset keep recording into
    /// their detached windows, which no longer appear in snapshots —
    /// re-create handles after a reset.
    pub fn reset(&self) {
        let mut s = self.lock();
        s.spans.clear();
        s.gauges.clear();
        s.hists.clear();
        s.windows.clear();
        drop(s);
        for stripe in &self.counters {
            stripe.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Open a span. No-op (one atomic load) when disabled.
    #[must_use = "a span records when its guard drops; binding to `_` drops immediately"]
    pub fn span<'r>(&'r self, name: &str) -> Span<'r> {
        if !self.is_enabled() {
            return Span { recorder: self, inner: None };
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT_SPAN.with(|c| {
            let p = c.get();
            c.set(id);
            p
        });
        Span {
            recorder: self,
            inner: Some(OpenSpan {
                id,
                parent: if parent == 0 { None } else { Some(parent) },
                trace: crate::trace::current_trace_id(),
                name: name.to_string(),
                start: Instant::now(),
                fields: Vec::new(),
            }),
        }
    }

    /// Add `delta` to the monotonic counter `name`. Safe (and cheap)
    /// under concurrent increment: only the counter's own stripe is
    /// locked, never the span/gauge/histogram state.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut stripe =
            self.counters[counter_stripe(name)].lock().unwrap_or_else(|e| e.into_inner());
        match stripe.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                stripe.insert(name.to_string(), delta);
            }
        }
    }

    /// Current counter value (0.0 if never bumped).
    pub fn counter_value(&self, name: &str) -> f64 {
        self.counters[counter_stripe(name)]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .copied()
            .unwrap_or(0.0)
    }

    /// Merge every stripe into one sorted map (snapshot order is
    /// identical to the pre-striping single-map layout).
    fn merged_counters(&self) -> BTreeMap<String, f64> {
        let mut merged = BTreeMap::new();
        for stripe in &self.counters {
            for (k, v) in stripe.lock().unwrap_or_else(|e| e.into_inner()).iter() {
                merged.insert(k.clone(), *v);
            }
        }
        merged
    }

    /// Set gauge `name` to `value`.
    #[inline]
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Record one observation into log-scale histogram `name`.
    #[inline]
    pub fn observe(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut s = self.lock();
        match s.hists.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                s.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Milliseconds since the recorder's epoch, on the amortized clock
    /// (exact every [`CLOCK_SAMPLE_INTERVAL`] calls, cached in between).
    pub fn now_ms(&self) -> u64 {
        let t = CLOCK_TICKS.with(|c| {
            let t = c.get();
            c.set(t.wrapping_add(1));
            t
        });
        if t % CLOCK_SAMPLE_INTERVAL == 0 {
            let ms = self.epoch.elapsed().as_millis() as u64;
            self.clock_ms.store(ms, Ordering::Relaxed);
            ms
        } else {
            self.clock_ms.load(Ordering::Relaxed)
        }
    }

    /// Set the ring geometry used for windows created *after* this call
    /// (existing windows keep their geometry).
    pub fn set_window_config(&self, config: WindowConfig) {
        self.lock().window_config = config;
    }

    /// Get (or create) the window for `(name, class)` and return a
    /// registry-free recording handle. Call once per hot loop / worker,
    /// not per observation: the handle records with one mutex lock and no
    /// map lookup, which is what keeps windowed recording within a few
    /// percent of plain [`Recorder::observe`] (pinned by the `obs_window`
    /// bench).
    pub fn window(&self, name: &str, class: &str) -> WindowHandle<'_> {
        let mut s = self.lock();
        let config = s.window_config;
        let win = s
            .windows
            .entry(name.to_string())
            .or_default()
            .entry(class.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(Window::new(config))))
            .clone();
        drop(s);
        WindowHandle { recorder: self, win }
    }

    /// One-shot windowed observation (registry lookup per call — fine for
    /// cold paths; hot paths should hold a [`WindowHandle`]).
    #[inline]
    pub fn window_observe(&self, name: &str, class: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.window(name, class).observe(value);
    }

    /// One-shot windowed counter bump (cold-path convenience, like
    /// [`Recorder::window_observe`]).
    #[inline]
    pub fn window_counter_add(&self, name: &str, class: &str, delta: f64) {
        if !self.is_enabled() {
            return;
        }
        self.window(name, class).add(delta);
    }

    /// Number of finished spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.lock().spans.len()
    }

    /// Snapshot everything recorded so far into a [`Report`].
    pub fn snapshot(&self) -> Report {
        let now = self.now_ms();
        let s = self.lock();
        Report {
            spans: s.spans.clone(),
            counters: self.merged_counters(),
            gauges: s.gauges.clone(),
            histograms: s.hists.iter().map(|(k, h)| (k.clone(), h.summary())).collect(),
            windows: s
                .windows
                .iter()
                .map(|(name, classes)| {
                    (
                        name.clone(),
                        classes
                            .iter()
                            .map(|(class, w)| {
                                let w = w.lock().unwrap_or_else(|e| e.into_inner());
                                (class.clone(), w.summary(now))
                            })
                            .collect::<BTreeMap<String, WindowSummary>>(),
                    )
                })
                .collect(),
        }
    }

    fn finish_span(&self, open: OpenSpan) {
        // Restore this thread's parent pointer *before* taking the lock,
        // so nested spans on this thread re-parent correctly even if the
        // lock blocks.
        CURRENT_SPAN.with(|c| c.set(open.parent.unwrap_or(0)));
        let record = SpanRecord {
            id: open.id,
            parent: open.parent,
            trace: open.trace,
            thread: thread_ord(),
            name: open.name,
            start_ns: open.start.duration_since(self.epoch).as_nanos() as u64,
            dur_ns: open.start.elapsed().as_nanos() as u64,
            fields: open.fields,
        };
        self.lock().spans.push(record);
    }
}

/// A registry-free recording handle for one `(metric, class)` window.
/// Obtained from [`Recorder::window`]; cache it outside hot loops.
/// Survives a [`Recorder::reset`] but records into a detached window
/// afterwards (invisible to snapshots) — re-create handles after resets.
#[derive(Clone)]
pub struct WindowHandle<'r> {
    recorder: &'r Recorder,
    win: Arc<Mutex<Window>>,
}

impl WindowHandle<'_> {
    /// Record one histogram observation at the current (amortized) time.
    /// No-op when the recorder is disabled.
    #[inline]
    pub fn observe(&self, value: f64) {
        if !self.recorder.is_enabled() {
            return;
        }
        let now = self.recorder.now_ms();
        self.win.lock().unwrap_or_else(|e| e.into_inner()).record_at(now, value);
    }

    /// Add `delta` to the window's counter at the current (amortized)
    /// time. No-op when the recorder is disabled.
    #[inline]
    pub fn add(&self, delta: f64) {
        if !self.recorder.is_enabled() {
            return;
        }
        let now = self.recorder.now_ms();
        self.win.lock().unwrap_or_else(|e| e.into_inner()).add_at(now, delta);
    }

    /// Rolling summary over the window's live horizon, as of now.
    pub fn summary(&self) -> WindowSummary {
        let now = self.recorder.now_ms();
        self.win.lock().unwrap_or_else(|e| e.into_inner()).summary(now)
    }
}

impl std::fmt::Debug for WindowHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowHandle").finish_non_exhaustive()
    }
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    trace: u64,
    name: String,
    start: Instant,
    fields: Vec<(String, FieldValue)>,
}

/// RAII guard for an open span. Records on drop; inert (and free apart
/// from one atomic load at creation) when the recorder was disabled.
pub struct Span<'r> {
    recorder: &'r Recorder,
    inner: Option<OpenSpan>,
}

impl Span<'_> {
    /// Attach a key/value field. No-op on an inert span.
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) {
        if let Some(open) = &mut self.inner {
            open.fields.push((key.to_string(), value.into()));
        }
    }

    /// Whether this guard will record on drop.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The span's id (None when inert).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|o| o.id)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(open) = self.inner.take() {
            self.recorder.finish_span(open);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::new();
        {
            let mut s = r.span("a.b");
            s.field("k", 1u64);
            assert!(!s.is_recording());
        }
        r.counter_add("a.c", 1.0);
        r.observe("a.h", 5.0);
        r.gauge_set("a.g", 2.0);
        let rep = r.snapshot();
        assert!(rep.spans.is_empty());
        assert!(rep.counters.is_empty());
        assert!(rep.histograms.is_empty());
        assert!(rep.gauges.is_empty());
    }

    #[test]
    fn span_nesting_sets_parentage() {
        let r = Recorder::new();
        r.enable();
        {
            let mut outer = r.span("outer");
            outer.field("stage", "x");
            {
                let _inner = r.span("inner");
            }
            {
                let _inner2 = r.span("inner2");
            }
        }
        let rep = r.snapshot();
        assert_eq!(rep.spans.len(), 3);
        // Spans record in completion order: inner, inner2, outer.
        let outer = rep.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = rep.spans.iter().find(|s| s.name == "inner").unwrap();
        let inner2 = rep.spans.iter().find(|s| s.name == "inner2").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner2.parent, Some(outer.id));
        assert_eq!(outer.fields, vec![("stage".to_string(), FieldValue::Str("x".into()))]);
        assert!(outer.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn sibling_spans_after_close_are_roots() {
        let r = Recorder::new();
        r.enable();
        {
            let _a = r.span("a");
        }
        {
            let _b = r.span("b");
        }
        let rep = r.snapshot();
        assert!(rep.spans.iter().all(|s| s.parent.is_none()));
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let r = Recorder::new();
        r.enable();
        r.counter_add("m.calls", 1.0);
        r.counter_add("m.calls", 2.0);
        r.gauge_set("m.g", 1.0);
        r.gauge_set("m.g", 7.0);
        for i in 0..10 {
            r.observe("m.lat", 100.0 * (i + 1) as f64);
        }
        let rep = r.snapshot();
        assert_eq!(r.counter_value("m.calls"), 3.0);
        assert_eq!(rep.gauges["m.g"], 7.0);
        let h = &rep.histograms["m.lat"];
        assert_eq!(h.count, 10);
        assert_eq!(h.max, 1000.0);
        assert!(h.p50 > 0.0 && h.p50 <= h.p99);
    }

    #[test]
    fn reset_clears_but_keeps_enabled() {
        let r = Recorder::new();
        r.enable();
        r.counter_add("c", 1.0);
        {
            let _s = r.span("s");
        }
        r.reset();
        assert!(r.is_enabled());
        assert_eq!(r.span_count(), 0);
        assert_eq!(r.counter_value("c"), 0.0);
    }

    #[test]
    fn disable_midway_still_records_open_span() {
        let r = Recorder::new();
        r.enable();
        let s = r.span("open");
        r.disable();
        drop(s);
        assert_eq!(r.span_count(), 1);
        // But new spans are inert.
        assert!(!r.span("later").is_recording());
    }

    #[test]
    fn concurrent_counter_increments_lose_nothing() {
        let r = std::sync::Arc::new(Recorder::new());
        r.enable();
        // 8 threads hammer 4 counter names (some sharing a stripe, some
        // not) — every increment must land.
        std::thread::scope(|scope| {
            for t in 0..8 {
                let r = r.clone();
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        let name = ["serve.a", "serve.b", "serve.c", "serve.d"]
                            [((t + i) % 4) as usize];
                        r.counter_add(name, 1.0);
                    }
                });
            }
        });
        let report = r.snapshot();
        let total: f64 = ["serve.a", "serve.b", "serve.c", "serve.d"]
            .iter()
            .map(|n| report.counters.get(*n).copied().unwrap_or(0.0))
            .sum();
        assert_eq!(total, 8_000.0);
        assert_eq!(r.counter_value("serve.a"), report.counters["serve.a"]);
    }

    #[test]
    fn windows_register_record_and_snapshot() {
        let r = Recorder::new();
        r.enable();
        let h = r.window("serve.latency_ms", "interactive");
        for i in 0..20 {
            h.observe(10.0 + i as f64);
        }
        h.add(5.0);
        r.window_observe("serve.latency_ms", "batch", 400.0);
        let rep = r.snapshot();
        let classes = &rep.windows["serve.latency_ms"];
        assert_eq!(classes.len(), 2);
        assert_eq!(classes["interactive"].hist.count, 20);
        assert_eq!(classes["interactive"].counter, 5.0);
        assert_eq!(classes["batch"].hist.count, 1);
        assert_eq!(classes["batch"].hist.max, 400.0);
    }

    #[test]
    fn disabled_windows_record_nothing_and_reset_clears() {
        let r = Recorder::new();
        let h = r.window("w", "c");
        h.observe(1.0);
        h.add(1.0);
        r.window_observe("w2", "c", 1.0);
        assert!(h.summary().is_empty());
        // window() registered "w" explicitly; the one-shot path must not
        // have registered "w2" while disabled.
        assert!(!r.snapshot().windows.contains_key("w2"));
        r.enable();
        r.window("w", "c").observe(2.0);
        r.reset();
        assert!(r.snapshot().windows.is_empty());
    }

    #[test]
    fn amortized_clock_is_monotone_enough() {
        let r = Recorder::new();
        let mut last = 0;
        for _ in 0..200 {
            let now = r.now_ms();
            assert!(now >= last || now + 1 >= last, "clock went backwards: {now} < {last}");
            last = last.max(now);
        }
    }

    #[test]
    fn field_value_conversions() {
        let cases: Vec<FieldValue> = vec![
            "s".into(),
            String::from("t").into(),
            3u64.into(),
            4usize.into(),
            (-5i64).into(),
            1.5f64.into(),
            true.into(),
        ];
        assert_eq!(cases[0], FieldValue::Str("s".into()));
        assert_eq!(cases[3], FieldValue::U64(4));
        assert_eq!(cases[6], FieldValue::Bool(true));
        assert_eq!(format!("{}", cases[5]), "1.500");
    }
}
