//! # llmdm-obs — hermetic tracing + metrics substrate
//!
//! The paper argues every §III mechanism (cascade routing, query
//! decomposition, semantic caching) in terms of *measured*
//! cost/latency/accuracy trade-offs (Tables I–III). This crate is the
//! cross-cutting layer that makes those measurements first-class for the
//! whole Figure-1 pipeline: a single run of `DataManager` (or any repro
//! binary) can answer *"where did this run spend its tokens, dollars and
//! milliseconds?"* without each crate growing its own siloed counters.
//!
//! Three pieces:
//!
//! Five pieces:
//!
//! 1. **Spans** ([`span`], [`Span`]): hierarchical RAII timing regions
//!    with key/value fields (`model`, `tokens_in`, `cost_usd`,
//!    `cache=hit|miss`, …). Parentage is tracked per thread — a span
//!    opened on thread T is a child of the innermost span open *on T* —
//!    unless a trace context overrides it (next item).
//! 2. **Trace contexts** ([`TraceContext`]): request-scoped `(trace id,
//!    parent span)` pairs that ride through queues as plain data and are
//!    adopted on worker threads via an RAII [`TraceContext::attach`]
//!    guard, so one request's spans stitch into a single flame tree even
//!    when the request crosses the serving layer's thread pool.
//!    Reassembly: [`Report::trace_tree`] / [`Report::render_trace`].
//! 3. **Metrics** ([`counter_add`], [`gauge_set`], [`observe`]):
//!    monotonic counters, gauges, and fixed-bucket log-scale histograms
//!    reporting count/mean/p50/p95/p99/max.
//! 4. **Windowed metrics** ([`window`], [`Window`]): fixed-memory rings
//!    of time-bucketed histograms/counters keyed by `(metric, class)` —
//!    rolling p50/p95/p99 over the last few seconds, the SLO substrate
//!    for per-class QoS decisions.
//! 5. **Exporters** ([`Report::to_json`], [`Report::render_text`],
//!    [`Report::write_window`]): machine-readable JSON (via
//!    `llmdm_rt::json`, in the spirit of `BENCH_*.json`), a
//!    human-readable flame-style text tree, and the `WINDOW_*.json`
//!    SLO document.
//!
//! ## Cost model
//!
//! The recorder is **disabled by default**. Every public entry point
//! checks one relaxed atomic load and returns immediately when disabled,
//! so instrumentation on hot paths (tokenizer loops, flat-index scans)
//! costs roughly an atomic load — proven by the `obs_overhead` bench and
//! pinned in `scripts/verify.sh`. There is no `#[cfg]` gating: the same
//! binary can flip recording on and off at runtime ([`enable`] /
//! [`disable`]).
//!
//! ## Naming convention
//!
//! Metric and span names are `crate.subsystem.metric`
//! (e.g. `model.complete`, `semcache.lookup.miss`,
//! `vecdb.search.distance_comps`). See DESIGN.md §8.
//!
//! ## Isolation for tests
//!
//! All state lives on a [`Recorder`] instance; the free functions
//! delegate to a process-wide [`global`] recorder. Tests that must not
//! interfere with parallel tests construct their own `Recorder`.

mod export;
mod hist;
mod meta;
mod recorder;
mod trace;
mod window;

pub use export::{MetricsSummary, Report, SpanNode};

// Re-export the runtime so `bench_main!` can reach it via `$crate` even
// though the expanding crate may not depend on `llmdm-rt` directly.
#[doc(hidden)]
pub use llmdm_rt as __rt;
pub use hist::{Histogram, HistogramSummary};
pub use meta::{git_rev, run_meta, timestamp_unix};
pub use recorder::{FieldValue, Recorder, Span, SpanRecord, WindowHandle};
pub use trace::{current_trace_id, TraceContext, TraceGuard};
pub use window::{Window, WindowBucket, WindowConfig, WindowSummary};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder behind the free functions.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new)
}

/// Enable the global recorder (idempotent).
pub fn enable() {
    global().enable();
}

/// Disable the global recorder (idempotent). Already-open spans still
/// record on drop; new entry points become no-ops.
pub fn disable() {
    global().disable();
}

/// Whether the global recorder is currently recording.
pub fn is_enabled() -> bool {
    global().is_enabled()
}

/// Clear all recorded spans and metrics on the global recorder
/// (enabled/disabled state is preserved).
pub fn reset() {
    global().reset();
}

/// Open a span on the global recorder. Returns an RAII guard that
/// records the span (duration, fields, parentage) when dropped. When the
/// recorder is disabled this is a no-op costing one atomic load.
#[must_use = "a span records when its guard drops; binding to `_` drops immediately"]
pub fn span(name: &str) -> Span<'static> {
    global().span(name)
}

/// Add `delta` to the monotonic counter `name` on the global recorder.
pub fn counter_add(name: &str, delta: f64) {
    global().counter_add(name, delta);
}

/// Read a counter's current value from the global recorder (0.0 if the
/// counter was never bumped).
pub fn counter_value(name: &str) -> f64 {
    global().counter_value(name)
}

/// Set gauge `name` to `value` on the global recorder.
pub fn gauge_set(name: &str, value: f64) {
    global().gauge_set(name, value);
}

/// Record one observation into log-scale histogram `name` on the global
/// recorder.
pub fn observe(name: &str, value: f64) {
    global().observe(name, value);
}

/// Set the ring geometry for windows created after this call on the
/// global recorder.
pub fn set_window_config(config: WindowConfig) {
    global().set_window_config(config);
}

/// Get (or create) the `(name, class)` window on the global recorder and
/// return a registry-free recording handle — fetch once per worker/hot
/// loop, then record through the handle.
pub fn window(name: &str, class: &str) -> WindowHandle<'static> {
    global().window(name, class)
}

/// One-shot windowed observation on the global recorder (cold-path
/// convenience; hot paths should cache a [`WindowHandle`]).
pub fn window_observe(name: &str, class: &str, value: f64) {
    global().window_observe(name, class, value);
}

/// One-shot windowed counter bump on the global recorder.
pub fn window_counter_add(name: &str, class: &str, delta: f64) {
    global().window_counter_add(name, class, delta);
}

/// Snapshot everything recorded so far on the global recorder.
pub fn snapshot() -> Report {
    global().snapshot()
}
