//! Exporters: machine-readable JSON (`TRACE_*.json`, `WINDOW_*.json`),
//! a human-readable flame-style text tree, and the trace reassembler
//! that stitches per-thread span logs into one flame tree per request.

use std::collections::{BTreeMap, BTreeSet};

use llmdm_rt::json::Json;

use crate::hist::HistogramSummary;
use crate::recorder::{FieldValue, SpanRecord};
use crate::window::WindowSummary;

/// A point-in-time copy of everything a recorder collected.
#[derive(Debug, Clone)]
pub struct Report {
    /// Finished spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, f64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries (count/mean/p50/p95/p99/min/max).
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Windowed metric summaries: metric name → class label → rolling
    /// figures as of the snapshot.
    pub windows: BTreeMap<String, BTreeMap<String, WindowSummary>>,
}

/// Alias for the metric part of a [`Report`] (everything but spans).
pub type MetricsSummary = BTreeMap<String, HistogramSummary>;

fn field_json(v: &FieldValue) -> Json {
    match v {
        FieldValue::Str(s) => Json::Str(s.clone()),
        FieldValue::U64(n) => Json::Num(*n as f64),
        FieldValue::I64(n) => Json::Num(*n as f64),
        FieldValue::F64(n) => Json::Num(*n),
        FieldValue::Bool(b) => Json::Bool(*b),
    }
}

fn span_json(s: &SpanRecord) -> Json {
    Json::obj([
        ("id", Json::Num(s.id as f64)),
        (
            "parent",
            match s.parent {
                Some(p) => Json::Num(p as f64),
                None => Json::Null,
            },
        ),
        // Trace ids are full-width u64s (SplitMix64 output); JSON numbers
        // are f64 and lose bits above 2^53, so serialize as a hex string.
        (
            "trace",
            if s.trace == 0 { Json::Null } else { Json::Str(format!("{:#018x}", s.trace)) },
        ),
        ("thread", Json::Num(s.thread as f64)),
        ("name", Json::Str(s.name.clone())),
        ("start_ns", Json::Num(s.start_ns as f64)),
        ("dur_ns", Json::Num(s.dur_ns as f64)),
        (
            "fields",
            Json::Obj(s.fields.iter().map(|(k, v)| (k.clone(), field_json(v))).collect()),
        ),
    ])
}

fn hist_json(h: &HistogramSummary) -> Json {
    Json::obj([
        ("count", Json::Num(h.count as f64)),
        ("mean", Json::Num(h.mean)),
        ("p50", Json::Num(h.p50)),
        ("p95", Json::Num(h.p95)),
        ("p99", Json::Num(h.p99)),
        ("min", Json::Num(h.min)),
        ("max", Json::Num(h.max)),
    ])
}

fn window_json(w: &WindowSummary) -> Json {
    Json::obj([
        ("rolling", hist_json(&w.hist)),
        ("counter", Json::Num(w.counter)),
        (
            "series",
            Json::Arr(
                w.series
                    .iter()
                    .map(|b| {
                        Json::obj([
                            ("bucket", Json::Num(b.bucket as f64)),
                            ("start_ms", Json::Num(b.start_ms as f64)),
                            ("count", Json::Num(b.count as f64)),
                            ("sum", Json::Num(b.sum)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn windows_json(windows: &BTreeMap<String, BTreeMap<String, WindowSummary>>) -> Json {
    Json::Obj(
        windows
            .iter()
            .map(|(name, classes)| {
                (
                    name.clone(),
                    Json::Obj(
                        classes.iter().map(|(c, w)| (c.clone(), window_json(w))).collect(),
                    ),
                )
            })
            .collect(),
    )
}

impl Report {
    /// Distinct crate prefixes (`crate` in `crate.subsystem.op`) across
    /// all recorded span names.
    pub fn span_crates(&self) -> BTreeSet<String> {
        self.spans
            .iter()
            .map(|s| s.name.split('.').next().unwrap_or(&s.name).to_string())
            .collect()
    }

    /// Render the full trace document, stamped with run metadata
    /// (git rev + timestamp; see [`crate::run_meta`]) and any `extra`
    /// top-level sections (e.g. an embedded `CacheStats`).
    pub fn to_json_with(&self, seed: Option<u64>, extra: &[(String, Json)]) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("kind".into(), Json::Str("llmdm-trace".into())),
            ("meta".into(), Json::Obj(crate::run_meta(seed))),
            ("spans".into(), Json::Arr(self.spans.iter().map(span_json).collect())),
            (
                "counters".into(),
                Json::Obj(self.counters.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect()),
            ),
            (
                "gauges".into(),
                Json::Obj(self.gauges.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect()),
            ),
            (
                "histograms".into(),
                Json::Obj(self.histograms.iter().map(|(k, h)| (k.clone(), hist_json(h))).collect()),
            ),
            ("windows".into(), windows_json(&self.windows)),
        ];
        fields.extend(extra.iter().cloned());
        Json::Obj(fields)
    }

    /// Render the trace document with default metadata.
    pub fn to_json(&self) -> Json {
        self.to_json_with(None, &[])
    }

    /// Write `TRACE_<label>.json` into `dir`; returns the path.
    pub fn write_trace(
        &self,
        dir: &std::path::Path,
        label: &str,
        seed: Option<u64>,
        extra: &[(String, Json)],
    ) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("TRACE_{label}.json"));
        std::fs::write(&path, self.to_json_with(seed, extra).render())?;
        Ok(path)
    }

    /// Write `WINDOW_<label>.json` into `dir` — just the windowed-metric
    /// section plus run metadata, the SLO document a QoS controller would
    /// poll. Returns the path.
    pub fn write_window(
        &self,
        dir: &std::path::Path,
        label: &str,
        seed: Option<u64>,
    ) -> std::io::Result<std::path::PathBuf> {
        let doc = Json::obj([
            ("kind", Json::Str("llmdm-window".into())),
            ("meta", Json::Obj(crate::run_meta(seed))),
            ("windows", windows_json(&self.windows)),
        ]);
        let path = dir.join(format!("WINDOW_{label}.json"));
        std::fs::write(&path, doc.render())?;
        Ok(path)
    }

    /// Build the span forest (roots = spans with no recorded parent),
    /// children sorted by start time.
    pub fn span_tree(&self) -> Vec<SpanNode<'_>> {
        forest(self.spans.iter().collect())
    }

    /// Distinct trace ids seen across recorded spans (untraced spans'
    /// `0` is excluded), sorted.
    pub fn trace_ids(&self) -> Vec<u64> {
        let ids: BTreeSet<u64> =
            self.spans.iter().map(|s| s.trace).filter(|&t| t != 0).collect();
        ids.into_iter().collect()
    }

    /// Reassemble one request's flame tree: the forest of spans stamped
    /// with `trace_id`, stitched across threads (a span whose parent
    /// lives on another thread still nests beneath it). For a request
    /// admitted under a single root span this is a single tree.
    pub fn trace_tree(&self, trace_id: u64) -> Vec<SpanNode<'_>> {
        forest(self.spans.iter().filter(|s| s.trace == trace_id).collect())
    }

    /// Render one reassembled trace as a flame-style text tree.
    pub fn render_trace(&self, trace_id: u64) -> String {
        let tree = self.trace_tree(trace_id);
        let spans: usize = tree.iter().map(count_nodes).sum();
        let mut threads: BTreeSet<u64> = BTreeSet::new();
        for s in self.spans.iter().filter(|s| s.trace == trace_id) {
            threads.insert(s.thread);
        }
        let mut out = format!(
            "TRACE {:#018x} — {spans} span(s) across {} thread(s)\n",
            trace_id,
            threads.len().max(1)
        );
        for (i, node) in tree.iter().enumerate() {
            render_node(node, "", i + 1 == tree.len(), &mut out);
        }
        out
    }

    /// Canonical structural form of one trace: every subtree rendered as
    /// `name(child,child,…)` with children sorted lexicographically, root
    /// subtrees joined by `;`. Start times, durations, ids and fields are
    /// all excluded, so two runs of the same workload produce the same
    /// canonical form regardless of thread interleaving or worker count —
    /// the equality the trace-propagation integration test asserts.
    pub fn trace_canonical(&self, trace_id: u64) -> String {
        fn canon(node: &SpanNode<'_>) -> String {
            let mut kids: Vec<String> = node.children.iter().map(canon).collect();
            kids.sort();
            if kids.is_empty() {
                node.span.name.clone()
            } else {
                format!("{}({})", node.span.name, kids.join(","))
            }
        }
        let mut roots: Vec<String> = self.trace_tree(trace_id).iter().map(canon).collect();
        roots.sort();
        roots.join(";")
    }

    /// Render the human-readable flame-style tree plus metric tables.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let threads: BTreeSet<u64> = self.spans.iter().map(|s| s.thread).collect();
        out.push_str(&format!(
            "TRACE — {} spans across {} thread(s)\n",
            self.spans.len(),
            threads.len().max(1)
        ));
        let tree = self.span_tree();
        for (i, node) in tree.iter().enumerate() {
            render_node(node, "", i + 1 == tree.len(), &mut out);
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<44} {}\n", FieldValue::F64(*v)));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\ngauges\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<44} {}\n", FieldValue::F64(*v)));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\nhistograms                                      count      p50      p95      p99      max\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {k:<44} {:>7} {:>8.1} {:>8.1} {:>8.1} {:>8.1}\n",
                    h.count, h.p50, h.p95, h.p99, h.max
                ));
            }
        }
        out
    }
}

/// One node of the rendered span forest.
#[derive(Debug)]
pub struct SpanNode<'a> {
    /// The span at this node.
    pub span: &'a SpanRecord,
    /// Child spans, sorted by start time.
    pub children: Vec<SpanNode<'a>>,
}

/// Build a forest from an arbitrary span subset: roots are spans whose
/// parent is absent *from the subset* (so filtering by trace id keeps
/// trees rooted at the request's own root), children sorted by start
/// time. A parent id never seen (recorder reset mid-span, cross-trace
/// parent) degrades the child to a root rather than dropping it.
fn forest(spans: Vec<&SpanRecord>) -> Vec<SpanNode<'_>> {
    let ids: BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in spans {
        match s.parent {
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(s),
            _ => roots.push(s),
        }
    }
    fn build<'a>(s: &'a SpanRecord, children: &BTreeMap<u64, Vec<&'a SpanRecord>>) -> SpanNode<'a> {
        let mut kids: Vec<SpanNode<'a>> = children
            .get(&s.id)
            .map(|v| v.iter().map(|c| build(c, children)).collect())
            .unwrap_or_default();
        kids.sort_by_key(|n| n.span.start_ns);
        SpanNode { span: s, children: kids }
    }
    let mut out: Vec<SpanNode<'_>> = roots.iter().map(|r| build(r, &children)).collect();
    out.sort_by_key(|n| n.span.start_ns);
    out
}

/// Total node count of a subtree.
fn count_nodes(node: &SpanNode<'_>) -> usize {
    1 + node.children.iter().map(count_nodes).sum::<usize>()
}

fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn render_node(node: &SpanNode<'_>, prefix: &str, last: bool, out: &mut String) {
    let connector = if last { "└─ " } else { "├─ " };
    let fields = if node.span.fields.is_empty() {
        String::new()
    } else {
        let kv: Vec<String> =
            node.span.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("  [{}]", kv.join(" "))
    };
    out.push_str(&format!(
        "{prefix}{connector}{:<40} {:>9}{fields}\n",
        node.span.name,
        fmt_dur(node.span.dur_ns)
    ));
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    for (i, c) in node.children.iter().enumerate() {
        render_node(c, &child_prefix, i + 1 == node.children.len(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample() -> Report {
        let r = Recorder::new();
        r.enable();
        {
            let mut root = r.span("core.pipeline.run");
            root.field("seed", 42u64);
            {
                let mut child = r.span("model.complete");
                child.field("model", "sim-large");
                child.field("tokens_in", 120u64);
                child.field("cost_usd", 0.0042f64);
            }
            {
                let _child2 = r.span("semcache.lookup");
            }
        }
        r.counter_add("model.calls", 1.0);
        r.observe("model.latency_ms", 12.5);
        r.gauge_set("semcache.entries", 3.0);
        r.snapshot()
    }

    #[test]
    fn json_parses_and_has_sections() {
        let rep = sample();
        let text = rep.to_json().render();
        let parsed = Json::parse(&text).expect("trace JSON parses");
        assert_eq!(parsed.get("kind").unwrap().as_str().unwrap(), "llmdm-trace");
        assert!(parsed.get("meta").unwrap().get("timestamp_unix").is_some());
        let spans = parsed.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans.len(), 3);
        // Child spans carry their parent id and fields.
        let child = spans.iter().find(|s| {
            s.get("name").map(|n| n == &Json::Str("model.complete".into())).unwrap_or(false)
        });
        let child = child.expect("model.complete span present");
        assert!(child.get("parent").unwrap().as_u64().is_ok());
        assert!(child.get("fields").unwrap().get("cost_usd").is_some());
        let hists = parsed.get("histograms").unwrap();
        let lat = hists.get("model.latency_ms").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64().unwrap(), 1);
        assert!(lat.get("p50").is_some() && lat.get("p99").is_some());
    }

    #[test]
    fn extra_sections_are_appended() {
        let rep = sample();
        let doc = rep.to_json_with(Some(7), &[("custom".into(), Json::Bool(true))]);
        assert_eq!(doc.get("custom").unwrap(), &Json::Bool(true));
        assert_eq!(doc.get("meta").unwrap().get("seed").unwrap().as_u64().unwrap(), 7);
    }

    #[test]
    fn tree_structure_matches_parentage() {
        let rep = sample();
        let tree = rep.span_tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].span.name, "core.pipeline.run");
        assert_eq!(tree[0].children.len(), 2);
        assert_eq!(tree[0].children[0].span.name, "model.complete");
    }

    #[test]
    fn text_render_contains_tree_and_metrics() {
        let rep = sample();
        let text = rep.render_text();
        assert!(text.contains("core.pipeline.run"));
        assert!(text.contains("└─"), "tree connectors present:\n{text}");
        assert!(text.contains("model=sim-large"));
        assert!(text.contains("counters"));
        assert!(text.contains("model.calls"));
        assert!(text.contains("histograms"));
    }

    #[test]
    fn span_crates_extracts_prefixes() {
        let rep = sample();
        let crates = rep.span_crates();
        assert!(crates.contains("core"));
        assert!(crates.contains("model"));
        assert!(crates.contains("semcache"));
    }

    fn record(id: u64, parent: Option<u64>, trace: u64, name: &str, start_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            trace,
            thread: 0,
            name: name.into(),
            start_ns,
            dur_ns: 1,
            fields: vec![],
        }
    }

    fn report_of(spans: Vec<SpanRecord>) -> Report {
        Report {
            spans,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            windows: BTreeMap::new(),
        }
    }

    #[test]
    fn orphan_parent_degrades_to_root() {
        let rep = report_of(vec![record(5, Some(99), 0, "x.y", 0)]);
        assert_eq!(rep.span_tree().len(), 1);
    }

    #[test]
    fn trace_tree_filters_and_stitches() {
        // Two interleaved traces plus one untraced span; trace 7's child
        // parents to its root even though another trace's span sits
        // between them in completion order.
        let rep = report_of(vec![
            record(1, None, 7, "req.root", 0),
            record(2, None, 8, "other.root", 5),
            record(3, Some(1), 7, "req.work", 10),
            record(4, Some(3), 7, "req.model", 12),
            record(5, None, 0, "untraced", 20),
        ]);
        assert_eq!(rep.trace_ids(), vec![7, 8]);
        let t7 = rep.trace_tree(7);
        assert_eq!(t7.len(), 1, "one flame tree per request");
        assert_eq!(t7[0].span.name, "req.root");
        assert_eq!(t7[0].children.len(), 1);
        assert_eq!(t7[0].children[0].children[0].span.name, "req.model");
        assert_eq!(rep.trace_canonical(7), "req.root(req.work(req.model))");
        assert_eq!(rep.trace_canonical(8), "other.root");
        let text = rep.render_trace(7);
        assert!(text.contains("req.model"), "{text}");
        assert!(!text.contains("other.root"), "{text}");
        assert!(!text.contains("untraced"), "{text}");
    }

    #[test]
    fn trace_canonical_is_order_independent() {
        let a = report_of(vec![
            record(1, None, 9, "root", 0),
            record(2, Some(1), 9, "b", 1),
            record(3, Some(1), 9, "a", 2),
        ]);
        let b = report_of(vec![
            record(10, None, 9, "root", 0),
            record(12, Some(10), 9, "a", 1),
            record(11, Some(10), 9, "b", 2),
        ]);
        assert_eq!(a.trace_canonical(9), b.trace_canonical(9));
        assert_eq!(a.trace_canonical(9), "root(a,b)");
    }

    #[test]
    fn trace_id_serializes_as_hex_string() {
        // A trace id above 2^53 must survive the JSON round-trip exactly
        // (f64 numbers cannot carry it).
        let big = (1u64 << 60) | 0x1234_5678_9abc_def1;
        let rep = report_of(vec![record(1, None, big, "x", 0), record(2, None, 0, "y", 1)]);
        let doc = rep.to_json().render();
        let parsed = Json::parse(&doc).unwrap();
        let spans = parsed.get("spans").unwrap().as_arr().unwrap();
        let tr = spans[0].get("trace").unwrap().as_str().unwrap();
        assert_eq!(u64::from_str_radix(tr.trim_start_matches("0x"), 16).unwrap(), big);
        assert_eq!(spans[1].get("trace").unwrap(), &Json::Null);
    }

    #[test]
    fn window_export_round_trips() {
        let r = Recorder::new();
        r.enable();
        let h = r.window("serve.latency_ms", "interactive");
        for i in 0..10 {
            h.observe(50.0 + i as f64);
        }
        h.add(0.25);
        let rep = r.snapshot();
        let dir = std::env::temp_dir().join(format!("llmdm_obs_window_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = rep.write_window(&dir, "test", Some(1)).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("WINDOW_"));
        let parsed = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.get("kind").unwrap().as_str().unwrap(), "llmdm-window");
        let w = parsed.get("windows").unwrap().get("serve.latency_ms").unwrap();
        let class = w.get("interactive").unwrap();
        assert_eq!(class.get("rolling").unwrap().get("count").unwrap().as_u64().unwrap(), 10);
        assert_eq!(class.get("counter").unwrap().as_f64().unwrap(), 0.25);
        assert!(!class.get("series").unwrap().as_arr().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
