//! Fixed-bucket log-scale histograms.
//!
//! 256 buckets, four per power of two (bucket `i` covers
//! `[2^(i/4), 2^((i+1)/4))`; values below 1 land in bucket 0), so the
//! range spans `[0, 2^64)` — nanosecond durations through token counts —
//! with a worst-case quantile error of one quarter-octave (~19%), which
//! is plenty for p50/p95/p99 reporting. Recording is O(1): one float
//! log2, one increment.

/// Quarter-octave buckets per power of two.
const SUB: f64 = 4.0;
/// Total bucket count (covers up to 2^64).
const NBUCKETS: usize = 256;

/// A fixed-memory log-scale histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; NBUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

fn bucket_of(value: f64) -> usize {
    if !(value >= 1.0) {
        // NaN, negatives and sub-1 values all land in bucket 0.
        return 0;
    }
    let mut b = ((value.log2() * SUB) as usize).min(NBUCKETS - 1);
    // Float `log2` can land a hair on the wrong side of a bucket
    // boundary (a libm returning `log2(2^k) = k − ε` would misplace
    // `2^k` one bucket down, truncating 4k − tiny to 4k − 1). Nudge so
    // the bucket invariant `2^(b/4) <= value < 2^((b+1)/4)` holds as
    // computed by `powf`; in practice this loops at most once.
    while b + 1 < NBUCKETS && 2f64.powf((b as f64 + 1.0) / SUB) <= value {
        b += 1;
    }
    while b > 0 && 2f64.powf(b as f64 / SUB) > value {
        b -= 1;
    }
    b
}

/// Geometric representative of bucket `i` (its midpoint in log space).
fn bucket_rep(i: usize) -> f64 {
    if i == 0 {
        0.5
    } else {
        2f64.powf((i as f64 + 0.5) / SUB)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Clear all recorded observations in place (no reallocation) — the
    /// rotation primitive for fixed-memory windowed rings.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`), clamped to the exact
    /// observed `[min, max]`. Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_rep(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Summarize as count / mean / p50 / p95 / p99 / max.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: if self.count == 0 { 0.0 } else { self.sum / self.count as f64 },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }

    /// Merge another histogram into this one (same bucket layout).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Point-in-time summary statistics of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Exact arithmetic mean.
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
    /// Exact minimum.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p99, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn single_value_everywhere() {
        let mut h = Histogram::new();
        h.record(1000.0);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 1000.0);
        assert_eq!(s.max, 1000.0);
        // Quantiles clamp to observed range.
        assert_eq!(s.p50, 1000.0);
        assert_eq!(s.p99, 1000.0);
    }

    #[test]
    fn quantiles_within_quarter_octave() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i as f64);
        }
        let s = h.summary();
        // Exact p50 = 5000, p99 = 9900; log-bucket error ≤ ~19%.
        assert!((s.p50 / 5000.0 - 1.0).abs() < 0.20, "p50={}", s.p50);
        assert!((s.p99 / 9900.0 - 1.0).abs() < 0.20, "p99={}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.max, 10_000.0);
        assert!((s.mean - 5000.5).abs() < 1e-6);
    }

    #[test]
    fn sub_one_and_negative_values_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(0.3);
        h.record(-5.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.summary().min, -5.0);
        assert!(h.summary().p50 <= 0.3);
    }

    #[test]
    fn nan_is_dropped() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn huge_values_clamp_to_last_bucket() {
        let mut h = Histogram::new();
        h.record(1e300);
        assert_eq!(h.count(), 1);
        assert_eq!(h.summary().max, 1e300);
    }

    #[test]
    fn powers_of_two_land_in_their_own_bucket() {
        // Bucket i covers [2^(i/4), 2^((i+1)/4)), so 2^k must land in
        // bucket 4k exactly — a log2 off by one ulp would shift it.
        for k in 0..64u32 {
            let v = 2f64.powi(k as i32);
            assert_eq!(bucket_of(v), (4 * k as usize).min(NBUCKETS - 1), "2^{k}");
        }
        // A hair below 2^k belongs one bucket down; a hair above stays.
        for k in 1..53u32 {
            let v = 2f64.powi(k as i32);
            let below = v - v * f64::EPSILON;
            assert!(below < v);
            assert_eq!(bucket_of(below), 4 * k as usize - 1, "just below 2^{k}");
            let above = v + v * f64::EPSILON;
            assert_eq!(bucket_of(above), 4 * k as usize, "just above 2^{k}");
        }
    }

    #[test]
    fn bucket_invariant_holds_on_powf_boundaries() {
        // The post-fix invariant: value sits inside its bucket's
        // [2^(b/4), 2^((b+1)/4)) range as computed by powf (the last
        // bucket is a catch-all for everything ≥ 2^(255/4)).
        let mut v = 1.0f64;
        while v < 1e19 {
            let b = bucket_of(v);
            assert!(2f64.powf(b as f64 / SUB) <= v, "v={v} below bucket {b}");
            if b + 1 < NBUCKETS {
                assert!(v < 2f64.powf((b as f64 + 1.0) / SUB), "v={v} above bucket {b}");
            }
            v *= 1.137;
        }
    }

    #[test]
    fn single_observation_quantiles_are_exact() {
        // Clamping to the observed [min, max] must make every quantile
        // of a single-observation histogram exact — including values
        // sitting exactly on bucket boundaries.
        for v in [1.0, 2.0, 1000.0, 1024.0, 2f64.powi(20), 2f64.powi(52), 0.3, 7.25] {
            let mut h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "q={q} v={v}");
            }
        }
    }

    #[test]
    fn reset_clears_in_place() {
        let mut h = Histogram::new();
        for i in 0..100 {
            h.record(i as f64);
        }
        h.reset();
        assert_eq!(h.count(), 0);
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.max, s.mean), (0, 0.0, 0.0, 0.0));
        h.record(5.0);
        assert_eq!(h.summary().max, 5.0);
        assert_eq!(h.summary().p50, 5.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..100 {
            a.record(i as f64);
            b.record((i + 100) as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.summary().max, 199.0);
        assert_eq!(a.summary().min, 0.0);
    }
}
