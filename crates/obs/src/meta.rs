//! Run metadata stamping: git revision + timestamp + seed.
//!
//! Every machine-readable artifact the workspace emits (`TRACE_*.json`,
//! `BENCH_*.json`) is stamped with the same metadata object so the perf
//! trajectory is diffable: two reports can always be attributed to the
//! exact commit and seed that produced them. The git revision is read
//! straight from `.git/HEAD` (no subprocess — the build stays hermetic
//! and works where `git` is not installed).

use std::path::{Path, PathBuf};

use llmdm_rt::json::Json;

/// Seconds since the Unix epoch (0 if the system clock is before 1970).
pub fn timestamp_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Resolve the current git commit hash by reading `.git/HEAD` (walking
/// up from the current directory; handles both direct detached-HEAD
/// hashes and `ref:` indirection, plus worktree `gitdir:` files).
/// Returns `None` outside a git checkout.
pub fn git_rev() -> Option<String> {
    let start = std::env::current_dir().ok()?;
    git_rev_from(&start)
}

fn git_rev_from(start: &Path) -> Option<String> {
    let mut dir = start.to_path_buf();
    loop {
        let dot_git = dir.join(".git");
        if dot_git.is_dir() {
            return resolve_head(&dot_git);
        }
        if dot_git.is_file() {
            // Worktree: `.git` is a file `gitdir: <path>`.
            let text = std::fs::read_to_string(&dot_git).ok()?;
            let gitdir = text.trim().strip_prefix("gitdir:")?.trim();
            let mut p = PathBuf::from(gitdir);
            if p.is_relative() {
                p = dir.join(p);
            }
            return resolve_head(&p);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn resolve_head(git_dir: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git_dir.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(reference) = head.strip_prefix("ref:") {
        let reference = reference.trim();
        if let Ok(hash) = std::fs::read_to_string(git_dir.join(reference)) {
            return Some(hash.trim().to_string());
        }
        // Packed refs fallback.
        let packed = std::fs::read_to_string(git_dir.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some((hash, name)) = line.split_once(' ') {
                if name.trim() == reference {
                    return Some(hash.trim().to_string());
                }
            }
        }
        return None;
    }
    (!head.is_empty()).then(|| head.to_string())
}

/// The shared metadata object: `git_rev`, `timestamp_unix`, and `seed`
/// (null when no seed applies). Returned as JSON object fields so both
/// the trace exporter and the bench harness embed the identical shape.
pub fn run_meta(seed: Option<u64>) -> Vec<(String, Json)> {
    vec![
        (
            "git_rev".to_string(),
            match git_rev() {
                Some(rev) => Json::Str(rev),
                None => Json::Null,
            },
        ),
        ("timestamp_unix".to_string(), Json::Num(timestamp_unix() as f64)),
        (
            "seed".to_string(),
            match seed {
                Some(s) => Json::Num(s as f64),
                None => Json::Null,
            },
        ),
    ]
}


/// Generate `main` for a `harness = false` bench target, like
/// `llmdm_rt::criterion_main!` but stamping the emitted
/// `BENCH_<binary>.json` with [`run_meta`] (git rev + timestamp + the
/// `LLMDM_BENCH_SEED` env seed, default 42) so baseline reports are
/// attributable and diffable.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::__rt::bench::Criterion::default();
            $($group(&mut c);)+
            let bin = std::env::args()
                .next()
                .and_then(|p| {
                    std::path::Path::new(&p)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                })
                .map(|s| s.split('-').next().unwrap_or(&s).to_string())
                .unwrap_or_else(|| "bench".to_string());
            let seed = std::env::var("LLMDM_BENCH_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(42);
            let meta = $crate::run_meta(Some(seed));
            let path = $crate::__rt::bench::report_dir().join(format!("BENCH_{bin}.json"));
            match c.write_json_with_meta(&path, &bin, &meta) {
                Ok(_) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_is_sane() {
        // After 2020-01-01, before 2100.
        let t = timestamp_unix();
        assert!(t > 1_577_836_800, "timestamp {t}");
        assert!(t < 4_102_444_800, "timestamp {t}");
    }

    #[test]
    fn run_meta_shape() {
        let meta = run_meta(Some(7));
        let obj = Json::Obj(meta);
        assert_eq!(obj.get("seed").unwrap().as_u64().unwrap(), 7);
        assert!(obj.get("timestamp_unix").unwrap().as_u64().unwrap() > 0);
        // git_rev may be null outside a checkout, but the field exists.
        assert!(obj.get("git_rev").is_some());
        // And without a seed the field is null, not absent.
        let no_seed = Json::Obj(run_meta(None));
        assert_eq!(no_seed.get("seed").unwrap(), &Json::Null);
    }

    #[test]
    fn git_rev_in_this_repo_resolves() {
        // The workspace is a git repository; from its root the rev must
        // resolve to a 40-hex-char hash.
        let root = {
            let mut d = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            d.pop(); // crates/
            d.pop(); // repo root
            d
        };
        if root.join(".git").exists() {
            let rev = git_rev_from(&root).expect("rev resolves in a checkout");
            assert_eq!(rev.len(), 40, "rev {rev}");
            assert!(rev.chars().all(|c| c.is_ascii_hexdigit()), "rev {rev}");
        }
    }
}
