//! Panic-safety fuzzing: arbitrary query text may be rejected with a
//! typed [`llmdm_sqlengine::SqlError`], but must never panic — the
//! engine sits behind `llmdm-serve` worker threads where a panic poisons
//! the worker. Two generators drive `Database::execute_script` (and the
//! direct-executor oracle) under `catch_unwind`:
//!
//! * **token soup** — random sequences of SQL-ish fragments, heavy on
//!   the constructs with tricky code paths (nesting, LIKE patterns,
//!   ordinals, aggregates, set ops);
//! * **mutated seeds** — well-formed queries with a random splice of
//!   random bytes, which keeps most of the structure intact so execution
//!   (not just parsing) gets exercised.

use std::panic::{catch_unwind, AssertUnwindSafe};

use llmdm_rt::proptest;
use llmdm_rt::proptest::prelude::*;
use llmdm_sqlengine::exec::execute_select_direct;
use llmdm_sqlengine::{parse_statement, Database, ModelHandle, Statement};

fn tiny_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE t (a INT, b TEXT); \
         CREATE TABLE u (a INT, c FLOAT); \
         INSERT INTO t VALUES (1, 'x'), (2, NULL), (3, 'y%z'); \
         INSERT INTO u VALUES (1, 0.5), (2, NULL), (4, -2.25)",
    )
    .unwrap();
    // Semantic operators route through the deterministic sim model, so
    // fuzzed LLM_MAP/LLM_FILTER/LLM_JOIN fragments exercise the full
    // model path (including model-side errors), not just the
    // "no model attached" rejection.
    db.set_model(ModelHandle::sim(1));
    db
}

/// Neither the planner path nor the direct oracle may panic on `sql`.
fn assert_no_panic(sql: &str) -> Result<(), TestCaseError> {
    let planned = catch_unwind(AssertUnwindSafe(|| {
        let mut db = tiny_db();
        let _ = db.execute_script(sql);
    }));
    prop_assert!(planned.is_ok(), "planner path panicked on: {sql}");
    if let Ok(Statement::Select(stmt)) = parse_statement(sql) {
        let direct = catch_unwind(AssertUnwindSafe(|| {
            let db = tiny_db();
            let _ = execute_select_direct(&db, &stmt);
        }));
        prop_assert!(direct.is_ok(), "direct path panicked on: {sql}");
    }
    Ok(())
}

const FRAGMENTS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "HAVING", "LIMIT", "OFFSET", "DISTINCT",
    "UNION", "ALL", "INTERSECT", "EXCEPT", "JOIN", "LEFT", "ON", "AND", "OR", "NOT", "IN",
    "EXISTS", "LIKE", "BETWEEN", "IS", "NULL", "AS", "COUNT", "SUM", "AVG", "MIN", "MAX",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE", "DROP", "BEGIN",
    "COMMIT", "ROLLBACK", "EXPLAIN", "t", "u", "a", "b", "c", "*", "t.*", "t.a", "u.c", "(",
    ")", ",", ".", ";", "=", "!=", "<", ">=", "+", "-", "/", "%", "0", "1", "2", "9999999999",
    "9223372036854775807", "1.5", "'x'", "'%'", "'%_%'", "''", "'o''brien'", "TRUE", "FALSE",
    "__sort0", "LLM_MAP", "LLM_FILTER", "LLM_MATCH", "LLM_JOIN", "'upper'", "'hard garbled'",
    "ANALYZE",
];

const SEEDS: &[&str] = &[
    "SELECT a, b FROM t WHERE a > 1 ORDER BY b DESC LIMIT 2",
    "SELECT t.a, u.c FROM t JOIN u ON t.a = u.a WHERE u.c IS NOT NULL",
    "SELECT t.b FROM t LEFT JOIN u ON t.a = u.a WHERE u.a IS NULL",
    "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 0 ORDER BY COUNT(*) DESC",
    "SELECT DISTINCT b FROM t UNION SELECT b FROM t ORDER BY b",
    "SELECT a FROM t WHERE a IN (SELECT a FROM u WHERE c > 0.0)",
    "SELECT b FROM t WHERE b LIKE '%y%' AND a BETWEEN 1 AND 3",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u) ORDER BY 1",
    "SELECT (SELECT MAX(c) FROM u) AS mx, a FROM t ORDER BY a",
    "INSERT INTO t VALUES (4, 'w')",
    "UPDATE t SET b = 'q' WHERE a = 1",
    "DELETE FROM t WHERE a > 2",
    "EXPLAIN SELECT a FROM t WHERE a > 1 ORDER BY b LIMIT 1",
    "SELECT LLM_MAP(b, 'upper') FROM t WHERE LLM_FILTER(b, 'non-empty') AND a > 0",
    "SELECT t.b FROM t LLM_JOIN u ON LLM_MATCH(t.a, u.c, 'same?') ORDER BY 1",
    "EXPLAIN ANALYZE SELECT LLM_MAP(b, 'hard') FROM t",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn token_soup_never_panics(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..28),
    ) {
        let sql: Vec<&str> = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        assert_no_panic(&sql.join(" "))?;
    }

    #[test]
    fn mutated_seed_queries_never_panic(
        seed in 0usize..SEEDS.len(),
        at in 0usize..80,
        remove in 0usize..8,
        splice in "[ -~]{0,12}",
    ) {
        let base = SEEDS[seed];
        let at = at.min(base.len());
        let end = (at + remove).min(base.len());
        // Splice on char boundaries (seeds are ASCII, so any index works).
        let sql = format!("{}{}{}", &base[..at], splice, &base[end..]);
        assert_no_panic(&sql)?;
    }

    #[test]
    fn deep_nesting_never_crashes(depth in 1usize..300, which in 0usize..3) {
        let sql = match which {
            0 => format!("SELECT {}1{}", "(".repeat(depth), ")".repeat(depth)),
            1 => format!("SELECT {}TRUE", "NOT ".repeat(depth)),
            _ => format!("SELECT {}1", "-".repeat(depth)),
        };
        assert_no_panic(&sql)?;
    }
}
