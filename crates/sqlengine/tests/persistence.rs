//! Differential gate for durable tables: the same workload executed on
//! a plain in-memory [`Database`] and on a store-backed
//! [`PersistentDb`] must produce **bit-identical** query results — via
//! the Volcano planner and via the direct-execution oracle — before and
//! after a process restart, and after crash recovery.

use llmdm_sqlengine::exec::{execute_select, execute_select_direct};
use llmdm_sqlengine::{parse_statement, Database, PersistentDb, Statement};
use llmdm_store::{KillPoint, MemVfs, StorageFaults, StoreConfig};

const DDL: &str = "CREATE TABLE orders (id INT, item TEXT, qty INT, price FLOAT, rush BOOL)";

fn workload() -> Vec<String> {
    let mut stmts = Vec::new();
    let items = ["widget", "gadget", "sprocket", "doohickey"];
    for i in 0..40 {
        stmts.push(format!(
            "INSERT INTO orders VALUES ({i}, '{}', {}, {}.{:02}, {})",
            items[i % items.len()],
            (i * 7) % 13 + 1,
            (i * 31) % 90 + 1,
            (i * 17) % 100,
            if i % 3 == 0 { "TRUE" } else { "FALSE" }
        ));
    }
    stmts.push("DELETE FROM orders WHERE qty > 11".to_string());
    stmts.push("UPDATE orders SET price = price * 2 WHERE rush = TRUE".to_string());
    stmts
}

const QUERIES: &[&str] = &[
    "SELECT * FROM orders ORDER BY id",
    "SELECT item, SUM(qty) FROM orders GROUP BY item ORDER BY item",
    "SELECT id, price FROM orders WHERE price > 50.0 ORDER BY price DESC, id",
    "SELECT COUNT(*) FROM orders WHERE rush = TRUE",
];

fn select_stmt(sql: &str) -> llmdm_sqlengine::SelectStmt {
    match parse_statement(sql).unwrap() {
        Statement::Select(s) => s,
        other => panic!("expected SELECT, got {other:?}"),
    }
}

/// Assert every query agrees bit-exactly between `oracle` (in-memory)
/// and `subject` (persistent), through both execution paths.
fn assert_differential(oracle: &Database, subject: &mut PersistentDb, ctx: &str) {
    for q in QUERIES {
        let sel = select_stmt(q);
        let want_planned = execute_select(oracle, &sel).unwrap();
        let want_direct = execute_select_direct(oracle, &sel).unwrap();
        assert!(
            want_planned.bit_eq(&want_direct),
            "{ctx}: oracle planner/direct disagree on {q}"
        );
        // Through PersistentDb::query (refreshes from the store first).
        let got = subject.query(q).unwrap();
        assert!(got.bit_eq(&want_planned), "{ctx}: persistent planner result differs on {q}");
        // And through the direct oracle over the reloaded catalog.
        let got_direct = execute_select_direct(subject.database(), &sel).unwrap();
        assert!(got_direct.bit_eq(&want_direct), "{ctx}: persistent direct result differs on {q}");
    }
}

#[test]
fn persisted_scans_bit_equal_the_in_memory_oracle() {
    let vfs = MemVfs::shared();
    let mut mem = Database::new();
    mem.execute(DDL).unwrap();
    let mut per = PersistentDb::open(vfs.clone(), StoreConfig::default()).unwrap();
    per.execute(&format!("{DDL} PERSIST")).unwrap();

    for stmt in workload() {
        mem.execute(&stmt).unwrap();
        per.execute(&stmt).unwrap();
    }
    assert_differential(&mem, &mut per, "live");

    // Restart: drop the persistent session, re-open from the same disk.
    drop(per);
    let mut per = PersistentDb::open(vfs.clone(), StoreConfig::default()).unwrap();
    assert_differential(&mem, &mut per, "after restart");
}

#[test]
fn recovery_after_mid_commit_kill_preserves_bit_equality() {
    // Kill the store inside the sqlengine's own write-back commit, then
    // recover and check the surviving prefix still matches an oracle
    // replay of the statements that committed.
    let stmts = workload();

    // Recording pass: run the full workload once to learn the simulated
    // tick of each commit barrier, then schedule the kill on a
    // mid-workload WAL-append barrier.
    let kill_tick = {
        let vfs = MemVfs::shared();
        let mut rec = PersistentDb::open(
            vfs,
            StoreConfig::with_faults(StorageFaults::recording()),
        )
        .unwrap();
        rec.execute(&format!("{DDL} PERSIST")).unwrap();
        for stmt in &stmts {
            rec.execute(stmt).unwrap();
        }
        let appends: Vec<_> = rec
            .store()
            .faults()
            .ops()
            .into_iter()
            .filter(|o| o.point == KillPoint::PostWalAppend)
            .collect();
        appends[appends.len() / 2].at_ms
    };

    let vfs = MemVfs::shared();
    let mut per = PersistentDb::open(
        vfs.clone(),
        StoreConfig::with_faults(StorageFaults::kill_at(KillPoint::PostWalAppend, kill_tick)),
    )
    .unwrap();
    per.execute(&format!("{DDL} PERSIST")).unwrap();
    let mut survived = 0usize;
    for stmt in &stmts {
        match per.execute(stmt) {
            Ok(_) => survived += 1,
            Err(e) => {
                assert!(e.to_string().contains("killed"), "unexpected error: {e}");
                break;
            }
        }
    }
    assert!(survived < stmts.len(), "the kill must interrupt the workload");
    drop(per);
    llmdm_rt::lock_recover(&vfs).crash();

    // Oracle: replay only the statements whose write-back committed.
    // The dying statement's store txn never synced, so exactly
    // `survived` statements are durable.
    let mut mem = Database::new();
    mem.execute(DDL).unwrap();
    for stmt in &stmts[..survived] {
        mem.execute(stmt).unwrap();
    }

    let mut per = PersistentDb::open(vfs, StoreConfig::default()).unwrap();
    assert_differential(&mem, &mut per, "after crash recovery");
}
