//! Property-based tests for the SQL engine: printer/parser round-trips
//! over generated ASTs, value-ordering laws, and executor invariants.

use llmdm_sqlengine::ast::{BinOp, Expr, SelectItem, SelectStmt, Statement};
use llmdm_sqlengine::{parse_statement, print_statement, Database, Value};
use llmdm_rt::proptest;
use llmdm_rt::proptest::prelude::*;

// ---------- generated expression ASTs ----------

fn literal_strategy() -> impl Strategy<Value = Expr> {
    // Non-negative numerics only: `-5` re-parses as `Neg(5)` by design
    // (SQL has no negative literals), so negative values are not in the
    // printer's canonical form.
    prop_oneof![
        (0i64..1_000_000).prop_map(Expr::lit),
        (0i64..1000).prop_map(|i| Expr::Literal(Value::Float(i as f64 / 8.0))),
        "[a-z ]{0,12}".prop_map(|s| Expr::Literal(Value::Str(s))),
        any::<bool>().prop_map(Expr::lit),
        Just(Expr::Literal(Value::Null)),
    ]
}

fn column_strategy() -> impl Strategy<Value = Expr> {
    // Identifiers that cannot collide with reserved words.
    "[a-z][a-z0-9_]{0,8}col".prop_map(|name| Expr::col(&name))
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal_strategy(), column_strategy()];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul),
                Just(BinOp::Eq), Just(BinOp::Lt), Just(BinOp::Ge),
                Just(BinOp::And), Just(BinOp::Or),
            ])
                .prop_map(|(l, r, op)| Expr::bin(op, l, r)),
            (inner.clone(), proptest::collection::vec(literal_strategy(), 1..4), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated
            }),
            (inner, "[a-z%_]{0,8}", any::<bool>()).prop_map(|(e, pattern, negated)| Expr::Like {
                expr: Box::new(e),
                pattern,
                negated
            }),
        ]
    })
}

fn select_strategy() -> impl Strategy<Value = SelectStmt> {
    (
        proptest::collection::vec(expr_strategy(), 1..4),
        proptest::option::of(expr_strategy()),
        any::<bool>(),
        proptest::option::of(0usize..100),
    )
        .prop_map(|(projections, selection, distinct, limit)| {
            let mut s = SelectStmt::empty();
            s.distinct = distinct;
            s.projections = projections
                .into_iter()
                .map(|expr| SelectItem::Expr { expr, alias: None })
                .collect();
            s.from = vec![llmdm_sqlengine::ast::FromItem {
                table: "t".to_string(),
                alias: None,
                join: None,
            }];
            s.selection = selection;
            s.limit = limit;
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse is the identity on generated SELECT ASTs.
    #[test]
    fn printer_parser_roundtrip(select in select_strategy()) {
        let stmt = Statement::Select(select);
        let printed = print_statement(&stmt);
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse failed for {printed:?}: {e}"));
        prop_assert_eq!(stmt, reparsed);
    }

    /// Value total ordering is reflexive, antisymmetric, and transitive.
    #[test]
    fn value_total_order_laws(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    /// LIMIT never yields more rows, and result arity matches projections.
    #[test]
    fn limit_and_arity_invariants(
        rows in proptest::collection::vec((any::<i32>(), "[a-z]{0,6}"), 0..20),
        limit in 0usize..10,
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INT, s TEXT)").unwrap();
        for (x, s) in &rows {
            db.execute(&format!("INSERT INTO t VALUES ({x}, '{s}')")).unwrap();
        }
        let rs = db.query(&format!("SELECT x, s FROM t LIMIT {limit}")).unwrap();
        prop_assert!(rs.rows.len() <= limit);
        prop_assert!(rs.rows.iter().all(|r| r.len() == 2));
        let all = db.query("SELECT x, s FROM t").unwrap();
        prop_assert_eq!(all.rows.len(), rows.len());
    }

    /// WHERE filters exactly match direct evaluation: the engine and a
    /// hand rolled filter agree on row counts.
    #[test]
    fn where_matches_manual_filter(
        rows in proptest::collection::vec(-50i64..50, 0..30),
        threshold in -50i64..50,
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        for x in &rows {
            db.execute(&format!("INSERT INTO t VALUES ({x})")).unwrap();
        }
        let rs = db.query(&format!("SELECT x FROM t WHERE x > {threshold}")).unwrap();
        let expected = rows.iter().filter(|&&x| x > threshold).count();
        prop_assert_eq!(rs.rows.len(), expected);
    }

    /// ORDER BY produces a sorted permutation of the unordered result.
    #[test]
    fn order_by_is_sorted_permutation(rows in proptest::collection::vec(-99i64..99, 0..25)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        for x in &rows {
            db.execute(&format!("INSERT INTO t VALUES ({x})")).unwrap();
        }
        let ordered = db.query("SELECT x FROM t ORDER BY x").unwrap();
        let plain = db.query("SELECT x FROM t").unwrap();
        prop_assert!(ordered.bag_eq(&plain));
        let vals: Vec<i64> = ordered
            .rows
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Aggregates agree with hand computation.
    #[test]
    fn aggregates_match_manual(rows in proptest::collection::vec(-100i64..100, 1..25)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        for x in &rows {
            db.execute(&format!("INSERT INTO t VALUES ({x})")).unwrap();
        }
        let rs = db.query("SELECT COUNT(*), SUM(x), MIN(x), MAX(x) FROM t").unwrap();
        prop_assert_eq!(&rs.rows[0][0], &Value::Int(rows.len() as i64));
        prop_assert_eq!(&rs.rows[0][1], &Value::Int(rows.iter().sum::<i64>()));
        prop_assert_eq!(&rs.rows[0][2], &Value::Int(*rows.iter().min().unwrap()));
        prop_assert_eq!(&rs.rows[0][3], &Value::Int(*rows.iter().max().unwrap()));
    }

    /// A transaction that rolls back leaves the table bit-identical.
    #[test]
    fn rollback_restores_exactly(
        initial in proptest::collection::vec(-20i64..20, 0..15),
        mutation in -20i64..20,
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        for x in &initial {
            db.execute(&format!("INSERT INTO t VALUES ({x})")).unwrap();
        }
        let before = db.query("SELECT x FROM t").unwrap();
        db.execute("BEGIN").unwrap();
        db.execute(&format!("INSERT INTO t VALUES ({mutation})")).unwrap();
        db.execute(&format!("UPDATE t SET x = x + 1 WHERE x < {mutation}")).unwrap();
        db.execute("ROLLBACK").unwrap();
        let after = db.query("SELECT x FROM t").unwrap();
        prop_assert!(before.bag_eq(&after));
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e6f64..1e6).prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}
