//! Differential gate for semantic operators: every `LLM_MAP` /
//! `LLM_FILTER` / `LLM_JOIN … ON LLM_MATCH` query runs on both the
//! Volcano planner (with per-operator prompt dedup and a semantic cache
//! in front of the model) and the pre-planner direct executor (which
//! calls the model once per row, no dedup), and the results must be
//! **bit-identical** under the same seeded [`ModelHandle::sim`].
//!
//! This only holds because the simulated model keys every completion on
//! `(seed, prompt)` alone — call order, call count, caching, and retries
//! can never change an answer. The same property makes semantic query
//! results byte-reproducible across a PERSIST-table restart, which the
//! last test pins.

use llmdm_sqlengine::exec::{execute_select, execute_select_direct};
use llmdm_sqlengine::{parse_statement, Database, ModelHandle, PersistentDb, Statement};
use llmdm_store::{MemVfs, StoreConfig};

const SEED: u64 = 0xC0FFEE;

fn fixture() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE products (id INT, name TEXT, blurb TEXT, price INT); \
         CREATE TABLE reviews (rid INT, product TEXT, body TEXT); \
         CREATE TABLE vacant (id INT, name TEXT); \
         INSERT INTO products VALUES \
           (1, 'Eagle Arena', 'great venue, love it', 50), \
           (2, 'River Dome', 'terrible and ugly', 30), \
           (3, 'SUN BOWL', 'fine i guess', 45), \
           (4, 'sun bowl', NULL, 20), \
           (5, 'Metro Field', 'great great great', 20); \
         INSERT INTO reviews VALUES \
           (10, 'eagle arena ', 'love the sightlines'), \
           (11, 'Sun Bowl', 'awful parking'), \
           (12, 'nowhere', 'n/a')",
    )
    .unwrap();
    db.set_model(ModelHandle::sim(SEED));
    db
}

fn check(db: &Database, sql: &str) {
    let stmt = parse_statement(sql).unwrap_or_else(|e| panic!("parse failed for {sql}: {e}"));
    let Statement::Select(s) = stmt else { panic!("not a SELECT: {sql}") };
    let planned = execute_select(db, &s);
    let direct = execute_select_direct(db, &s);
    match (planned, direct) {
        (Ok(p), Ok(d)) => assert!(
            p.bit_eq(&d),
            "planner/direct divergence on {sql}\n planner: {p:?}\n direct:  {d:?}"
        ),
        (Err(_), Err(_)) => {}
        (p, d) => panic!("one path errored on {sql}\n planner: {p:?}\n direct:  {d:?}"),
    }
}

fn check_all(queries: &[&str]) {
    let db = fixture();
    for sql in queries {
        check(&db, sql);
    }
}

#[test]
fn llm_map_projections_match_direct() {
    check_all(&[
        "SELECT LLM_MAP(name, 'upper') FROM products",
        "SELECT id, LLM_MAP(blurb, 'sentiment') FROM products",
        "SELECT LLM_MAP(name, 'categorize') AS cat, price FROM products ORDER BY price, cat",
        "SELECT LLM_MAP(name, 'length') FROM products WHERE price > 25",
        "SELECT DISTINCT LLM_MAP(name, 'lower') FROM products",
        "SELECT LLM_MAP(name, 'upper') FROM products ORDER BY LLM_MAP(name, 'lower') LIMIT 3",
        "SELECT LLM_MAP(name, 'upper') FROM vacant",
        // NULL input short-circuits to NULL without a model call.
        "SELECT LLM_MAP(blurb, 'upper') FROM products WHERE id = 4",
    ]);
}

#[test]
fn llm_filter_predicates_match_direct() {
    check_all(&[
        "SELECT name FROM products WHERE LLM_FILTER(blurb, 'positive sentiment?')",
        // Mixed cheap + semantic conjuncts exercise the reorder rule:
        // the planner runs `price > 25` first, the oracle evaluates
        // left-to-right — row sets must still agree.
        "SELECT name FROM products WHERE price > 25 AND LLM_FILTER(blurb, 'positive sentiment?')",
        "SELECT name FROM products WHERE LLM_FILTER(blurb, 'positive sentiment?') AND price > 25",
        "SELECT name FROM products WHERE LLM_FILTER(name, 'non-empty') OR price < 25",
        "SELECT COUNT(*) FROM products WHERE LLM_FILTER(blurb, 'positive sentiment?')",
        "SELECT name FROM vacant WHERE LLM_FILTER(name, 'non-empty')",
    ]);
}

#[test]
fn llm_join_and_match_match_direct() {
    check_all(&[
        "SELECT p.name, r.body FROM products p LLM_JOIN reviews r \
           ON LLM_MATCH(p.name, r.product, 'same venue?') ORDER BY p.id, r.rid",
        "SELECT p.name, r.rid FROM products p LLM_JOIN reviews r \
           ON LLM_MATCH(p.name, r.product, 'exact') ORDER BY p.id, r.rid",
        // Semantic ON combined with a cheap conjunct.
        "SELECT p.name, r.rid FROM products p LLM_JOIN reviews r \
           ON LLM_MATCH(p.name, r.product, 'same venue?') AND p.price > 25 ORDER BY r.rid",
        // LEFT JOIN keeps the semantic predicate inside the join operator.
        "SELECT p.name, r.rid FROM products p LEFT JOIN reviews r \
           ON LLM_MATCH(p.name, r.product, 'same venue?') ORDER BY p.id, r.rid",
        "SELECT LLM_MATCH(name, blurb, 'related?') FROM products",
    ]);
}

#[test]
fn llm_in_aggregates_matches_direct() {
    check_all(&[
        "SELECT LLM_MAP(name, 'lower') AS k, COUNT(*) FROM products GROUP BY LLM_MAP(name, 'lower') ORDER BY k",
        "SELECT COUNT(*) FROM products GROUP BY LLM_MAP(name, 'categorize') \
           HAVING COUNT(*) > 0 ORDER BY 1",
    ]);
}

#[test]
fn model_error_paths_agree() {
    let db = fixture();
    // 'hard' drives difficulty to 0.95: most prompts fail or corrupt,
    // deterministically per (seed, prompt) — both paths must agree
    // row-for-row on error vs. success.
    for sql in [
        "SELECT LLM_MAP(name, 'hard question') FROM products",
        "SELECT name FROM products WHERE LLM_FILTER(blurb, 'hard garbled riddle')",
        "SELECT p.name FROM products p LLM_JOIN reviews r \
           ON LLM_MATCH(p.name, r.product, 'hard to say')",
    ] {
        check(&db, sql);
    }
    // No model attached: both paths must fail with the same class of
    // error rather than diverge.
    let bare = {
        let mut d = Database::new();
        d.execute("CREATE TABLE t (x TEXT)").unwrap();
        d.execute("INSERT INTO t VALUES ('a')").unwrap();
        d
    };
    check(&bare, "SELECT LLM_MAP(x, 'upper') FROM t");
}

#[test]
fn semantic_results_are_byte_reproducible_across_persist_restart() {
    let vfs = MemVfs::shared();
    let queries = [
        "SELECT LLM_MAP(name, 'upper') FROM p ORDER BY id",
        "SELECT name FROM p WHERE LLM_FILTER(blurb, 'positive sentiment?') ORDER BY id",
    ];

    let before = {
        let mut per = PersistentDb::open(vfs.clone(), StoreConfig::default()).unwrap();
        per.execute("CREATE TABLE p (id INT, name TEXT, blurb TEXT) PERSIST").unwrap();
        per.execute(
            "INSERT INTO p VALUES (1, 'Eagle Arena', 'great venue'), \
             (2, 'River Dome', 'terrible'), (3, 'Sun Bowl', 'love it')",
        )
        .unwrap();
        per.set_model(ModelHandle::sim(SEED));
        queries.iter().map(|q| per.query(q).unwrap()).collect::<Vec<_>>()
    };

    // Restart: reopen from the same disk image; the model handle does
    // not persist and must be re-attached (same seed → same bytes).
    let mut per = PersistentDb::open(vfs, StoreConfig::default()).unwrap();
    per.set_model(ModelHandle::sim(SEED));
    for (q, want) in queries.iter().zip(&before) {
        let got = per.query(q).unwrap();
        assert!(got.bit_eq(want), "restart changed bytes for {q}\n before: {want:?}\n after: {got:?}");
    }

    // And the reloaded catalog still passes the planner/direct gate.
    for q in &queries {
        check(per.database(), q);
    }
}
