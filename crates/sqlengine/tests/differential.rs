//! Differential harness: every SELECT in the corpus runs on both the
//! Volcano planner (the production path) and the pre-planner direct
//! executor (the oracle), and the results must be **bit-identical** —
//! same columns, same row order, same values compared with
//! [`llmdm_sqlengine::ResultSet::bit_eq`] (floats by bit pattern).
//!
//! If both paths error the case passes (error *messages* may differ when
//! a rewrite changes evaluation order); one-sided errors fail.

use llmdm_sqlengine::exec::{execute_select, execute_select_direct};
use llmdm_sqlengine::{parse_statement, Database, Statement};

/// Concert/stadium fixture (the workspace-wide Spider-style schema) plus
/// a NULL-heavy scores table and an empty table.
fn fixture() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE stadium (stadium_id INT, name TEXT, capacity INT, city TEXT); \
         CREATE TABLE concert (concert_id INT, stadium_id INT, year INT, attendance INT); \
         CREATE TABLE sports_meeting (meeting_id INT, stadium_id INT, year INT); \
         CREATE TABLE scores (id INT, points FLOAT, tag TEXT); \
         CREATE TABLE vacant (id INT, x TEXT); \
         INSERT INTO stadium VALUES \
           (1, 'Eagle Arena', 50000, 'Springfield'), \
           (2, 'River Dome', 30000, 'Shelbyville'), \
           (3, 'Sun Bowl', 45000, 'Ogdenville'), \
           (4, 'Metro Field', 20000, 'North Haverbrook'); \
         INSERT INTO concert VALUES \
           (10, 1, 2014, 40000), (11, 1, 2014, 42000), (12, 2, 2014, 25000), \
           (13, 3, 2015, 30000), (14, 1, 2015, 41000); \
         INSERT INTO sports_meeting VALUES (20, 2, 2015), (21, 3, 2015), (22, 1, 2016); \
         INSERT INTO scores VALUES \
           (1, 2.5, 'a'), (2, NULL, 'b'), (3, 1.0, NULL), (4, NULL, 'a'), \
           (5, 3.0, 'c'), (6, 0.0, NULL), (7, -1.5, 'b')",
    )
    .unwrap();
    db
}

fn check(db: &Database, sql: &str) {
    let stmt = parse_statement(sql).unwrap_or_else(|e| panic!("parse failed for {sql}: {e}"));
    let Statement::Select(s) = stmt else { panic!("not a SELECT: {sql}") };
    let planned = execute_select(db, &s);
    let direct = execute_select_direct(db, &s);
    match (planned, direct) {
        (Ok(p), Ok(d)) => assert!(
            p.bit_eq(&d),
            "planner/direct divergence on {sql}\n planner: {p:?}\n direct:  {d:?}"
        ),
        (Err(_), Err(_)) => {}
        (p, d) => panic!("one path errored on {sql}\n planner: {p:?}\n direct:  {d:?}"),
    }
}

fn check_all(queries: &[&str]) {
    let db = fixture();
    for sql in queries {
        check(&db, sql);
    }
}

#[test]
fn scans_filters_and_projections() {
    check_all(&[
        "SELECT * FROM stadium",
        "SELECT name FROM stadium",
        "SELECT name, capacity FROM stadium WHERE capacity > 25000",
        "SELECT name FROM stadium WHERE capacity > 20000 AND city != 'Springfield'",
        "SELECT name FROM stadium WHERE capacity > 60000",
        "SELECT capacity * 2, name FROM stadium WHERE capacity >= 30000",
        "SELECT stadium.name FROM stadium WHERE stadium.capacity < 40000",
        "SELECT s.* FROM stadium s WHERE s.city LIKE '%ville'",
        "SELECT name FROM stadium WHERE capacity BETWEEN 25000 AND 46000",
        "SELECT name FROM stadium WHERE city NOT LIKE 'S%'",
        "SELECT name FROM stadium WHERE NOT capacity > 30000",
        "SELECT name, capacity + 1000 AS padded FROM stadium WHERE capacity % 2 = 0",
        "SELECT 1 + 1",
        "SELECT 'x', 2.5, TRUE, NULL",
        "SELECT * FROM vacant",
        "SELECT id FROM vacant WHERE x = 'nope'",
    ]);
}

#[test]
fn constant_folding_cases() {
    check_all(&[
        "SELECT name FROM stadium WHERE 1 = 1",
        "SELECT name FROM stadium WHERE 1 = 2",
        "SELECT name FROM stadium WHERE FALSE AND capacity > 0",
        "SELECT name FROM stadium WHERE TRUE OR capacity > 0",
        "SELECT name FROM stadium WHERE capacity > 10000 + 20000",
        "SELECT name FROM stadium WHERE capacity > 100000 / 2 - 20000",
        "SELECT name FROM stadium WHERE 2 BETWEEN 1 AND 3 AND capacity > 25000",
        "SELECT name FROM stadium WHERE 'abc' LIKE 'a%' AND capacity < 50000",
        "SELECT name FROM stadium WHERE NULL IS NULL AND capacity > 0",
    ]);
}

#[test]
fn joins() {
    check_all(&[
        "SELECT s.name, c.year FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id",
        "SELECT s.name, c.year FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id \
         WHERE c.year = 2014",
        "SELECT s.name FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id \
         WHERE s.capacity > 40000 AND c.attendance > 40000",
        "SELECT s.name, c.concert_id FROM stadium s \
         LEFT JOIN concert c ON s.stadium_id = c.stadium_id",
        "SELECT s.name FROM stadium s LEFT JOIN concert c ON s.stadium_id = c.stadium_id \
         WHERE c.concert_id IS NULL",
        "SELECT s.name FROM stadium s LEFT JOIN concert c ON s.stadium_id = c.stadium_id \
         WHERE s.capacity < 60000",
        "SELECT * FROM stadium, sports_meeting",
        "SELECT s.name, m.year FROM stadium s, sports_meeting m \
         WHERE s.stadium_id = m.stadium_id",
        "SELECT s.name, c.year, m.year FROM stadium s \
         JOIN concert c ON s.stadium_id = c.stadium_id \
         JOIN sports_meeting m ON s.stadium_id = m.stadium_id",
        "SELECT a.name, b.name FROM stadium a JOIN stadium b ON a.capacity < b.capacity",
        "SELECT s.name FROM stadium s JOIN concert c ON TRUE WHERE c.year = 2015",
    ]);
}

#[test]
fn aggregates_and_grouping() {
    check_all(&[
        "SELECT COUNT(*) FROM concert",
        "SELECT COUNT(*), SUM(attendance), AVG(attendance), MIN(year), MAX(year) FROM concert",
        "SELECT COUNT(*) FROM vacant",
        "SELECT SUM(points), AVG(points), COUNT(points), COUNT(*) FROM scores",
        "SELECT COUNT(DISTINCT year) FROM concert",
        "SELECT year, COUNT(*) FROM concert GROUP BY year",
        "SELECT year, COUNT(*) FROM concert GROUP BY year HAVING COUNT(*) > 1",
        "SELECT stadium_id, SUM(attendance) FROM concert GROUP BY stadium_id \
         HAVING SUM(attendance) > 50000",
        "SELECT s.name, COUNT(*) FROM stadium s JOIN concert c \
         ON s.stadium_id = c.stadium_id GROUP BY s.name",
        "SELECT tag, COUNT(*), SUM(points) FROM scores GROUP BY tag",
        "SELECT year, stadium_id, COUNT(*) FROM concert GROUP BY year, stadium_id",
        "SELECT MAX(capacity) - MIN(capacity) FROM stadium",
    ]);
}

#[test]
fn ordering_and_limits() {
    check_all(&[
        "SELECT name, capacity FROM stadium ORDER BY capacity",
        "SELECT name, capacity FROM stadium ORDER BY capacity DESC",
        "SELECT name FROM stadium ORDER BY capacity DESC",
        "SELECT name FROM stadium ORDER BY capacity DESC LIMIT 2",
        "SELECT name FROM stadium ORDER BY capacity LIMIT 2 OFFSET 1",
        "SELECT name FROM stadium ORDER BY 1",
        "SELECT name, capacity FROM stadium ORDER BY 2 DESC, 1",
        "SELECT id, points FROM scores ORDER BY points",
        "SELECT id, points FROM scores ORDER BY points DESC",
        "SELECT id FROM scores ORDER BY points, id",
        "SELECT id FROM scores ORDER BY tag DESC, points",
        "SELECT name FROM stadium LIMIT 2",
        "SELECT name FROM stadium LIMIT 0",
        "SELECT name FROM stadium OFFSET 2",
        "SELECT name FROM stadium ORDER BY capacity LIMIT 100",
        "SELECT year, COUNT(*) FROM concert GROUP BY year ORDER BY COUNT(*) DESC",
        "SELECT year FROM concert GROUP BY year ORDER BY COUNT(*) DESC, year",
        "SELECT name AS n FROM stadium ORDER BY n",
        "SELECT s.name FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id \
         ORDER BY c.attendance DESC LIMIT 3",
    ]);
}

#[test]
fn distinct_and_set_ops() {
    check_all(&[
        "SELECT DISTINCT year FROM concert",
        "SELECT DISTINCT stadium_id, year FROM concert",
        "SELECT DISTINCT tag FROM scores",
        "SELECT DISTINCT year FROM concert ORDER BY year DESC",
        "SELECT year FROM concert UNION SELECT year FROM sports_meeting",
        "SELECT year FROM concert UNION ALL SELECT year FROM sports_meeting",
        "SELECT year FROM concert INTERSECT SELECT year FROM sports_meeting",
        "SELECT year FROM concert EXCEPT SELECT year FROM sports_meeting",
        "SELECT stadium_id FROM concert UNION SELECT stadium_id FROM sports_meeting \
         ORDER BY stadium_id DESC",
        "SELECT name FROM stadium WHERE capacity > 40000 \
         UNION SELECT name FROM stadium WHERE capacity < 25000",
        "SELECT year FROM concert UNION SELECT id FROM vacant",
        "SELECT tag FROM scores UNION SELECT city FROM stadium",
    ]);
}

#[test]
fn subqueries() {
    check_all(&[
        "SELECT name FROM stadium WHERE stadium_id IN \
         (SELECT stadium_id FROM concert WHERE year = 2014)",
        "SELECT name FROM stadium WHERE stadium_id NOT IN \
         (SELECT stadium_id FROM concert)",
        "SELECT name FROM stadium WHERE EXISTS (SELECT 1 FROM concert WHERE year = 2099)",
        "SELECT name FROM stadium WHERE NOT EXISTS (SELECT 1 FROM vacant)",
        "SELECT name FROM stadium WHERE capacity = (SELECT MAX(capacity) FROM stadium)",
        "SELECT name, (SELECT COUNT(*) FROM concert) AS total FROM stadium",
        "SELECT name FROM stadium WHERE capacity > (SELECT AVG(capacity) FROM stadium)",
        "SELECT s.name FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id \
         WHERE c.attendance > (SELECT AVG(attendance) FROM concert)",
        "SELECT name FROM stadium WHERE stadium_id IN \
         (SELECT stadium_id FROM concert) AND capacity > 30000",
        "SELECT name FROM stadium WHERE stadium_id IN (SELECT id FROM vacant)",
    ]);
}

#[test]
fn null_semantics() {
    check_all(&[
        "SELECT id FROM scores WHERE points IS NULL",
        "SELECT id FROM scores WHERE points IS NOT NULL",
        "SELECT id FROM scores WHERE points > 1.0",
        "SELECT id FROM scores WHERE points > 1.0 OR points IS NULL",
        "SELECT id, points FROM scores WHERE tag IS NULL ORDER BY id",
        "SELECT id FROM scores WHERE points IN (1.0, 3.0)",
        "SELECT id FROM scores WHERE points NOT IN (1.0, 3.0)",
        "SELECT id FROM scores WHERE points BETWEEN 0.0 AND 2.5",
        "SELECT tag, COUNT(*) FROM scores GROUP BY tag ORDER BY COUNT(*) DESC, tag",
        "SELECT DISTINCT points FROM scores",
        "SELECT id FROM scores ORDER BY points DESC, tag, id LIMIT 4",
    ]);
}

#[test]
fn error_cases_error_on_both_paths() {
    let db = fixture();
    for sql in [
        // Unknown table / column.
        "SELECT * FROM nope",
        "SELECT missing FROM stadium",
        "SELECT q.name FROM stadium",
        // Ambiguous unqualified column across two tables.
        "SELECT stadium_id FROM stadium, concert",
        // Duplicate alias.
        "SELECT * FROM stadium s, concert s",
        // Set-op arity mismatch.
        "SELECT name, capacity FROM stadium UNION SELECT name FROM stadium",
        // ORDER BY aggregate without an aggregate core.
        "SELECT name FROM stadium ORDER BY COUNT(*)",
        // ORDER BY on a column DISTINCT does not project.
        "SELECT DISTINCT name FROM stadium ORDER BY capacity",
        // Type errors.
        "SELECT name + 1 FROM stadium",
        "SELECT name FROM stadium WHERE capacity + city > 0",
    ] {
        check(&db, sql);
    }
}
