//! Expression evaluation.
//!
//! Expressions are evaluated against an [`Env`] of in-scope table rows
//! (one scope per FROM item). Subqueries re-enter the executor against the
//! same database. Aggregate nodes are *not* handled here — the executor
//! evaluates them per group via `eval_grouped` in the executor.

use crate::ast::{BinOp, Expr, SelectStmt, UnOp};
use crate::catalog::Database;
use crate::error::SqlError;
use crate::schema::Schema;
use crate::value::Value;

/// One table in scope: alias, schema, and the row slice.
#[derive(Debug, Clone, Copy)]
pub struct Scope<'a> {
    /// The table's alias (or name when unaliased), lowercase.
    pub alias: &'a str,
    /// The table's schema.
    pub schema: &'a Schema,
    /// This table's portion of the joined row.
    pub row: &'a [Value],
}

/// The evaluation environment: in-scope rows plus the database (for
/// subqueries).
#[derive(Debug, Clone, Copy)]
pub struct Env<'a> {
    /// In-scope tables, FROM order.
    pub scopes: &'a [Scope<'a>],
    /// The database, for subquery execution.
    pub db: &'a Database,
}

impl<'a> Env<'a> {
    /// Resolve a column reference to its value.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Value, SqlError> {
        match qualifier {
            Some(q) => {
                let q = q.to_lowercase();
                for s in self.scopes {
                    if s.alias == q {
                        if let Some(i) = s.schema.index_of(name) {
                            return Ok(s.row[i].clone());
                        }
                        return Err(SqlError::UnknownColumn(format!("{q}.{name}")));
                    }
                }
                Err(SqlError::UnknownColumn(format!("{q}.{name}")))
            }
            None => {
                let mut found: Option<Value> = None;
                for s in self.scopes {
                    if let Some(i) = s.schema.index_of(name) {
                        if found.is_some() {
                            return Err(SqlError::AmbiguousColumn(name.to_string()));
                        }
                        found = Some(s.row[i].clone());
                    }
                }
                found.ok_or_else(|| SqlError::UnknownColumn(name.to_string()))
            }
        }
    }
}

/// Evaluate `expr` in `env`. Errors on aggregate nodes (executor handles
/// those).
pub fn eval(expr: &Expr, env: &Env<'_>) -> Result<Value, SqlError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { qualifier, name } => env.resolve(qualifier.as_deref(), name),
        Expr::Binary { op, left, right } => {
            let (op, left, right) = (*op, left, right);
            match op {
                BinOp::And => {
                    // Short-circuit; NULL-collapsing at the boundary.
                    let l = eval(left, env)?;
                    if matches!(l, Value::Bool(false)) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval(right, env)?;
                    if matches!(r, Value::Bool(false)) {
                        return Ok(Value::Bool(false));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    Ok(Value::Bool(as_bool(&l)? && as_bool(&r)?))
                }
                BinOp::Or => {
                    let l = eval(left, env)?;
                    if matches!(l, Value::Bool(true)) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval(right, env)?;
                    if matches!(r, Value::Bool(true)) {
                        return Ok(Value::Bool(true));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    Ok(Value::Bool(as_bool(&l)? || as_bool(&r)?))
                }
                _ => {
                    let l = eval(left, env)?;
                    let r = eval(right, env)?;
                    eval_binop(op, &l, &r)
                }
            }
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, env)?;
            match op {
                UnOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => i
                        .checked_neg()
                        .map(Value::Int)
                        .ok_or_else(|| SqlError::Exec("integer overflow in negation".into())),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(SqlError::Type(format!("cannot negate {other}"))),
                },
                UnOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(SqlError::Type(format!("NOT expects boolean, got {other}"))),
                },
            }
        }
        Expr::Aggregate { .. } => {
            Err(SqlError::Exec("aggregate used outside GROUP BY context".into()))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, env)?;
                if iv.is_null() {
                    saw_null = true;
                    continue;
                }
                if v.sql_cmp(&iv) == Some(std::cmp::Ordering::Equal) {
                    return Ok(Value::Bool(!negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::InSubquery { expr, subquery, negated } => {
            let v = eval(expr, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let rs = run_subquery(subquery, env.db)?;
            if rs.columns.len() != 1 {
                return Err(SqlError::Exec("IN subquery must project one column".into()));
            }
            let found = rs
                .rows
                .iter()
                .any(|r| v.sql_cmp(&r[0]) == Some(std::cmp::Ordering::Equal));
            Ok(Value::Bool(found != *negated))
        }
        Expr::Exists { subquery, negated } => {
            let rs = run_subquery(subquery, env.db)?;
            Ok(Value::Bool(rs.rows.is_empty() == *negated))
        }
        Expr::ScalarSubquery(subquery) => {
            let rs = run_subquery(subquery, env.db)?;
            if rs.columns.len() != 1 {
                return Err(SqlError::Exec("scalar subquery must project one column".into()));
            }
            match rs.rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(rs.rows[0][0].clone()),
                n => Err(SqlError::Exec(format!("scalar subquery returned {n} rows"))),
            }
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, env)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern) != *negated)),
                other => Err(SqlError::Type(format!("LIKE expects text, got {other}"))),
            }
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, env)?;
            let lo = eval(low, env)?;
            let hi = eval(high, env)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let ge = matches!(
                v.sql_cmp(&lo),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            );
            let le = matches!(
                v.sql_cmp(&hi),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            );
            Ok(Value::Bool((ge && le) != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, env)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::LlmMap { arg, template } => {
            let v = eval(arg, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let prompt = crate::semantic::unary_prompt("map", template, &v);
            Ok(Value::Str(crate::semantic::complete(env.db.model(), &prompt)?))
        }
        Expr::LlmFilter { arg, template } => {
            let v = eval(arg, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let prompt = crate::semantic::unary_prompt("filter", template, &v);
            let text = crate::semantic::complete(env.db.model(), &prompt)?;
            Ok(Value::Bool(crate::semantic::parse_bool(&text)?))
        }
        Expr::LlmMatch { left, right, template } => {
            let l = eval(left, env)?;
            let r = eval(right, env)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let prompt = crate::semantic::match_prompt(template, &l, &r);
            let text = crate::semantic::complete(env.db.model(), &prompt)?;
            Ok(Value::Bool(crate::semantic::parse_bool(&text)?))
        }
    }
}

fn run_subquery(
    subquery: &SelectStmt,
    db: &Database,
) -> Result<crate::result::ResultSet, SqlError> {
    crate::exec::execute_select(db, subquery)
}

fn as_bool(v: &Value) -> Result<bool, SqlError> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(SqlError::Type(format!("expected boolean, got {other}"))),
    }
}

/// Apply a non-logical binary operator with SQL NULL propagation.
pub fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value, SqlError> {
    use std::cmp::Ordering::*;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let Some(ord) = l.sql_cmp(r) else {
                return Err(SqlError::Type(format!("cannot compare {l} with {r}")));
            };
            let b = match op {
                BinOp::Eq => ord == Equal,
                BinOp::Neq => ord != Equal,
                BinOp::Lt => ord == Less,
                BinOp::Le => ord != Greater,
                BinOp::Gt => ord == Greater,
                BinOp::Ge => ord != Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                let v = match op {
                    BinOp::Add => a.checked_add(*b),
                    BinOp::Sub => a.checked_sub(*b),
                    BinOp::Mul => a.checked_mul(*b),
                    BinOp::Div => {
                        if *b == 0 {
                            return Err(SqlError::Exec("division by zero".into()));
                        }
                        a.checked_div(*b)
                    }
                    BinOp::Mod => {
                        if *b == 0 {
                            return Err(SqlError::Exec("modulo by zero".into()));
                        }
                        a.checked_rem(*b)
                    }
                    _ => unreachable!(),
                };
                v.map(Value::Int).ok_or_else(|| SqlError::Exec("integer overflow".into()))
            }
            _ => {
                let (a, b) = match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return Err(SqlError::Type(format!("cannot apply {op:?} to {l} and {r}"))),
                };
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => {
                        if b == 0.0 {
                            return Err(SqlError::Exec("division by zero".into()));
                        }
                        a / b
                    }
                    BinOp::Mod => {
                        if b == 0.0 {
                            return Err(SqlError::Exec("modulo by zero".into()));
                        }
                        a % b
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Float(v))
            }
        },
        // Handled short-circuiting in `eval`/`eval_grouped`; a typed error
        // here keeps stray calls from panicking.
        BinOp::And | BinOp::Or => {
            Err(SqlError::Exec("logical operator outside boolean context".into()))
        }
    }
}

/// SQL LIKE with `%` (any run) and `_` (any char), case-sensitive.
///
/// Iterative two-pointer match with single-`%` backtracking: worst case
/// O(len(s) · len(pattern)), unlike the naive recursive formulation whose
/// backtracking is exponential on patterns like `%a%a%a%…` (a query-text
/// denial-of-service vector).
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    // Position after the most recent `%` and the input position it was
    // tried at; on mismatch, retry from there consuming one more char.
    let mut star: Option<(usize, usize)> = None;
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, si));
            pi += 1;
        } else if let Some((star_pi, star_si)) = star {
            pi = star_pi;
            si = star_si + 1;
            star = Some((star_pi, star_si + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn env_fixture() -> (Database, Schema, Vec<Value>) {
        let db = Database::new();
        let schema = Schema::new(vec![
            Column::new("x", DataType::Int),
            Column::new("name", DataType::Text),
        ]);
        let row = vec![Value::Int(5), Value::Str("alice".into())];
        (db, schema, row)
    }

    fn eval_with(expr: &str) -> Result<Value, SqlError> {
        let (db, schema, row) = env_fixture();
        let scopes = [Scope { alias: "t", schema: &schema, row: &row }];
        let env = Env { scopes: &scopes, db: &db };
        let e = crate::parser::parse_expr(expr)?;
        eval(&e, &env)
    }

    #[test]
    fn column_resolution() {
        assert_eq!(eval_with("x").unwrap(), Value::Int(5));
        assert_eq!(eval_with("t.x").unwrap(), Value::Int(5));
        assert!(matches!(eval_with("t.missing"), Err(SqlError::UnknownColumn(_))));
        assert!(matches!(eval_with("u.x"), Err(SqlError::UnknownColumn(_))));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_with("x * 2 + 1").unwrap(), Value::Int(11));
        assert_eq!(eval_with("7 / 2").unwrap(), Value::Int(3));
        assert_eq!(eval_with("7.0 / 2").unwrap(), Value::Float(3.5));
        assert_eq!(eval_with("7 % 4").unwrap(), Value::Int(3));
        assert!(eval_with("1 / 0").is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval_with("x > 3 AND x < 10").unwrap(), Value::Bool(true));
        assert_eq!(eval_with("x > 3 AND x > 10").unwrap(), Value::Bool(false));
        assert_eq!(eval_with("x > 10 OR name = 'alice'").unwrap(), Value::Bool(true));
        assert_eq!(eval_with("NOT (x = 5)").unwrap(), Value::Bool(false));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(eval_with("NULL + 1").unwrap(), Value::Null);
        assert_eq!(eval_with("x = NULL").unwrap(), Value::Null);
        assert_eq!(eval_with("NULL AND FALSE").unwrap(), Value::Bool(false));
        assert_eq!(eval_with("NULL OR TRUE").unwrap(), Value::Bool(true));
        assert_eq!(eval_with("NULL AND TRUE").unwrap(), Value::Null);
        assert_eq!(eval_with("NULL IS NULL").unwrap(), Value::Bool(true));
        assert_eq!(eval_with("x IS NOT NULL").unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list_semantics() {
        assert_eq!(eval_with("x IN (1, 5, 9)").unwrap(), Value::Bool(true));
        assert_eq!(eval_with("x NOT IN (1, 9)").unwrap(), Value::Bool(true));
        // NULL in list makes a failed match unknown.
        assert_eq!(eval_with("x IN (1, NULL)").unwrap(), Value::Null);
        assert_eq!(eval_with("x IN (5, NULL)").unwrap(), Value::Bool(true));
    }

    #[test]
    fn between() {
        assert_eq!(eval_with("x BETWEEN 1 AND 5").unwrap(), Value::Bool(true));
        assert_eq!(eval_with("x NOT BETWEEN 6 AND 9").unwrap(), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "H%"));
        assert!(!like_match("hello", "h_y%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%%%c"));
        assert!(like_match("mississippi", "%iss%pi"));
        // Pathological backtracking input: must terminate fast, not blow up
        // exponentially like the old recursive matcher.
        let s = "a".repeat(2000);
        let p = "a%".repeat(60) + "b";
        assert!(!like_match(&s, &p));
        assert_eq!(eval_with("name LIKE 'ali%'").unwrap(), Value::Bool(true));
    }

    #[test]
    fn type_errors_reported() {
        assert!(matches!(eval_with("name + 1"), Err(SqlError::Type(_))));
        assert!(matches!(eval_with("x AND TRUE"), Err(SqlError::Type(_))));
        assert!(matches!(eval_with("name < 3"), Err(SqlError::Type(_))));
    }

    #[test]
    fn negation() {
        assert_eq!(eval_with("-x").unwrap(), Value::Int(-5));
        assert_eq!(eval_with("-(x * 1.0)").unwrap(), Value::Float(-5.0));
    }

    #[test]
    fn ambiguous_column_detected() {
        let db = Database::new();
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let row = vec![Value::Int(1)];
        let scopes = [
            Scope { alias: "a", schema: &schema, row: &row },
            Scope { alias: "b", schema: &schema, row: &row },
        ];
        let env = Env { scopes: &scopes, db: &db };
        let e = crate::parser::parse_expr("x").unwrap();
        assert!(matches!(eval(&e, &env), Err(SqlError::AmbiguousColumn(_))));
        let q = crate::parser::parse_expr("b.x").unwrap();
        assert_eq!(eval(&q, &env).unwrap(), Value::Int(1));
    }

    #[test]
    fn negating_i64_min_is_an_error_not_a_panic() {
        // -(-9223372036854775808) overflows i64; lexing produces the value
        // via unary minus on i64::MIN's literal magnitude… which itself is
        // out of range, so build the expression programmatically.
        let db = Database::new();
        let scopes: Vec<Scope<'_>> = Vec::new();
        let env = Env { scopes: &scopes, db: &db };
        let e = Expr::Unary {
            op: crate::ast::UnOp::Neg,
            expr: Box::new(Expr::Literal(Value::Int(i64::MIN))),
        };
        assert!(matches!(eval(&e, &env), Err(SqlError::Exec(_))));
    }
}
