//! AST → SQL text. Round-trips with the parser (property-tested), used by
//! the NL2SQL pipeline to render predicted queries.

use crate::ast::{
    BinOp, Expr, FromItem, JoinType, OrderKey, SelectItem, SelectStmt, SetOp, Statement, UnOp,
};

/// Render a statement as SQL.
pub fn print_statement(stmt: &Statement) -> String {
    match stmt {
        Statement::Select(s) => print_select(s),
        Statement::Explain { analyze, select } => {
            format!("EXPLAIN {}{}", if *analyze { "ANALYZE " } else { "" }, print_select(select))
        }
        Statement::Insert { table, columns, values } => {
            let cols = match columns {
                Some(cs) => format!(" ({})", cs.join(", ")),
                None => String::new(),
            };
            let rows: Vec<String> = values
                .iter()
                .map(|row| {
                    let vals: Vec<String> = row.iter().map(print_expr).collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            format!("INSERT INTO {table}{cols} VALUES {}", rows.join(", "))
        }
        Statement::Update { table, assignments, selection } => {
            let sets: Vec<String> = assignments
                .iter()
                .map(|a| format!("{} = {}", a.column, print_expr(&a.value)))
                .collect();
            let mut s = format!("UPDATE {table} SET {}", sets.join(", "));
            if let Some(w) = selection {
                s.push_str(&format!(" WHERE {}", print_expr(w)));
            }
            s
        }
        Statement::Delete { table, selection } => {
            let mut s = format!("DELETE FROM {table}");
            if let Some(w) = selection {
                s.push_str(&format!(" WHERE {}", print_expr(w)));
            }
            s
        }
        Statement::CreateTable { table, columns, if_not_exists, persist } => {
            let ine = if *if_not_exists { "IF NOT EXISTS " } else { "" };
            let cols: Vec<String> =
                columns.iter().map(|(n, t)| format!("{n} {t}")).collect();
            let p = if *persist { " PERSIST" } else { "" };
            format!("CREATE TABLE {ine}{table} ({}){p}", cols.join(", "))
        }
        Statement::DropTable { table, if_exists } => {
            let ie = if *if_exists { "IF EXISTS " } else { "" };
            format!("DROP TABLE {ie}{table}")
        }
        Statement::Begin => "BEGIN".to_string(),
        Statement::Commit => "COMMIT".to_string(),
        Statement::Rollback => "ROLLBACK".to_string(),
    }
}

/// Render a SELECT as SQL.
pub fn print_select(s: &SelectStmt) -> String {
    let mut out = String::from("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    let projs: Vec<String> = s.projections.iter().map(print_item).collect();
    out.push_str(&projs.join(", "));
    if !s.from.is_empty() {
        out.push_str(" FROM ");
        out.push_str(&print_from(&s.from));
    }
    if let Some(w) = &s.selection {
        out.push_str(&format!(" WHERE {}", print_expr(w)));
    }
    if !s.group_by.is_empty() {
        let keys: Vec<String> = s.group_by.iter().map(print_expr).collect();
        out.push_str(&format!(" GROUP BY {}", keys.join(", ")));
    }
    if let Some(h) = &s.having {
        out.push_str(&format!(" HAVING {}", print_expr(h)));
    }
    if let Some((op, all, rhs)) = &s.set_op {
        let kw = match op {
            SetOp::Union => "UNION",
            SetOp::Intersect => "INTERSECT",
            SetOp::Except => "EXCEPT",
        };
        let all = if *all { " ALL" } else { "" };
        out.push_str(&format!(" {kw}{all} {}", print_select(rhs)));
    }
    if !s.order_by.is_empty() {
        let keys: Vec<String> = s
            .order_by
            .iter()
            .map(|OrderKey { expr, desc }| {
                format!("{}{}", print_expr(expr), if *desc { " DESC" } else { "" })
            })
            .collect();
        out.push_str(&format!(" ORDER BY {}", keys.join(", ")));
    }
    if let Some(l) = s.limit {
        out.push_str(&format!(" LIMIT {l}"));
    }
    if let Some(o) = s.offset {
        out.push_str(&format!(" OFFSET {o}"));
    }
    out
}

fn print_from(from: &[FromItem]) -> String {
    let mut out = String::new();
    for (i, item) in from.iter().enumerate() {
        let alias = item
            .alias
            .as_ref()
            .map(|a| format!(" {a}"))
            .unwrap_or_default();
        match (&item.join, i) {
            (None, _) | (_, 0) => out.push_str(&format!("{}{alias}", item.table)),
            (Some((jt, on)), _) => {
                // Render TRUE-conditioned inner joins back as comma joins.
                if matches!(jt, JoinType::Inner)
                    && matches!(on, Expr::Literal(crate::value::Value::Bool(true)))
                {
                    out.push_str(&format!(", {}{alias}", item.table));
                } else {
                    let kw = match jt {
                        JoinType::Inner => "JOIN",
                        JoinType::Left => "LEFT JOIN",
                    };
                    out.push_str(&format!(" {kw} {}{alias} ON {}", item.table, print_expr(on)));
                }
            }
        }
    }
    out
}

fn print_item(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::QualifiedWildcard(t) => format!("{t}.*"),
        SelectItem::Expr { expr, alias } => match alias {
            Some(a) => format!("{} AS {a}", print_expr(expr)),
            None => print_expr(expr),
        },
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Eq => "=",
        BinOp::Neq => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "AND",
        BinOp::Or => "OR",
    }
}

/// Render an expression as SQL (fully parenthesized compound expressions,
/// so precedence never bites).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Literal(v) => v.to_string(),
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.clone(),
        },
        Expr::Binary { op, left, right } => {
            format!("({} {} {})", print_expr(left), binop_str(*op), print_expr(right))
        }
        Expr::Unary { op, expr } => match op {
            UnOp::Neg => format!("(-{})", print_expr(expr)),
            UnOp::Not => format!("(NOT {})", print_expr(expr)),
        },
        Expr::Aggregate { func, arg, distinct } => {
            let d = if *distinct { "DISTINCT " } else { "" };
            match arg {
                None => format!("{}(*)", func.name()),
                Some(a) => format!("{}({d}{})", func.name(), print_expr(a)),
            }
        }
        Expr::InList { expr, list, negated } => {
            let items: Vec<String> = list.iter().map(print_expr).collect();
            let not = if *negated { "NOT " } else { "" };
            format!("({} {not}IN ({}))", print_expr(expr), items.join(", "))
        }
        Expr::InSubquery { expr, subquery, negated } => {
            let not = if *negated { "NOT " } else { "" };
            format!("({} {not}IN ({}))", print_expr(expr), print_select(subquery))
        }
        Expr::Exists { subquery, negated } => {
            let not = if *negated { "NOT " } else { "" };
            format!("{not}EXISTS ({})", print_select(subquery))
        }
        Expr::ScalarSubquery(subquery) => format!("({})", print_select(subquery)),
        Expr::Like { expr, pattern, negated } => {
            let not = if *negated { "NOT " } else { "" };
            format!("({} {not}LIKE '{}')", print_expr(expr), pattern.replace('\'', "''"))
        }
        Expr::Between { expr, low, high, negated } => {
            let not = if *negated { "NOT " } else { "" };
            format!(
                "({} {not}BETWEEN {} AND {})",
                print_expr(expr),
                print_expr(low),
                print_expr(high)
            )
        }
        Expr::IsNull { expr, negated } => {
            let not = if *negated { "NOT " } else { "" };
            format!("({} IS {not}NULL)", print_expr(expr))
        }
        Expr::LlmMap { arg, template } => {
            format!("LLM_MAP({}, '{}')", print_expr(arg), template.replace('\'', "''"))
        }
        Expr::LlmFilter { arg, template } => {
            format!("LLM_FILTER({}, '{}')", print_expr(arg), template.replace('\'', "''"))
        }
        Expr::LlmMatch { left, right, template } => {
            format!(
                "LLM_MATCH({}, {}, '{}')",
                print_expr(left),
                print_expr(right),
                template.replace('\'', "''")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_statement};

    /// Parse → print → parse must be a fixpoint on the AST.
    fn roundtrip_stmt(sql: &str) {
        let ast1 = parse_statement(sql).unwrap();
        let printed = print_statement(&ast1);
        let ast2 = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(ast1, ast2, "printed: {printed}");
    }

    #[test]
    fn roundtrip_selects() {
        for sql in [
            "SELECT name FROM stadium WHERE capacity > 1000",
            "SELECT DISTINCT s.name, c.year FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id",
            "SELECT * FROM a LEFT JOIN b ON a.id = b.id WHERE b.id IS NULL",
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 2 ORDER BY dept DESC LIMIT 5",
            "SELECT a FROM t UNION ALL SELECT a FROM u",
            "SELECT name FROM s WHERE id IN (SELECT sid FROM c WHERE year = 2014)",
            "SELECT name FROM s WHERE EXISTS (SELECT 1 FROM c) AND x BETWEEN 1 AND 2",
            "SELECT name FROM s WHERE name LIKE 'a%' OR name NOT LIKE '_b'",
            "SELECT (SELECT MAX(x) FROM t) AS mx FROM u",
            "SELECT COUNT(DISTINCT x) FROM t",
            "SELECT * FROM a, b WHERE a.x = b.y",
            "EXPLAIN SELECT name FROM stadium WHERE capacity > 1000 ORDER BY name LIMIT 3",
            "EXPLAIN ANALYZE SELECT name FROM stadium WHERE capacity > 1000",
        ] {
            roundtrip_stmt(sql);
        }
    }

    #[test]
    fn roundtrip_semantic_operators() {
        for sql in [
            "SELECT LLM_MAP(name, 'uppercase') FROM t",
            "SELECT name FROM t WHERE LLM_FILTER(bio, 'is it positive?')",
            "SELECT * FROM a JOIN b ON LLM_MATCH(a.x, b.y, 'same entity?')",
            // LLM_JOIN prints as plain JOIN (same AST), which reparses stably.
            "SELECT * FROM a LLM_JOIN b ON LLM_MATCH(a.x, b.y, 'same?')",
            "SELECT LLM_MAP(name, 'it''s quoted') AS m FROM t",
            "EXPLAIN SELECT LLM_MAP(name, 'x') FROM t WHERE LLM_FILTER(name, 'y')",
        ] {
            roundtrip_stmt(sql);
        }
    }

    #[test]
    fn roundtrip_dml_ddl() {
        for sql in [
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
            "UPDATE t SET a = (a + 1) WHERE b = 2",
            "DELETE FROM t WHERE a IS NOT NULL",
            "CREATE TABLE t (id INT, name TEXT, w FLOAT, ok BOOL)",
            "DROP TABLE IF EXISTS t",
            "BEGIN",
            "COMMIT",
            "ROLLBACK",
        ] {
            roundtrip_stmt(sql);
        }
    }

    #[test]
    fn printed_sql_executes() {
        let mut db = crate::exec::concert_db();
        let sql = "SELECT name FROM stadium WHERE stadium_id IN \
                   (SELECT stadium_id FROM concert WHERE year = 2014)";
        let ast = parse_statement(sql).unwrap();
        let printed = print_statement(&ast);
        let a = db.query(sql).unwrap();
        let b = db.query(&printed).unwrap();
        assert!(a.bag_eq(&b));
    }

    #[test]
    fn expr_printing_parenthesizes() {
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(print_expr(&e), "(a + (b * c))");
    }

    #[test]
    fn string_literals_escaped() {
        let e = parse_expr("name = 'o''brien'").unwrap();
        let printed = print_expr(&e);
        assert!(printed.contains("'o''brien'"));
        let re = parse_expr(&printed).unwrap();
        assert_eq!(e, re);
    }
}
