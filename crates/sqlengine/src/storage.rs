//! Durable tables: a [`PersistentDb`] wraps the in-memory [`Database`]
//! with an `llmdm-store` [`Store`] so tables created with
//! `CREATE TABLE … PERSIST` survive process restarts.
//!
//! Design:
//!
//! * Each persistent table lives in one store space `tbl:<name>`:
//!   record 0 is the schema, every later record is one row in a tagged
//!   binary encoding that round-trips values **bit-exactly** (floats
//!   travel as `f64::to_bits`), so a reloaded table is
//!   indistinguishable from the in-memory one — the differential
//!   oracle (`execute_select_direct` + `ResultSet::bit_eq`) gates
//!   this in `tests/persistence.rs`.
//! * Query execution is untouched: the planner's Scan nodes still read
//!   `Table.rows`. What changes is *where those rows come from* — on
//!   every auto-commit `SELECT`, persistent tables are refreshed from
//!   the store, pulling their pages through the buffer pool (cold
//!   scans fault pages in, warm scans hit the pool; the
//!   `store_durability` bench pins the gap).
//! * Writes go through on commit boundaries: in auto-commit mode every
//!   mutating statement is followed by a store transaction that
//!   rewrites the changed state; inside `BEGIN … COMMIT` nothing
//!   touches the store until `COMMIT`, and `ROLLBACK` leaves the store
//!   untouched — the store's WAL then makes that boundary crash-atomic
//!   in turn.

use std::sync::Arc;

use llmdm_store::{SharedVfs, Store, StoreConfig, StoreError};

use crate::ast::Statement;
use crate::catalog::Database;
use crate::error::SqlError;
use crate::result::ResultSet;
use crate::schema::{Column, Row, Schema, Table};
use crate::value::{DataType, Value};

const SPACE_PREFIX: &str = "tbl:";

fn storage_err(e: StoreError) -> SqlError {
    SqlError::Storage(e.to_string())
}

// ----------------------------------------------------------- encoding

fn encode_schema(schema: &Schema) -> Vec<u8> {
    let cols = schema.columns();
    let mut out = Vec::new();
    out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
    for c in cols {
        out.extend_from_slice(&(c.name.len() as u16).to_le_bytes());
        out.extend_from_slice(c.name.as_bytes());
        out.push(match c.dtype {
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Text => 3,
            DataType::Bool => 4,
        });
    }
    out
}

fn decode_schema(bytes: &[u8]) -> Result<Schema, SqlError> {
    let corrupt = |m: &str| SqlError::Storage(format!("corrupt schema record: {m}"));
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Result<&[u8], SqlError> {
        let s = bytes.get(*off..*off + n).ok_or_else(|| corrupt("short"))?;
        *off += n;
        Ok(s)
    };
    let ncols = u16::from_le_bytes(take(&mut off, 2)?.try_into().expect("2 bytes")) as usize;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let nlen = u16::from_le_bytes(take(&mut off, 2)?.try_into().expect("2 bytes")) as usize;
        let name = String::from_utf8(take(&mut off, nlen)?.to_vec())
            .map_err(|_| corrupt("name not utf-8"))?;
        let dtype = match take(&mut off, 1)?[0] {
            1 => DataType::Int,
            2 => DataType::Float,
            3 => DataType::Text,
            4 => DataType::Bool,
            t => return Err(corrupt(&format!("unknown dtype tag {t}"))),
        };
        cols.push(Column::new(&name, dtype));
    }
    Ok(Schema::new(cols))
}

fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        match v {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(2);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(4);
                out.push(*b as u8);
            }
        }
    }
    out
}

fn decode_row(bytes: &[u8]) -> Result<Row, SqlError> {
    let corrupt = |m: &str| SqlError::Storage(format!("corrupt row record: {m}"));
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Result<&[u8], SqlError> {
        let s = bytes.get(*off..*off + n).ok_or_else(|| corrupt("short"))?;
        *off += n;
        Ok(s)
    };
    let n = u16::from_le_bytes(take(&mut off, 2)?.try_into().expect("2 bytes")) as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = take(&mut off, 1)?[0];
        row.push(match tag {
            0 => Value::Null,
            1 => Value::Int(i64::from_le_bytes(take(&mut off, 8)?.try_into().expect("8 bytes"))),
            2 => Value::Float(f64::from_bits(u64::from_le_bytes(
                take(&mut off, 8)?.try_into().expect("8 bytes"),
            ))),
            3 => {
                let len =
                    u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("4 bytes")) as usize;
                Value::Str(
                    String::from_utf8(take(&mut off, len)?.to_vec())
                        .map_err(|_| corrupt("string not utf-8"))?,
                )
            }
            4 => Value::Bool(take(&mut off, 1)?[0] != 0),
            t => return Err(corrupt(&format!("unknown value tag {t}"))),
        });
    }
    if off != bytes.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(row)
}

// -------------------------------------------------------- persistence

/// A [`Database`] whose `PERSIST` tables are durably backed by an
/// `llmdm-store` [`Store`] (see module docs).
#[derive(Debug)]
pub struct PersistentDb {
    db: Database,
    store: Store,
}

impl PersistentDb {
    /// Open a persistent database on `vfs`, running store crash
    /// recovery and loading every persisted table into the catalog.
    pub fn open(vfs: SharedVfs, cfg: StoreConfig) -> Result<Self, SqlError> {
        let store = Store::open(vfs, cfg).map_err(storage_err)?;
        let mut this = PersistentDb { db: Database::new(), store };
        for space in this.store.spaces() {
            if let Some(name) = space.strip_prefix(SPACE_PREFIX) {
                let name = name.to_string();
                let table = this.load_table(&name)?;
                this.db.create_table(table)?;
            }
        }
        Ok(this)
    }

    /// Open on real files under `dir` with default store settings.
    pub fn open_dir(dir: impl Into<std::path::PathBuf>) -> Result<Self, SqlError> {
        let vfs: SharedVfs = Arc::new(std::sync::Mutex::new(
            llmdm_store::DirVfs::new(dir).map_err(storage_err)?,
        ));
        PersistentDb::open(vfs, StoreConfig::default())
    }

    /// The wrapped in-memory database (read access — e.g. for the
    /// differential oracle or schema summaries).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the wrapped database. Changes made here bypass
    /// persistence until the next mutating statement commits.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The underlying store (pool stats, recovery report, WAL length).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Parse and execute one statement (see module docs for when the
    /// store is read and written).
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet, SqlError> {
        let stmt = crate::parser::parse_statement(sql)?;
        self.execute_stmt(&stmt)
    }

    /// Parse and execute a `;`-separated script; returns the last
    /// result. On error an open transaction is rolled back (in memory;
    /// the store was never touched mid-transaction).
    pub fn execute_script(&mut self, sql: &str) -> Result<ResultSet, SqlError> {
        let stmts = crate::parser::parse_script(sql)?;
        let mut last = ResultSet::empty();
        for stmt in &stmts {
            match self.execute_stmt(stmt) {
                Ok(rs) => last = rs,
                Err(e) => {
                    if self.db.in_transaction() {
                        let _ = self.db.rollback();
                    }
                    return Err(e);
                }
            }
        }
        Ok(last)
    }

    /// Alias of [`PersistentDb::execute`] for read statements.
    pub fn query(&mut self, sql: &str) -> Result<ResultSet, SqlError> {
        self.execute(sql)
    }

    /// Attach a model handle for semantic operators (`LLM_MAP` etc.).
    /// The handle lives in the in-memory catalog, not the store: reopen
    /// a persistent database and the model must be attached again.
    pub fn set_model(&mut self, model: crate::semantic::ModelHandle) {
        self.db.set_model(model);
    }

    fn execute_stmt(&mut self, stmt: &Statement) -> Result<ResultSet, SqlError> {
        // Reads outside a transaction refresh persistent tables from
        // the store first: the scan pulls pages through the buffer
        // pool. Inside a transaction the in-memory rows are
        // authoritative (read-your-writes).
        if matches!(stmt, Statement::Select(_) | Statement::Explain { .. })
            && !self.db.in_transaction()
        {
            self.refresh_persistent_tables()?;
        }
        let rs = crate::exec::execute(&mut self.db, stmt)?;
        let mutating = matches!(
            stmt,
            Statement::Insert { .. }
                | Statement::Update { .. }
                | Statement::Delete { .. }
                | Statement::CreateTable { .. }
                | Statement::DropTable { .. }
                | Statement::Commit
        );
        if mutating && !self.db.in_transaction() && self.persistence_in_play() {
            self.sync_all()?;
        }
        Ok(rs)
    }

    fn persistence_in_play(&self) -> bool {
        self.db.table_names().iter().any(|n| self.db.table(n).map_or(false, |t| t.persist))
            || !self.store.spaces().is_empty()
    }

    /// Rewrite durable state to match the catalog, atomically in one
    /// store transaction: drop spaces for vanished tables, (re)create
    /// and refill one space per persistent table.
    fn sync_all(&mut self) -> Result<(), SqlError> {
        let mut tables: Vec<(String, Vec<u8>, Vec<Vec<u8>>)> = Vec::new();
        for name in self.db.table_names() {
            let t = self.db.table(name)?;
            if t.persist {
                tables.push((
                    format!("{SPACE_PREFIX}{}", t.name),
                    encode_schema(&t.schema),
                    t.rows.iter().map(encode_row).collect(),
                ));
            }
        }
        let store = &mut self.store;
        store
            .with_txn(|s| {
                for space in s.spaces() {
                    if space.starts_with(SPACE_PREFIX)
                        && !tables.iter().any(|(sp, _, _)| *sp == space)
                    {
                        s.drop_space(&space)?;
                    }
                }
                for (space, schema, rows) in &tables {
                    if s.has_space(space) {
                        s.truncate_space(space)?;
                    } else {
                        s.create_space(space)?;
                    }
                    s.append(space, schema)?;
                    for r in rows {
                        s.append(space, r)?;
                    }
                }
                Ok(())
            })
            .map_err(storage_err)
    }

    /// Reload every persistent table's rows from the store (through
    /// the buffer pool).
    fn refresh_persistent_tables(&mut self) -> Result<(), SqlError> {
        let names: Vec<String> = self
            .db
            .table_names()
            .iter()
            .filter(|n| self.db.table(n).map_or(false, |t| t.persist))
            .map(|n| n.to_string())
            .collect();
        for name in names {
            let table = self.load_table(&name)?;
            *self.db.table_mut(&name)? = table;
        }
        Ok(())
    }

    fn load_table(&mut self, name: &str) -> Result<Table, SqlError> {
        let space = format!("{SPACE_PREFIX}{name}");
        let records = self.store.scan(&space).map_err(storage_err)?;
        let Some((schema_rec, row_recs)) = records.split_first() else {
            return Err(SqlError::Storage(format!("space {space} has no schema record")));
        };
        let schema = decode_schema(schema_rec)?;
        let mut table = Table::new(name, schema);
        table.persist = true;
        for r in row_recs {
            table.rows.push(decode_row(r)?);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmdm_store::MemVfs;

    fn mem_db(vfs: &std::sync::Arc<std::sync::Mutex<MemVfs>>) -> PersistentDb {
        PersistentDb::open(vfs.clone(), StoreConfig::default()).unwrap()
    }

    #[test]
    fn schema_and_row_encoding_round_trip() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("score", DataType::Float),
            Column::new("name", DataType::Text),
            Column::new("ok", DataType::Bool),
        ]);
        assert_eq!(decode_schema(&encode_schema(&schema)).unwrap(), schema);
        let row: Row = vec![
            Value::Int(-42),
            Value::Float(-0.0),
            Value::Str("héllo".into()),
            Value::Bool(true),
        ];
        let back = decode_row(&encode_row(&row)).unwrap();
        assert_eq!(back.len(), row.len());
        for (a, b) in back.iter().zip(&row) {
            assert!(a.bit_eq(b), "{a:?} != {b:?}");
        }
        let null_row: Row = vec![Value::Null, Value::Float(f64::NAN), Value::Str(String::new()), Value::Bool(false)];
        let back = decode_row(&encode_row(&null_row)).unwrap();
        for (a, b) in back.iter().zip(&null_row) {
            assert!(a.bit_eq(b), "{a:?} != {b:?}");
        }
    }

    #[test]
    fn persist_tables_survive_reopen_and_plain_tables_do_not() {
        let vfs = MemVfs::shared();
        {
            let mut db = mem_db(&vfs);
            db.execute("CREATE TABLE kept (id INT, name TEXT) PERSIST").unwrap();
            db.execute("CREATE TABLE scratch (id INT)").unwrap();
            db.execute("INSERT INTO kept VALUES (1, 'a'), (2, 'b')").unwrap();
            db.execute("INSERT INTO scratch VALUES (9)").unwrap();
        }
        let mut db = mem_db(&vfs);
        assert!(db.database().has_table("kept"));
        assert!(!db.database().has_table("scratch"), "non-PERSIST tables are ephemeral");
        let rs = db.query("SELECT name FROM kept ORDER BY id").unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Str("a".into()));
    }

    #[test]
    fn explicit_txn_writes_only_at_commit_and_rollback_leaves_store_alone() {
        let vfs = MemVfs::shared();
        let mut db = mem_db(&vfs);
        db.execute("CREATE TABLE t (id INT) PERSIST").unwrap();
        db.execute_script("BEGIN; INSERT INTO t VALUES (1); ROLLBACK;").unwrap();
        drop(db);
        let mut db = mem_db(&vfs);
        assert_eq!(db.query("SELECT * FROM t").unwrap().rows.len(), 0, "rollback persisted nothing");
        db.execute_script("BEGIN; INSERT INTO t VALUES (1), (2); COMMIT;").unwrap();
        drop(db);
        let mut db = mem_db(&vfs);
        assert_eq!(db.query("SELECT * FROM t").unwrap().rows.len(), 2);
    }

    #[test]
    fn drop_table_drops_the_space() {
        let vfs = MemVfs::shared();
        let mut db = mem_db(&vfs);
        db.execute("CREATE TABLE t (id INT) PERSIST").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.execute("DROP TABLE t").unwrap();
        drop(db);
        let db = mem_db(&vfs);
        assert!(!db.database().has_table("t"));
        assert!(db.store().spaces().is_empty());
    }

    #[test]
    fn selects_pull_pages_through_the_buffer_pool() {
        let vfs = MemVfs::shared();
        let mut db = mem_db(&vfs);
        db.execute("CREATE TABLE t (id INT, body TEXT) PERSIST").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'xxxxxxxxxxxxxxxxxxxx')")).unwrap();
        }
        let before = db.store().pool_stats();
        db.query("SELECT COUNT(*) FROM t").unwrap();
        let after = db.store().pool_stats();
        assert!(
            after.hits + after.misses > before.hits + before.misses,
            "a SELECT must touch the buffer pool"
        );
    }
}
