//! The database catalog and the top-level execute/query API, including
//! snapshot-based transactions (the substrate for §II-B1's NL2Transaction).

use std::collections::BTreeMap;


use crate::error::SqlError;
use crate::result::ResultSet;
use crate::schema::{Schema, Table};
use crate::semantic::ModelHandle;

/// An in-memory database: a catalog of tables plus transaction state.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// Snapshot taken at BEGIN; restored on ROLLBACK.
    snapshot: Option<BTreeMap<String, Table>>,
    /// The session LLM handle semantic operators route through; `None`
    /// (the default) makes `LLM_MAP`/`LLM_FILTER`/`LLM_MATCH` fail with
    /// [`SqlError::Model`]. Transactions never roll this back — the
    /// model is session state, not data.
    model: Option<ModelHandle>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Attach a session model (builder form).
    pub fn with_model(mut self, model: ModelHandle) -> Self {
        self.model = Some(model);
        self
    }

    /// Attach or replace the session model.
    pub fn set_model(&mut self, model: ModelHandle) {
        self.model = Some(model);
    }

    /// The attached session model, if any.
    pub fn model(&self) -> Option<&ModelHandle> {
        self.model.as_ref()
    }

    /// Create a table. Errors if the name exists.
    pub fn create_table(&mut self, table: Table) -> Result<(), SqlError> {
        if self.tables.contains_key(&table.name) {
            return Err(SqlError::TableExists(table.name.clone()));
        }
        self.tables.insert(table.name.clone(), table);
        Ok(())
    }

    /// Drop a table.
    pub fn drop_table(&mut self, name: &str) -> Result<(), SqlError> {
        let key = name.to_lowercase();
        self.tables.remove(&key).map(|_| ()).ok_or(SqlError::UnknownTable(key))
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table, SqlError> {
        let key = name.to_lowercase();
        self.tables.get(&key).ok_or(SqlError::UnknownTable(key))
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, SqlError> {
        let key = name.to_lowercase();
        self.tables.get_mut(&key).ok_or(SqlError::UnknownTable(key))
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_lowercase())
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Whether a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Begin a transaction (snapshot the catalog).
    pub fn begin(&mut self) -> Result<(), SqlError> {
        if self.snapshot.is_some() {
            return Err(SqlError::Txn("transaction already open".into()));
        }
        self.snapshot = Some(self.tables.clone());
        Ok(())
    }

    /// Commit the open transaction.
    pub fn commit(&mut self) -> Result<(), SqlError> {
        self.snapshot.take().map(|_| ()).ok_or_else(|| SqlError::Txn("no open transaction".into()))
    }

    /// Roll back to the BEGIN snapshot.
    pub fn rollback(&mut self) -> Result<(), SqlError> {
        match self.snapshot.take() {
            Some(snap) => {
                self.tables = snap;
                Ok(())
            }
            None => Err(SqlError::Txn("no open transaction".into())),
        }
    }

    /// Parse and execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet, SqlError> {
        let stmt = crate::parser::parse_statement(sql)?;
        crate::exec::execute(self, &stmt)
    }

    /// Parse and execute a `;`-separated script; returns the last result.
    /// Any statement error aborts the script (and rolls back an open
    /// transaction, as a DBMS session would on error + explicit rollback).
    pub fn execute_script(&mut self, sql: &str) -> Result<ResultSet, SqlError> {
        let stmts = crate::parser::parse_script(sql)?;
        let mut last = ResultSet::empty();
        for stmt in &stmts {
            match crate::exec::execute(self, stmt) {
                Ok(rs) => last = rs,
                Err(e) => {
                    if self.in_transaction() {
                        let _ = self.rollback();
                    }
                    return Err(e);
                }
            }
        }
        Ok(last)
    }

    /// Parse and execute, expecting a query (alias of [`Database::execute`]
    /// that reads better at call sites).
    pub fn query(&mut self, sql: &str) -> Result<ResultSet, SqlError> {
        self.execute(sql)
    }

    /// Build a `CREATE TABLE` schema summary string for prompt contexts —
    /// the "table information" the paper's Figure 2 feeds to the LLM.
    pub fn schema_summary(&self) -> String {
        let mut s = String::new();
        for t in self.tables.values() {
            s.push_str(&format!("TABLE {} (", t.name));
            let cols: Vec<String> =
                t.schema.columns().iter().map(|c| format!("{} {}", c.name, c.dtype)).collect();
            s.push_str(&cols.join(", "));
            s.push_str(&format!(")  -- {} rows\n", t.rows.len()));
        }
        s
    }

    /// Direct access to a table's schema.
    pub fn schema_of(&self, name: &str) -> Result<&Schema, SqlError> {
        Ok(&self.table(name)?.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::{DataType, Value};

    fn db_with_t() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
        db
    }

    #[test]
    fn create_and_query() {
        let mut db = db_with_t();
        let rs = db.query("SELECT * FROM t").unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db_with_t();
        assert!(matches!(
            db.execute("CREATE TABLE t (x INT)"),
            Err(SqlError::TableExists(_))
        ));
        assert!(db.execute("CREATE TABLE IF NOT EXISTS t (x INT)").is_ok());
    }

    #[test]
    fn drop_table() {
        let mut db = db_with_t();
        db.execute("DROP TABLE t").unwrap();
        assert!(!db.has_table("t"));
        assert!(db.execute("DROP TABLE t").is_err());
        assert!(db.execute("DROP TABLE IF EXISTS t").is_ok());
    }

    #[test]
    fn transaction_rollback_restores() {
        let mut db = db_with_t();
        db.execute("BEGIN").unwrap();
        db.execute("DELETE FROM t").unwrap();
        assert_eq!(db.query("SELECT * FROM t").unwrap().len(), 0);
        db.execute("ROLLBACK").unwrap();
        assert_eq!(db.query("SELECT * FROM t").unwrap().len(), 2);
    }

    #[test]
    fn transaction_commit_persists() {
        let mut db = db_with_t();
        db.execute_script("BEGIN; DELETE FROM t WHERE id = 1; COMMIT;").unwrap();
        assert_eq!(db.query("SELECT * FROM t").unwrap().len(), 1);
        assert!(!db.in_transaction());
    }

    #[test]
    fn nested_begin_rejected() {
        let mut db = db_with_t();
        db.execute("BEGIN").unwrap();
        assert!(matches!(db.execute("BEGIN"), Err(SqlError::Txn(_))));
        db.execute("COMMIT").unwrap();
        assert!(matches!(db.execute("COMMIT"), Err(SqlError::Txn(_))));
    }

    #[test]
    fn script_error_rolls_back_open_txn() {
        let mut db = db_with_t();
        let err = db.execute_script("BEGIN; DELETE FROM t; SELECT * FROM missing;");
        assert!(err.is_err());
        assert!(!db.in_transaction());
        assert_eq!(db.query("SELECT * FROM t").unwrap().len(), 2, "delete rolled back");
    }

    #[test]
    fn schema_summary_lists_tables() {
        let db = db_with_t();
        let s = db.schema_summary();
        assert!(s.contains("TABLE t"));
        assert!(s.contains("id INT"));
        assert!(s.contains("2 rows"));
    }

    #[test]
    fn programmatic_create() {
        let mut db = Database::new();
        let t = Table::new(
            "Emp",
            Schema::new(vec![Column::new("id", DataType::Int)]),
        );
        db.create_table(t).unwrap();
        db.table_mut("emp").unwrap().push_row(vec![Value::Int(1)]).unwrap();
        assert_eq!(db.table("EMP").unwrap().len(), 1);
    }
}
