//! Query results and result comparison.
//!
//! Execution accuracy (the metric behind the paper's Table II) needs a
//! notion of "same results": [`ResultSet::bag_eq`] compares row multisets
//! ignoring order and column names, which is the standard Spider-style
//! execution-match criterion.

use std::fmt;


use crate::schema::Row;
use crate::value::Value;

/// The result of executing a statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Rows affected (DML) — 0 for queries.
    pub affected: usize,
}

impl ResultSet {
    /// An empty result (DDL/transaction statements).
    pub fn empty() -> Self {
        ResultSet::default()
    }

    /// A DML acknowledgement.
    pub fn affected(n: usize) -> Self {
        ResultSet { affected: n, ..Default::default() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows sorted into a canonical order (for set comparison).
    pub fn canonical_rows(&self) -> Vec<Row> {
        let mut rows = self.rows.clone();
        rows.sort_by(cmp_rows);
        rows
    }

    /// Multiset equality of rows, ignoring order and column names — the
    /// execution-accuracy criterion.
    pub fn bag_eq(&self, other: &ResultSet) -> bool {
        if self.columns.len() != other.columns.len() || self.rows.len() != other.rows.len() {
            return false;
        }
        let a = self.canonical_rows();
        let b = other.canonical_rows();
        a.iter().zip(&b).all(|(x, y)| cmp_rows(x, y) == std::cmp::Ordering::Equal)
    }

    /// Ordered equality (for ORDER BY-sensitive comparisons).
    pub fn ordered_eq(&self, other: &ResultSet) -> bool {
        self.columns.len() == other.columns.len()
            && self.rows.len() == other.rows.len()
            && self
                .rows
                .iter()
                .zip(&other.rows)
                .all(|(x, y)| cmp_rows(x, y) == std::cmp::Ordering::Equal)
    }

    /// Byte-identical equality: same column names, same row order, and
    /// every value [`Value::bit_eq`] to its counterpart. The criterion the
    /// planner-vs-direct differential harness uses — stricter than both
    /// [`ResultSet::bag_eq`] and [`ResultSet::ordered_eq`].
    pub fn bit_eq(&self, other: &ResultSet) -> bool {
        self.columns == other.columns
            && self.affected == other.affected
            && self.rows.len() == other.rows.len()
            && self.rows.iter().zip(&other.rows).all(|(a, b)| {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.bit_eq(y))
            })
    }

    /// The single value of a 1×1 result, if that is the shape.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }
}

/// Compare rows value-wise with the total ordering.
pub fn cmp_rows(a: &Row, b: &Row) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let o = x.total_cmp(y);
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    a.len().cmp(&b.len())
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(rows: Vec<Vec<i64>>) -> ResultSet {
        ResultSet {
            columns: vec!["a".into(), "b".into()],
            rows: rows
                .into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect())
                .collect(),
            affected: 0,
        }
    }

    #[test]
    fn bag_eq_ignores_order() {
        let a = rs(vec![vec![1, 2], vec![3, 4]]);
        let b = rs(vec![vec![3, 4], vec![1, 2]]);
        assert!(a.bag_eq(&b));
        assert!(!a.ordered_eq(&b));
    }

    #[test]
    fn bag_eq_respects_multiplicity() {
        let a = rs(vec![vec![1, 2], vec![1, 2]]);
        let b = rs(vec![vec![1, 2], vec![3, 4]]);
        assert!(!a.bag_eq(&b));
        let c = rs(vec![vec![1, 2]]);
        assert!(!a.bag_eq(&c));
    }

    #[test]
    fn bag_eq_ignores_column_names() {
        let mut a = rs(vec![vec![1, 2]]);
        let b = rs(vec![vec![1, 2]]);
        a.columns = vec!["x".into(), "y".into()];
        assert!(a.bag_eq(&b));
    }

    #[test]
    fn scalar_extraction() {
        let one = ResultSet {
            columns: vec!["c".into()],
            rows: vec![vec![Value::Int(7)]],
            affected: 0,
        };
        assert_eq!(one.scalar(), Some(&Value::Int(7)));
        assert!(rs(vec![vec![1, 2]]).scalar().is_none());
    }

    #[test]
    fn display_renders_rows() {
        let s = rs(vec![vec![1, 2]]).to_string();
        assert!(s.contains("a | b"));
        assert!(s.contains("1 | 2"));
    }
}
