//! SQL values and data types.

use std::cmp::Ordering;
use std::fmt;


/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit integer (`INT`, `INTEGER`, `BIGINT`).
    Int,
    /// 64-bit float (`FLOAT`, `REAL`, `DOUBLE`).
    Float,
    /// UTF-8 string (`TEXT`, `VARCHAR`, `CHAR`).
    Text,
    /// Boolean (`BOOL`, `BOOLEAN`).
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Text => write!(f, "TEXT"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value's type, if not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Numeric view (ints widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Truthiness for WHERE clauses: only `true` passes; NULL and false
    /// both fail (SQL three-valued logic collapsed at the filter boundary).
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// SQL comparison. Returns `None` when either side is NULL or the types
    /// are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Total ordering for ORDER BY / DISTINCT / set operations: NULLs sort
    /// first, then by type tag, then by value.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let (x, y) = (a.as_f64().unwrap_or(f64::NAN), b.as_f64().unwrap_or(f64::NAN));
                x.total_cmp(&y)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Equality for grouping and set semantics (NULL equals NULL here, as
    /// GROUP BY requires).
    pub fn group_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// ORDER BY comparison: NULLS LAST when ascending (so a descending
    /// sort puts them first), non-NULL values by [`Value::total_cmp`].
    ///
    /// This is the one ordering both the direct executor's `sort_output`
    /// and the planner's Sort operator use, keeping ORDER BY consistent
    /// with itself while WHERE keeps [`Value::sql_cmp`]'s NULL
    /// propagation.
    pub fn order_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self.total_cmp(other),
        }
    }

    /// Exact representational equality: same variant, same bits (floats
    /// compared via `to_bits`, so `1 == 1.0` is *false* here). Used by
    /// differential tests that require byte-identical results, where the
    /// intentionally-loose `PartialEq` (grouping semantics) would hide
    /// Int/Float drift.
    pub fn bit_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

/// Display renders SQL literal syntax (strings quoted).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

/// `PartialEq` follows grouping semantics (NULL == NULL, 1 == 1.0) so that
/// result-set comparison "same results" matches user intuition.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.group_eq(other)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_none() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn mixed_numeric_compare() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(1).sql_cmp(&Value::Float(1.5)), Some(Ordering::Less));
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_nulls_first() {
        let mut vals =
            [Value::Int(2), Value::Null, Value::Str("a".into()), Value::Bool(false)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
    }

    #[test]
    fn group_eq_null_equals_null() {
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(Value::Int(3).group_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).group_eq(&Value::Str("3".into())));
    }

    #[test]
    fn order_cmp_nulls_last_ascending() {
        let mut vals = [Value::Null, Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.order_cmp(b));
        assert_eq!(vals[0], Value::Int(1));
        assert_eq!(vals[1], Value::Int(2));
        assert!(vals[2].is_null() && vals[3].is_null());
        // Reversed (DESC) puts NULLs first.
        vals.sort_by(|a, b| a.order_cmp(b).reverse());
        assert!(vals[0].is_null() && vals[1].is_null());
        assert_eq!(vals[2], Value::Int(2));
    }

    #[test]
    fn order_cmp_mixed_numeric() {
        assert_eq!(Value::Int(1).order_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(Value::Float(2.0).order_cmp(&Value::Int(2)), Ordering::Equal);
        assert_eq!(Value::Int(3).order_cmp(&Value::Float(2.5)), Ordering::Greater);
    }

    #[test]
    fn bit_eq_is_strict() {
        assert!(Value::Int(1).bit_eq(&Value::Int(1)));
        assert!(!Value::Int(1).bit_eq(&Value::Float(1.0)), "group_eq would say true");
        assert!(Value::Null.bit_eq(&Value::Null));
        assert!(!Value::Null.bit_eq(&Value::Int(0)));
        assert!(Value::Float(f64::NAN).bit_eq(&Value::Float(f64::NAN)));
    }

    #[test]
    fn display_literals() {
        assert_eq!(Value::Str("o'brien".into()).to_string(), "'o''brien'");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(1).is_truthy());
    }
}
