//! Statement execution.
//!
//! SELECT pipeline: FROM (nested-loop joins, NULL-padded left joins) →
//! WHERE → GROUP BY/aggregates → HAVING → projection → set operations →
//! DISTINCT → ORDER BY → LIMIT/OFFSET.

use crate::ast::{
    AggFunc, Expr, FromItem, JoinType, SelectItem, SelectStmt, SetOp, Statement,
};
use crate::catalog::Database;
use crate::error::SqlError;
use crate::eval::{eval, Env, Scope};
use crate::result::{cmp_rows, ResultSet};
use crate::schema::{Column, Row, Schema, Table};
use crate::value::Value;

/// Execute any statement against the database.
///
/// Observability: each statement opens a `sqlengine.exec` span (fields
/// `kind`, `rows_out`, `affected`) and bumps the
/// `sqlengine.exec.statements` / `sqlengine.exec.rows_out` counters; the
/// SELECT core additionally records per-operator row counts (see
/// [`execute_core`]).
pub fn execute(db: &mut Database, stmt: &Statement) -> Result<ResultSet, SqlError> {
    let mut span = llmdm_obs::span("sqlengine.exec");
    let result = execute_inner(db, stmt);
    if span.is_recording() {
        span.field(
            "kind",
            match stmt {
                Statement::Select(_) => "select",
                Statement::Explain { analyze: false, .. } => "explain",
                Statement::Explain { analyze: true, .. } => "explain_analyze",
                Statement::Insert { .. } => "insert",
                Statement::Update { .. } => "update",
                Statement::Delete { .. } => "delete",
                Statement::CreateTable { .. } => "create_table",
                Statement::DropTable { .. } => "drop_table",
                Statement::Begin => "begin",
                Statement::Commit => "commit",
                Statement::Rollback => "rollback",
            },
        );
        llmdm_obs::counter_add("sqlengine.exec.statements", 1.0);
        match &result {
            Ok(rs) => {
                span.field("rows_out", rs.rows.len());
                span.field("affected", rs.affected);
                llmdm_obs::counter_add("sqlengine.exec.rows_out", rs.rows.len() as f64);
            }
            Err(_) => {
                span.field("error", true);
                llmdm_obs::counter_add("sqlengine.exec.errors", 1.0);
            }
        }
    }
    result
}

fn execute_inner(db: &mut Database, stmt: &Statement) -> Result<ResultSet, SqlError> {
    match stmt {
        Statement::Select(s) => execute_select(db, s),
        Statement::Explain { analyze: false, select } => crate::plan::explain_select(db, select),
        Statement::Explain { analyze: true, select } => {
            crate::plan::explain_analyze_select(db, select)
        }
        Statement::Insert { table, columns, values } => insert(db, table, columns.as_deref(), values),
        Statement::Update { table, assignments, selection } => {
            update(db, table, assignments, selection.as_ref())
        }
        Statement::Delete { table, selection } => delete(db, table, selection.as_ref()),
        Statement::CreateTable { table, columns, if_not_exists, persist } => {
            if *if_not_exists && db.has_table(table) {
                return Ok(ResultSet::empty());
            }
            let schema = Schema::new(
                columns.iter().map(|(n, t)| Column::new(n, *t)).collect(),
            );
            let mut t = Table::new(table, schema);
            t.persist = *persist;
            db.create_table(t)?;
            Ok(ResultSet::empty())
        }
        Statement::DropTable { table, if_exists } => {
            if *if_exists && !db.has_table(table) {
                return Ok(ResultSet::empty());
            }
            db.drop_table(table)?;
            Ok(ResultSet::empty())
        }
        Statement::Begin => {
            db.begin()?;
            Ok(ResultSet::empty())
        }
        Statement::Commit => {
            db.commit()?;
            Ok(ResultSet::empty())
        }
        Statement::Rollback => {
            db.rollback()?;
            Ok(ResultSet::empty())
        }
    }
}

// ---------------- DML ----------------

fn insert(
    db: &mut Database,
    table: &str,
    columns: Option<&[String]>,
    values: &[Vec<Expr>],
) -> Result<ResultSet, SqlError> {
    // Evaluate value expressions first (no row scope: literals/arithmetic).
    let empty_scopes: [Scope<'_>; 0] = [];
    let mut rows: Vec<Row> = Vec::with_capacity(values.len());
    {
        let env = Env { scopes: &empty_scopes, db };
        for exprs in values {
            let mut row = Vec::with_capacity(exprs.len());
            for e in exprs {
                row.push(eval(e, &env)?);
            }
            rows.push(row);
        }
    }
    let t = db.table_mut(table)?;
    let n = rows.len();
    for row in rows {
        let full = match columns {
            None => row,
            Some(cols) => {
                if cols.len() != row.len() {
                    return Err(SqlError::Exec(format!(
                        "INSERT names {} columns but provides {} values",
                        cols.len(),
                        row.len()
                    )));
                }
                let mut full = vec![Value::Null; t.schema.len()];
                for (c, v) in cols.iter().zip(row) {
                    let idx = t
                        .schema
                        .index_of(c)
                        .ok_or_else(|| SqlError::UnknownColumn(c.clone()))?;
                    full[idx] = v;
                }
                full
            }
        };
        t.push_row(full)?;
    }
    Ok(ResultSet::affected(n))
}

fn update(
    db: &mut Database,
    table: &str,
    assignments: &[crate::ast::Assignment],
    selection: Option<&Expr>,
) -> Result<ResultSet, SqlError> {
    // Two-phase: compute new rows against an immutable snapshot, then swap.
    let snapshot = db.table(table)?.clone();
    let alias = snapshot.name.clone();
    let mut new_rows = snapshot.rows.clone();
    let mut affected = 0usize;
    for (i, row) in snapshot.rows.iter().enumerate() {
        let scopes = [Scope { alias: &alias, schema: &snapshot.schema, row }];
        let env = Env { scopes: &scopes, db };
        let hit = match selection {
            None => true,
            Some(pred) => eval(pred, &env)?.is_truthy(),
        };
        if !hit {
            continue;
        }
        affected += 1;
        for a in assignments {
            let idx = snapshot
                .schema
                .index_of(&a.column)
                .ok_or_else(|| SqlError::UnknownColumn(a.column.clone()))?;
            new_rows[i][idx] = eval(&a.value, &env)?;
        }
    }
    db.table_mut(table)?.rows = new_rows;
    Ok(ResultSet::affected(affected))
}

fn delete(
    db: &mut Database,
    table: &str,
    selection: Option<&Expr>,
) -> Result<ResultSet, SqlError> {
    let snapshot = db.table(table)?.clone();
    let alias = snapshot.name.clone();
    let mut keep = Vec::with_capacity(snapshot.rows.len());
    let mut affected = 0usize;
    for row in &snapshot.rows {
        let scopes = [Scope { alias: &alias, schema: &snapshot.schema, row }];
        let env = Env { scopes: &scopes, db };
        let hit = match selection {
            None => true,
            Some(pred) => eval(pred, &env)?.is_truthy(),
        };
        if hit {
            affected += 1;
        } else {
            keep.push(row.clone());
        }
    }
    db.table_mut(table)?.rows = keep;
    Ok(ResultSet::affected(affected))
}

// ---------------- SELECT ----------------

/// Table bindings for a joined row layout: aliases, schemas, and segment
/// offsets, FROM order. Shared between the direct executor and the
/// planner's physical operators so expression scoping is identical on
/// both paths.
#[derive(Debug, Clone, Default)]
pub(crate) struct Bindings {
    /// Aliases (lowercase), FROM order.
    pub(crate) aliases: Vec<String>,
    /// Schemas, FROM order.
    pub(crate) schemas: Vec<Schema>,
    /// Segment start offsets per table.
    pub(crate) offsets: Vec<usize>,
}

impl Bindings {
    /// Append a table binding at the end of the row layout.
    pub(crate) fn push(&mut self, alias: String, schema: Schema) {
        let offset = self.width();
        self.offsets.push(offset);
        self.aliases.push(alias);
        self.schemas.push(schema);
    }

    /// Total row width across all bindings.
    pub(crate) fn width(&self) -> usize {
        self.schemas.iter().map(|s| s.len()).sum()
    }

    /// Evaluation scopes over one row laid out per this binding set.
    pub(crate) fn scopes<'a>(&'a self, row: &'a [Value]) -> Vec<Scope<'a>> {
        self.aliases
            .iter()
            .enumerate()
            .map(|(i, alias)| {
                let start = self.offsets[i];
                let end = start + self.schemas[i].len();
                Scope { alias, schema: &self.schemas[i], row: &row[start..end] }
            })
            .collect()
    }

    /// Concatenate two binding sets (right segments shifted after left).
    pub(crate) fn concat(&self, right: &Bindings) -> Bindings {
        let mut out = self.clone();
        for (alias, schema) in right.aliases.iter().zip(&right.schemas) {
            out.push(alias.clone(), schema.clone());
        }
        out
    }
}

/// A joined intermediate row set: layout plus materialized rows.
pub(crate) struct Joined {
    bindings: Bindings,
    rows: Vec<Vec<Value>>,
}

thread_local! {
    /// When set, `execute_select` takes the legacy direct path — including
    /// for subqueries, which re-enter `execute_select`. Installed (RAII)
    /// by [`execute_select_direct`] so the whole statement tree stays on
    /// the oracle path.
    static FORCE_DIRECT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Execute a SELECT (read-only) through the query planner: AST → logical
/// plan → rule-based rewrites → Volcano physical iterators (see
/// [`crate::plan`]). The pre-planner direct executor is kept as the
/// differential-testing oracle behind [`execute_select_direct`].
pub fn execute_select(db: &Database, stmt: &SelectStmt) -> Result<ResultSet, SqlError> {
    if FORCE_DIRECT.with(|f| f.get()) {
        return execute_select_direct_inner(db, stmt);
    }
    crate::plan::execute_select_planned(db, stmt)
}

/// Execute a SELECT on the legacy direct-walk path. This is the
/// differential-testing oracle: subqueries inside `stmt` also stay on the
/// direct path (via a thread-local flag), so a whole statement tree can be
/// compared against the planner byte for byte.
pub fn execute_select_direct(db: &Database, stmt: &SelectStmt) -> Result<ResultSet, SqlError> {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_DIRECT.with(|f| f.set(self.0));
        }
    }
    let _restore = Restore(FORCE_DIRECT.with(|f| f.replace(true)));
    execute_select_direct_inner(db, stmt)
}

fn execute_select_direct_inner(db: &Database, stmt: &SelectStmt) -> Result<ResultSet, SqlError> {
    let mut rs = execute_core(db, stmt)?;
    // Set operation chain.
    if let Some((op, all, rhs)) = &stmt.set_op {
        let right = execute_select_no_order(db, rhs)?;
        if right.columns.len() != rs.columns.len() {
            return Err(SqlError::Exec(format!(
                "set operation arity mismatch: {} vs {}",
                rs.columns.len(),
                right.columns.len()
            )));
        }
        rs.rows = apply_set_op(*op, *all, rs.rows, right.rows);
    }
    // ORDER BY at the top of the chain operates on output columns. Keys
    // that are not output columns (e.g. `ORDER BY COUNT(*)` without the
    // count projected) are handled by re-running the core with the keys
    // appended as hidden projections, sorting, then stripping them.
    if !stmt.order_by.is_empty() {
        if let Err(first_err) = sort_output(&mut rs, stmt) {
            if stmt.set_op.is_none() && !stmt.distinct {
                order_keys_executable(stmt)?;
                let mut widened = stmt.clone();
                let visible = rs.columns.len();
                for k in &stmt.order_by {
                    // Hidden sort keys are positional — no alias, so they
                    // can never collide with user columns named `__sortN`.
                    widened.projections.push(SelectItem::Expr {
                        expr: k.expr.clone(),
                        alias: None,
                    });
                }
                let mut wide = execute_core(db, &widened)?;
                if wide.columns.len() != visible + stmt.order_by.len() {
                    return Err(SqlError::Exec(
                        "hidden ORDER BY projection misaligned with output".into(),
                    ));
                }
                let keys: Vec<(usize, bool)> = stmt
                    .order_by
                    .iter()
                    .enumerate()
                    .map(|(i, k)| (visible + i, k.desc))
                    .collect();
                sort_rows(&mut wide.rows, &keys);
                for row in &mut wide.rows {
                    row.truncate(visible);
                }
                wide.columns.truncate(visible);
                rs = wide;
            } else {
                return Err(first_err);
            }
        }
    }
    // LIMIT / OFFSET.
    let offset = stmt.offset.unwrap_or(0);
    if offset > 0 {
        rs.rows.drain(..offset.min(rs.rows.len()));
    }
    if let Some(limit) = stmt.limit {
        rs.rows.truncate(limit);
    }
    Ok(rs)
}

/// Does the SELECT core aggregate (GROUP BY, an aggregate projection, or
/// an aggregate HAVING)?
pub(crate) fn has_aggregate_core(stmt: &SelectStmt) -> bool {
    !stmt.group_by.is_empty()
        || stmt.projections.iter().any(|p| match p {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
        || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate())
}

/// The hidden-projection ORDER BY fallback is only sound when appending a
/// key to the projection list cannot change the query's shape: an
/// aggregate key over a non-aggregate core would silently collapse the
/// whole SELECT into a one-row global aggregate, so it is rejected with a
/// typed error instead.
pub(crate) fn order_keys_executable(stmt: &SelectStmt) -> Result<(), SqlError> {
    if !has_aggregate_core(stmt) {
        if let Some(k) = stmt.order_by.iter().find(|k| k.expr.contains_aggregate()) {
            return Err(SqlError::Exec(format!(
                "ORDER BY {} requires GROUP BY or an aggregate projection",
                crate::printer::print_expr(&k.expr)
            )));
        }
    }
    Ok(())
}

/// Execute ignoring ORDER BY/LIMIT of the *inner* statement (used for set
/// operation right-hand sides whose ordering is irrelevant).
fn execute_select_no_order(db: &Database, stmt: &SelectStmt) -> Result<ResultSet, SqlError> {
    execute_select(db, stmt)
}

pub(crate) fn apply_set_op(op: SetOp, all: bool, left: Vec<Row>, right: Vec<Row>) -> Vec<Row> {
    match op {
        SetOp::Union => {
            let mut rows = left;
            rows.extend(right);
            if !all {
                dedup_rows(&mut rows);
            }
            rows
        }
        SetOp::Intersect => {
            let mut counts = count_rows(&right);
            let mut out = Vec::new();
            for r in left {
                if let Some(c) = lookup_mut(&mut counts, &r) {
                    if *c > 0 {
                        *c -= 1;
                        out.push(r);
                    }
                }
            }
            if !all {
                dedup_rows(&mut out);
            }
            out
        }
        SetOp::Except => {
            let mut counts = count_rows(&right);
            let mut out = Vec::new();
            for r in left {
                match lookup_mut(&mut counts, &r) {
                    Some(c) if *c > 0 => *c -= 1,
                    _ => out.push(r),
                }
            }
            if !all {
                dedup_rows(&mut out);
            }
            out
        }
    }
}

pub(crate) fn dedup_rows(rows: &mut Vec<Row>) {
    rows.sort_by(cmp_rows);
    rows.dedup_by(|a, b| cmp_rows(a, b) == std::cmp::Ordering::Equal);
}

fn count_rows(rows: &[Row]) -> Vec<(Row, usize)> {
    let mut counts: Vec<(Row, usize)> = Vec::new();
    for r in rows {
        match lookup_mut(&mut counts, r) {
            Some(c) => *c += 1,
            None => counts.push((r.clone(), 1)),
        }
    }
    counts
}

fn lookup_mut<'a>(counts: &'a mut [(Row, usize)], row: &Row) -> Option<&'a mut usize> {
    counts
        .iter_mut()
        .find(|(r, _)| cmp_rows(r, row) == std::cmp::Ordering::Equal)
        .map(|(_, c)| c)
}

/// Execute the core of one SELECT (no set ops / order / limit).
///
/// Records a `sqlengine.exec.select_core` span whose fields are the
/// per-operator row counts of the pipeline: `rows_joined` (after FROM),
/// `rows_after_where`, `aggregated`, and `rows_out` (after projection and
/// DISTINCT).
fn execute_core(db: &Database, stmt: &SelectStmt) -> Result<ResultSet, SqlError> {
    let mut span = llmdm_obs::span("sqlengine.exec.select_core");
    let joined = build_from(db, &stmt.from)?;
    // WHERE.
    let mut filtered: Vec<Vec<Value>> = Vec::new();
    for row in &joined.rows {
        let keep = match &stmt.selection {
            None => true,
            Some(pred) => {
                let scopes = joined.bindings.scopes(row);
                eval(pred, &Env { scopes: &scopes, db })?.is_truthy()
            }
        };
        if keep {
            filtered.push(row.clone());
        }
    }

    let has_agg = has_aggregate_core(stmt);

    if span.is_recording() {
        span.field("rows_joined", joined.rows.len());
        span.field("rows_after_where", filtered.len());
        span.field("aggregated", has_agg);
        llmdm_obs::counter_add("sqlengine.exec.rows_scanned", joined.rows.len() as f64);
    }

    let (columns, rows) = if has_agg {
        aggregate_project(db, stmt, &joined, filtered)?
    } else {
        plain_project(db, stmt, &joined, &filtered)?
    };

    let mut rows = rows;
    if stmt.distinct {
        dedup_rows(&mut rows);
    }
    if span.is_recording() {
        span.field("rows_out", rows.len());
    }
    Ok(ResultSet { columns, rows, affected: 0 })
}

/// Build the joined row set for a FROM clause.
fn build_from(db: &Database, from: &[FromItem]) -> Result<Joined, SqlError> {
    let mut joined = Joined { bindings: Bindings::default(), rows: vec![Vec::new()] };
    for item in from {
        let table = db.table(&item.table)?;
        let alias = item.alias.clone().unwrap_or_else(|| table.name.clone()).to_lowercase();
        if joined.bindings.aliases.contains(&alias) {
            return Err(SqlError::Exec(format!("duplicate table alias {alias}")));
        }
        joined.bindings.push(alias, table.schema.clone());

        let mut next_rows = Vec::new();
        match &item.join {
            None | Some((JoinType::Inner, _)) => {
                let cond = item.join.as_ref().map(|(_, c)| c);
                for left in &joined.rows {
                    for right in &table.rows {
                        let mut combined = left.clone();
                        combined.extend(right.iter().cloned());
                        let keep = match cond {
                            None => true,
                            Some(c) => {
                                let scopes = joined.bindings.scopes(&combined);
                                eval(c, &Env { scopes: &scopes, db })?.is_truthy()
                            }
                        };
                        if keep {
                            next_rows.push(combined);
                        }
                    }
                }
            }
            Some((JoinType::Left, cond)) => {
                for left in &joined.rows {
                    let mut matched = false;
                    for right in &table.rows {
                        let mut combined = left.clone();
                        combined.extend(right.iter().cloned());
                        let scopes = joined.bindings.scopes(&combined);
                        if eval(cond, &Env { scopes: &scopes, db })?.is_truthy() {
                            matched = true;
                            next_rows.push(combined);
                        }
                    }
                    if !matched {
                        let mut combined = left.clone();
                        combined.extend(std::iter::repeat_n(Value::Null, table.schema.len()));
                        next_rows.push(combined);
                    }
                }
            }
        }
        joined.rows = next_rows;
    }
    if from.is_empty() {
        // Scalar SELECT: one empty row.
        joined.rows = vec![Vec::new()];
    }
    Ok(joined)
}

/// Output column name for a projected expression.
pub(crate) fn output_name(item: &SelectItem, idx: usize) -> String {
    match item {
        // Wildcards are expanded before naming; a stray one gets a
        // positional name rather than a panic.
        SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => format!("col{idx}"),
        SelectItem::Expr { expr, alias } => {
            if let Some(a) = alias {
                return a.to_lowercase();
            }
            match expr {
                Expr::Column { name, .. } => name.to_lowercase(),
                Expr::Aggregate { func, arg, distinct } => {
                    let inner = match arg {
                        None => "*".to_string(),
                        Some(e) => match e.as_ref() {
                            Expr::Column { name, .. } => name.to_lowercase(),
                            _ => "expr".to_string(),
                        },
                    };
                    let d = if *distinct { "distinct " } else { "" };
                    format!("{}({d}{inner})", func.name().to_lowercase())
                }
                _ => format!("col{idx}"),
            }
        }
    }
}

/// Expand wildcards into explicit column expressions.
pub(crate) fn expand_projections(
    stmt: &SelectStmt,
    bindings: &Bindings,
) -> Result<Vec<SelectItem>, SqlError> {
    let mut out = Vec::new();
    for item in &stmt.projections {
        match item {
            SelectItem::Wildcard => {
                for (alias, schema) in bindings.aliases.iter().zip(&bindings.schemas) {
                    for c in schema.columns() {
                        out.push(SelectItem::Expr {
                            expr: Expr::qcol(alias, &c.name),
                            alias: Some(c.name.clone()),
                        });
                    }
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let q = q.to_lowercase();
                let idx = bindings
                    .aliases
                    .iter()
                    .position(|a| *a == q)
                    .ok_or_else(|| SqlError::UnknownTable(q.clone()))?;
                for c in bindings.schemas[idx].columns() {
                    out.push(SelectItem::Expr {
                        expr: Expr::qcol(&q, &c.name),
                        alias: Some(c.name.clone()),
                    });
                }
            }
            other => out.push(other.clone()),
        }
    }
    if out.is_empty() {
        return Err(SqlError::Exec("SELECT with no projections".into()));
    }
    Ok(out)
}

/// Project one row through expanded (wildcard-free) select items.
pub(crate) fn project_row(
    db: &Database,
    bindings: &Bindings,
    items: &[SelectItem],
    row: &[Value],
) -> Result<Row, SqlError> {
    let scopes = bindings.scopes(row);
    let env = Env { scopes: &scopes, db };
    let mut projected = Vec::with_capacity(items.len());
    for item in items {
        let SelectItem::Expr { expr, .. } = item else {
            return Err(SqlError::Exec("unexpanded wildcard in projection".into()));
        };
        projected.push(eval(expr, &env)?);
    }
    Ok(projected)
}

fn plain_project(
    db: &Database,
    stmt: &SelectStmt,
    joined: &Joined,
    rows: &[Vec<Value>],
) -> Result<(Vec<String>, Vec<Row>), SqlError> {
    let items = expand_projections(stmt, &joined.bindings)?;
    let columns: Vec<String> =
        items.iter().enumerate().map(|(i, it)| output_name(it, i)).collect();
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        out.push(project_row(db, &joined.bindings, &items, row)?);
    }
    Ok((columns, out))
}

/// Group `rows` by `group_by` keys (first-seen order, [`Value::group_eq`]
/// equality), apply HAVING, and project each surviving group through
/// `items`. Shared by the direct executor's aggregate path and the
/// planner's Aggregate operator.
pub(crate) fn aggregate_rows(
    db: &Database,
    bindings: &Bindings,
    group_by: &[Expr],
    having: Option<&Expr>,
    items: &[SelectItem],
    rows: Vec<Vec<Value>>,
) -> Result<Vec<Row>, SqlError> {
    // Group rows by the GROUP BY key.
    let mut groups: Vec<(Vec<Value>, Vec<Vec<Value>>)> = Vec::new();
    for row in rows {
        let key: Vec<Value> = {
            let scopes = bindings.scopes(&row);
            let env = Env { scopes: &scopes, db };
            group_by.iter().map(|e| eval(e, &env)).collect::<Result<_, _>>()?
        };
        match groups
            .iter_mut()
            .find(|(k, _)| k.len() == key.len() && k.iter().zip(&key).all(|(a, b)| a.group_eq(b)))
        {
            Some((_, rows)) => rows.push(row),
            None => groups.push((key, vec![row])),
        }
    }
    // Global aggregate over empty input still yields one group.
    if groups.is_empty() && group_by.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let mut out = Vec::with_capacity(groups.len());
    for (_, group_rows) in &groups {
        // HAVING.
        if let Some(h) = having {
            let v = eval_grouped(h, group_rows, bindings, db)?;
            if !v.is_truthy() {
                continue;
            }
        }
        let mut projected = Vec::with_capacity(items.len());
        for item in items {
            let SelectItem::Expr { expr, .. } = item else {
                return Err(SqlError::Exec("unexpanded wildcard in projection".into()));
            };
            projected.push(eval_grouped(expr, group_rows, bindings, db)?);
        }
        out.push(projected);
    }
    Ok(out)
}

fn aggregate_project(
    db: &Database,
    stmt: &SelectStmt,
    joined: &Joined,
    rows: Vec<Vec<Value>>,
) -> Result<(Vec<String>, Vec<Row>), SqlError> {
    let items = expand_projections(stmt, &joined.bindings)?;
    let columns: Vec<String> =
        items.iter().enumerate().map(|(i, it)| output_name(it, i)).collect();
    let out = aggregate_rows(
        db,
        &joined.bindings,
        &stmt.group_by,
        stmt.having.as_ref(),
        &items,
        rows,
    )?;
    Ok((columns, out))
}

/// Evaluate an expression in grouped context: aggregate nodes fold over the
/// group; everything else evaluates against the group's first row.
pub(crate) fn eval_grouped(
    expr: &Expr,
    group_rows: &[Vec<Value>],
    bindings: &Bindings,
    db: &Database,
) -> Result<Value, SqlError> {
    match expr {
        Expr::Aggregate { func, arg, distinct } => {
            let mut vals: Vec<Value> = Vec::with_capacity(group_rows.len());
            for row in group_rows {
                match arg {
                    None => vals.push(Value::Int(1)), // COUNT(*)
                    Some(e) => {
                        let scopes = bindings.scopes(row);
                        vals.push(eval(e, &Env { scopes: &scopes, db })?);
                    }
                }
            }
            if arg.is_some() {
                vals.retain(|v| !v.is_null());
            }
            if *distinct {
                vals.sort_by(|a, b| a.total_cmp(b));
                vals.dedup_by(|a, b| a.group_eq(b));
            }
            fold_aggregate(*func, &vals)
        }
        Expr::Binary { op, left, right } => {
            use crate::ast::BinOp;
            let l = eval_grouped(left, group_rows, bindings, db)?;
            match op {
                BinOp::And | BinOp::Or => {
                    let r = eval_grouped(right, group_rows, bindings, db)?;
                    // Reuse scalar logic by building literal expressions.
                    let e = Expr::Binary {
                        op: *op,
                        left: Box::new(Expr::Literal(l)),
                        right: Box::new(Expr::Literal(r)),
                    };
                    let scopes: Vec<Scope<'_>> = Vec::new();
                    eval(&e, &Env { scopes: &scopes, db })
                }
                _ => {
                    let r = eval_grouped(right, group_rows, bindings, db)?;
                    crate::eval::eval_binop(*op, &l, &r)
                }
            }
        }
        Expr::Unary { op, expr } => {
            let v = eval_grouped(expr, group_rows, bindings, db)?;
            let e = Expr::Unary { op: *op, expr: Box::new(Expr::Literal(v)) };
            let scopes: Vec<Scope<'_>> = Vec::new();
            eval(&e, &Env { scopes: &scopes, db })
        }
        other => {
            // Non-aggregate leaf: evaluate against the first row (valid for
            // GROUP BY keys; harmless for literals/subqueries).
            match group_rows.first() {
                Some(row) => {
                    let scopes = bindings.scopes(row);
                    eval(other, &Env { scopes: &scopes, db })
                }
                None => {
                    let scopes: Vec<Scope<'_>> = Vec::new();
                    eval(other, &Env { scopes: &scopes, db })
                }
            }
        }
    }
}

fn fold_aggregate(func: AggFunc, vals: &[Value]) -> Result<Value, SqlError> {
    match func {
        AggFunc::Count => Ok(Value::Int(vals.len() as i64)),
        AggFunc::Sum | AggFunc::Avg => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut all_int = true;
            let mut sum = 0f64;
            for v in vals {
                match v {
                    Value::Int(i) => sum += *i as f64,
                    Value::Float(f) => {
                        all_int = false;
                        sum += f;
                    }
                    other => {
                        return Err(SqlError::Type(format!("{} of {other}", func.name())))
                    }
                }
            }
            if func == AggFunc::Avg {
                Ok(Value::Float(sum / vals.len() as f64))
            } else if all_int {
                Ok(Value::Int(sum as i64))
            } else {
                Ok(Value::Float(sum))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut best = vals[0].clone();
            for v in &vals[1..] {
                let take = match v.sql_cmp(&best) {
                    Some(std::cmp::Ordering::Less) => func == AggFunc::Min,
                    Some(std::cmp::Ordering::Greater) => func == AggFunc::Max,
                    Some(std::cmp::Ordering::Equal) => false,
                    None => return Err(SqlError::Type(format!("{} of mixed types", func.name()))),
                };
                if take {
                    best = v.clone();
                }
            }
            Ok(best)
        }
    }
}

/// Resolve one ORDER BY key against output column names: by (unqualified)
/// name, by 1-based ordinal, or by an aggregate's generated output name.
/// Shared by the direct executor and the planner's Sort lowering so both
/// paths accept and reject exactly the same keys.
pub(crate) fn resolve_order_key(
    columns: &[String],
    k: &crate::ast::OrderKey,
) -> Result<usize, SqlError> {
    match &k.expr {
        Expr::Column { qualifier: _, name } => columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
            .ok_or_else(|| SqlError::UnknownColumn(format!("ORDER BY {name}"))),
        Expr::Literal(Value::Int(i)) if *i >= 1 && (*i as usize) <= columns.len() => {
            Ok((*i - 1) as usize)
        }
        Expr::Aggregate { .. } => {
            // ORDER BY COUNT(*) etc: find a matching output column.
            let name =
                output_name(&SelectItem::Expr { expr: k.expr.clone(), alias: None }, 0);
            columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(&name))
                .ok_or_else(|| {
                    SqlError::Exec(format!(
                        "ORDER BY aggregate {name} must appear in the projection"
                    ))
                })
        }
        other => Err(SqlError::Exec(format!(
            "unsupported ORDER BY expression {other:?}; project it first"
        ))),
    }
}

/// Compare two rows on `(column index, descending)` ORDER BY keys with
/// [`Value::order_cmp`] (NULLS LAST ascending / NULLS FIRST descending).
pub(crate) fn cmp_rows_on(a: &[Value], b: &[Value], keys: &[(usize, bool)]) -> std::cmp::Ordering {
    for &(idx, desc) in keys {
        let o = a[idx].order_cmp(&b[idx]);
        let o = if desc { o.reverse() } else { o };
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    std::cmp::Ordering::Equal
}

/// Stable-sort rows on `(column index, descending)` ORDER BY keys.
pub(crate) fn sort_rows(rows: &mut [Row], keys: &[(usize, bool)]) {
    rows.sort_by(|a, b| cmp_rows_on(a, b, keys));
}

/// Sort the final output by the statement's ORDER BY keys. Keys may
/// reference output columns (by name or alias); other expressions are
/// unsupported after projection and reported as errors.
fn sort_output(rs: &mut ResultSet, stmt: &SelectStmt) -> Result<(), SqlError> {
    let mut keys: Vec<(usize, bool)> = Vec::with_capacity(stmt.order_by.len());
    for k in &stmt.order_by {
        keys.push((resolve_order_key(&rs.columns, k)?, k.desc));
    }
    sort_rows(&mut rs.rows, &keys);
    Ok(())
}

/// The Spider-style concert/stadium fixture used by tests across the
/// workspace (also exercised in `llmdm-nlq`).
#[cfg(test)]
pub(crate) fn concert_db() -> Database {
    tests::concert_db()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Spider-style concert/stadium fixture used across the workspace.
    pub(crate) fn concert_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE stadium (stadium_id INT, name TEXT, capacity INT, city TEXT)")
            .unwrap();
        db.execute("CREATE TABLE concert (concert_id INT, stadium_id INT, year INT, attendance INT)")
            .unwrap();
        db.execute("CREATE TABLE sports_meeting (meeting_id INT, stadium_id INT, year INT)")
            .unwrap();
        db.execute(
            "INSERT INTO stadium VALUES \
             (1, 'Eagle Arena', 50000, 'Springfield'), \
             (2, 'River Dome', 30000, 'Shelbyville'), \
             (3, 'Sun Bowl', 45000, 'Ogdenville'), \
             (4, 'Metro Field', 20000, 'North Haverbrook')",
        )
        .unwrap();
        db.execute(
            "INSERT INTO concert VALUES \
             (10, 1, 2014, 40000), (11, 1, 2014, 42000), (12, 2, 2014, 25000), \
             (13, 3, 2015, 30000), (14, 1, 2015, 41000)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO sports_meeting VALUES (20, 2, 2015), (21, 3, 2015), (22, 1, 2016)",
        )
        .unwrap();
        db
    }

    #[test]
    fn where_filter() {
        let mut db = concert_db();
        let rs = db.query("SELECT name FROM stadium WHERE capacity > 40000").unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn inner_join() {
        let mut db = concert_db();
        let rs = db
            .query(
                "SELECT DISTINCT s.name FROM stadium s JOIN concert c \
                 ON s.stadium_id = c.stadium_id WHERE c.year = 2014",
            )
            .unwrap();
        let mut names: Vec<String> =
            rs.rows.iter().map(|r| format!("{}", r[0])).collect();
        names.sort();
        assert_eq!(names, vec!["'Eagle Arena'", "'River Dome'"]);
    }

    #[test]
    fn left_join_pads_nulls() {
        let mut db = concert_db();
        let rs = db
            .query(
                "SELECT s.name, c.concert_id FROM stadium s LEFT JOIN concert c \
                 ON s.stadium_id = c.stadium_id",
            )
            .unwrap();
        // Metro Field (id 4) has no concerts → one padded row.
        let padded: Vec<_> = rs.rows.iter().filter(|r| r[1].is_null()).collect();
        assert_eq!(padded.len(), 1);
        assert_eq!(padded[0][0], Value::Str("Metro Field".into()));
    }

    #[test]
    fn group_by_count_having() {
        let mut db = concert_db();
        let rs = db
            .query(
                "SELECT stadium_id, COUNT(*) FROM concert GROUP BY stadium_id \
                 HAVING COUNT(*) >= 2",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(1));
        assert_eq!(rs.rows[0][1], Value::Int(3));
    }

    #[test]
    fn aggregates_sum_avg_min_max() {
        let mut db = concert_db();
        let rs = db
            .query("SELECT SUM(capacity), AVG(capacity), MIN(capacity), MAX(capacity) FROM stadium")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(145000));
        assert_eq!(rs.rows[0][1], Value::Float(36250.0));
        assert_eq!(rs.rows[0][2], Value::Int(20000));
        assert_eq!(rs.rows[0][3], Value::Int(50000));
    }

    #[test]
    fn count_distinct() {
        let mut db = concert_db();
        let rs = db.query("SELECT COUNT(DISTINCT stadium_id) FROM concert").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let mut db = concert_db();
        let rs = db.query("SELECT COUNT(*), SUM(capacity) FROM stadium WHERE capacity > 99999").unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert!(rs.rows[0][1].is_null());
    }

    #[test]
    fn order_by_limit_offset() {
        let mut db = concert_db();
        let rs = db
            .query("SELECT name, capacity FROM stadium ORDER BY capacity DESC LIMIT 2 OFFSET 1")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Str("Sun Bowl".into()));
    }

    #[test]
    fn order_by_unprojected_aggregate() {
        let mut db = concert_db();
        let rs = db
            .query(
                "SELECT stadium_id FROM concert WHERE year = 2014 \
                 GROUP BY stadium_id ORDER BY COUNT(*) DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(rs.columns, vec!["stadium_id"]);
        assert_eq!(rs.rows[0][0], Value::Int(1));
    }

    #[test]
    fn order_by_aggregate() {
        let mut db = concert_db();
        let rs = db
            .query(
                "SELECT stadium_id, COUNT(*) FROM concert GROUP BY stadium_id \
                 ORDER BY COUNT(*) DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(1));
    }

    #[test]
    fn in_subquery() {
        let mut db = concert_db();
        let rs = db
            .query(
                "SELECT name FROM stadium WHERE stadium_id IN \
                 (SELECT stadium_id FROM concert WHERE year = 2015)",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn union_intersect_except() {
        let mut db = concert_db();
        // Stadiums with 2014 concerts: {1, 2}; with 2015 sports meetings: {2, 3}.
        let union = db
            .query(
                "SELECT stadium_id FROM concert WHERE year = 2014 UNION \
                 SELECT stadium_id FROM sports_meeting WHERE year = 2015",
            )
            .unwrap();
        assert_eq!(union.rows.len(), 3);
        let inter = db
            .query(
                "SELECT stadium_id FROM concert WHERE year = 2014 INTERSECT \
                 SELECT stadium_id FROM sports_meeting WHERE year = 2015",
            )
            .unwrap();
        assert_eq!(inter.rows.len(), 1);
        assert_eq!(inter.rows[0][0], Value::Int(2));
        let except = db
            .query(
                "SELECT stadium_id FROM concert WHERE year = 2014 EXCEPT \
                 SELECT stadium_id FROM sports_meeting WHERE year = 2015",
            )
            .unwrap();
        assert_eq!(except.rows.len(), 1);
        assert_eq!(except.rows[0][0], Value::Int(1));
    }

    #[test]
    fn union_all_keeps_duplicates() {
        let mut db = concert_db();
        let rs = db
            .query(
                "SELECT stadium_id FROM concert WHERE year = 2014 UNION ALL \
                 SELECT stadium_id FROM concert WHERE year = 2014",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 6);
    }

    #[test]
    fn scalar_subquery_in_where() {
        let mut db = concert_db();
        let rs = db
            .query("SELECT name FROM stadium WHERE capacity = (SELECT MAX(capacity) FROM stadium)")
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Str("Eagle Arena".into()));
    }

    #[test]
    fn exists_subquery() {
        let mut db = concert_db();
        let rs = db
            .query("SELECT name FROM stadium WHERE EXISTS (SELECT 1 FROM concert)")
            .unwrap();
        assert_eq!(rs.rows.len(), 4);
        let rs = db
            .query(
                "SELECT name FROM stadium WHERE EXISTS \
                 (SELECT 1 FROM concert WHERE year = 1999)",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 0);
    }

    #[test]
    fn update_with_expression() {
        let mut db = concert_db();
        let rs = db.execute("UPDATE stadium SET capacity = capacity + 1000 WHERE stadium_id = 4").unwrap();
        assert_eq!(rs.affected, 1);
        let rs = db.query("SELECT capacity FROM stadium WHERE stadium_id = 4").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(21000));
    }

    #[test]
    fn delete_with_predicate() {
        let mut db = concert_db();
        let rs = db.execute("DELETE FROM concert WHERE year = 2014").unwrap();
        assert_eq!(rs.affected, 3);
        assert_eq!(db.query("SELECT * FROM concert").unwrap().rows.len(), 2);
    }

    #[test]
    fn insert_with_named_columns() {
        let mut db = concert_db();
        db.execute("INSERT INTO stadium (stadium_id, name) VALUES (9, 'New Park')").unwrap();
        let rs = db.query("SELECT capacity FROM stadium WHERE stadium_id = 9").unwrap();
        assert!(rs.rows[0][0].is_null());
    }

    #[test]
    fn select_without_from() {
        let mut db = Database::new();
        let rs = db.query("SELECT 1 + 2 AS three, 'x'").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
        assert_eq!(rs.columns[0], "three");
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let mut db = concert_db();
        let rs = db
            .query("SELECT s.* FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id")
            .unwrap();
        assert_eq!(rs.columns.len(), 4);
        let rs = db.query("SELECT * FROM stadium").unwrap();
        assert_eq!(rs.columns, vec!["stadium_id", "name", "capacity", "city"]);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let mut db = concert_db();
        assert!(matches!(db.query("SELECT * FROM missing"), Err(SqlError::UnknownTable(_))));
        assert!(matches!(
            db.query("SELECT wrong FROM stadium"),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn ambiguous_column_in_join() {
        let mut db = concert_db();
        let err = db.query(
            "SELECT stadium_id FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id",
        );
        assert!(matches!(err, Err(SqlError::AmbiguousColumn(_))));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let mut db = concert_db();
        assert!(db.query("SELECT * FROM stadium s, concert s").is_err());
    }

    #[test]
    fn three_way_join() {
        let mut db = concert_db();
        let rs = db
            .query(
                "SELECT DISTINCT s.name FROM stadium s \
                 JOIN concert c ON s.stadium_id = c.stadium_id \
                 JOIN sports_meeting m ON s.stadium_id = m.stadium_id",
            )
            .unwrap();
        // Stadiums with both concerts and meetings: 1, 2, 3.
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn group_by_expression_key() {
        let mut db = concert_db();
        let rs = db
            .query("SELECT year, COUNT(*) FROM concert GROUP BY year ORDER BY year")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0], vec![Value::Int(2014), Value::Int(3)]);
    }

    /// A fixture with NULL sort keys and mixed Int/Float keys.
    fn nullable_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INT, score FLOAT)").unwrap();
        db.execute(
            "INSERT INTO t VALUES (1, 2.5), (2, NULL), (3, 1.0), (4, NULL), (5, 3)",
        )
        .unwrap();
        db
    }

    #[test]
    fn order_by_nulls_last_ascending() {
        let mut db = nullable_db();
        let rs = db.query("SELECT id, score FROM t ORDER BY score").unwrap();
        let ids: Vec<_> = rs.rows.iter().map(|r| r[0].clone()).collect();
        // Non-NULL ascending (mixed Int/Float compare numerically), then
        // NULLs last in input order (stable sort).
        assert_eq!(
            ids,
            vec![Value::Int(3), Value::Int(1), Value::Int(5), Value::Int(2), Value::Int(4)]
        );
    }

    #[test]
    fn order_by_nulls_first_descending() {
        let mut db = nullable_db();
        let rs = db.query("SELECT id, score FROM t ORDER BY score DESC").unwrap();
        let ids: Vec<_> = rs.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(
            ids,
            vec![Value::Int(2), Value::Int(4), Value::Int(5), Value::Int(1), Value::Int(3)]
        );
    }

    #[test]
    fn order_by_unprojected_column_with_user_sort0_alias() {
        // A user column literally named `__sort0` must not collide with the
        // hidden ORDER BY projection (which is positional, not named).
        let mut db = concert_db();
        let rs = db
            .query("SELECT name AS __sort0 FROM stadium ORDER BY capacity DESC LIMIT 1")
            .unwrap();
        assert_eq!(rs.columns, vec!["__sort0"]);
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Str("Eagle Arena".into()));
    }

    #[test]
    fn order_by_unprojected_plain_column() {
        let mut db = concert_db();
        let rs = db.query("SELECT name FROM stadium ORDER BY capacity").unwrap();
        assert_eq!(rs.columns, vec!["name"]);
        assert_eq!(rs.rows[0][0], Value::Str("Metro Field".into()));
        assert_eq!(rs.rows[3][0], Value::Str("Eagle Arena".into()));
    }

    #[test]
    fn order_by_aggregate_on_non_aggregate_core_is_typed_error() {
        // Legacy behavior silently collapsed the SELECT into a one-row
        // global aggregate; now it is a typed error on both paths.
        let mut db = concert_db();
        let planned = db.query("SELECT name FROM stadium ORDER BY COUNT(*)");
        assert!(matches!(planned, Err(SqlError::Exec(_))), "{planned:?}");
        let stmt = crate::parser::parse_statement("SELECT name FROM stadium ORDER BY COUNT(*)")
            .unwrap();
        let Statement::Select(sel) = stmt else { panic!("not a select") };
        let direct = execute_select_direct(&db, &sel);
        assert!(matches!(direct, Err(SqlError::Exec(_))), "{direct:?}");
    }

    #[test]
    fn direct_oracle_matches_planner_on_subqueries() {
        let mut db = concert_db();
        let sql = "SELECT name FROM stadium WHERE stadium_id IN \
                   (SELECT stadium_id FROM concert WHERE year = 2015) ORDER BY name";
        let planned = db.query(sql).unwrap();
        let stmt = crate::parser::parse_statement(sql).unwrap();
        let Statement::Select(sel) = stmt else { panic!("not a select") };
        let direct = execute_select_direct(&db, &sel).unwrap();
        assert!(planned.bit_eq(&direct));
    }
}
