//! The SQL abstract syntax tree.


use crate::value::{DataType, Value};

/// Binary operators.
#[allow(missing_docs)] // variants are self-describing operator names
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Unary operators.
#[allow(missing_docs)] // variants are self-describing operator names
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Aggregate functions.
#[allow(missing_docs)] // variants are the SQL aggregate names
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// Parse an aggregate function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// The SQL name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference, optionally qualified: `t.col` or `col`.
    Column {
        /// Table name or alias.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Aggregate call: `COUNT(*)`, `SUM(DISTINCT x)`, …
    Aggregate {
        /// The function.
        func: AggFunc,
        /// The argument; `None` means `*` (COUNT only).
        arg: Option<Box<Expr>>,
        /// DISTINCT flag.
        distinct: bool,
    },
    /// `expr [NOT] IN (v1, v2, …)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// The list.
        list: Vec<Expr>,
        /// NOT IN.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT …)`
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery (must project one column).
        subquery: Box<SelectStmt>,
        /// NOT IN.
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT …)`
    Exists {
        /// The subquery.
        subquery: Box<SelectStmt>,
        /// NOT EXISTS.
        negated: bool,
    },
    /// Scalar subquery: `(SELECT …)` producing one value.
    ScalarSubquery(Box<SelectStmt>),
    /// `expr [NOT] LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern literal.
        pattern: String,
        /// NOT LIKE.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// NOT BETWEEN.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// IS NOT NULL.
        negated: bool,
    },
    /// `LLM_MAP(expr, 'prompt template')` — semantic projection: the
    /// argument value is rendered into a prompt built from the template
    /// and the session model's completion becomes the result (TEXT).
    /// `NULL` propagates without a model call.
    LlmMap {
        /// The mapped expression.
        arg: Box<Expr>,
        /// The prompt template (string literal in the grammar).
        template: String,
    },
    /// `LLM_FILTER(expr, 'predicate prompt')` — semantic predicate: the
    /// model's completion is parsed as a boolean. `NULL` input yields
    /// `NULL` without a model call.
    LlmFilter {
        /// The tested expression.
        arg: Box<Expr>,
        /// The predicate prompt template.
        template: String,
    },
    /// `LLM_MATCH(a, b, 'prompt')` — semantic equality between two
    /// values, used as the `ON` condition of `LLM_JOIN`. A `NULL` on
    /// either side yields `NULL` without a model call.
    LlmMatch {
        /// Left value.
        left: Box<Expr>,
        /// Right value.
        right: Box<Expr>,
        /// The matching prompt template.
        template: String,
    },
}

impl Expr {
    /// Column shorthand.
    pub fn col(name: &str) -> Expr {
        Expr::Column { qualifier: None, name: name.to_string() }
    }

    /// Qualified column shorthand.
    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column { qualifier: Some(table.to_string()), name: name.to_string() }
    }

    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Binary-op shorthand.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(l), right: Box::new(r) }
    }

    /// Does this expression (recursively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => expr.contains_aggregate(),
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::LlmMap { arg, .. } | Expr::LlmFilter { arg, .. } => arg.contains_aggregate(),
            Expr::LlmMatch { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            _ => false,
        }
    }

    /// Does this expression (recursively) contain a semantic operator
    /// (`LLM_MAP` / `LLM_FILTER` / `LLM_MATCH`)? Subquery bodies are not
    /// descended into — they plan and account for themselves.
    pub fn contains_llm(&self) -> bool {
        match self {
            Expr::LlmMap { .. } | Expr::LlmFilter { .. } | Expr::LlmMatch { .. } => true,
            Expr::Literal(_) | Expr::Column { .. } => false,
            Expr::Binary { left, right, .. } => left.contains_llm() || right.contains_llm(),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
                expr.contains_llm()
            }
            Expr::Aggregate { arg, .. } => arg.as_ref().is_some_and(|a| a.contains_llm()),
            Expr::InList { expr, list, .. } => {
                expr.contains_llm() || list.iter().any(|e| e.contains_llm())
            }
            Expr::Between { expr, low, high, .. } => {
                expr.contains_llm() || low.contains_llm() || high.contains_llm()
            }
            Expr::InSubquery { expr, .. } => expr.contains_llm(),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => false,
        }
    }

    /// Number of semantic-operator invocations in this expression — the
    /// prompts evaluating it once costs (before dedup/caching). Subquery
    /// bodies are excluded, like [`Expr::contains_llm`].
    pub fn count_llm(&self) -> usize {
        match self {
            Expr::LlmMap { arg, .. } | Expr::LlmFilter { arg, .. } => 1 + arg.count_llm(),
            Expr::LlmMatch { left, right, .. } => 1 + left.count_llm() + right.count_llm(),
            Expr::Literal(_) | Expr::Column { .. } => 0,
            Expr::Binary { left, right, .. } => left.count_llm() + right.count_llm(),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
                expr.count_llm()
            }
            Expr::Aggregate { arg, .. } => arg.as_ref().map_or(0, |a| a.count_llm()),
            Expr::InList { expr, list, .. } => {
                expr.count_llm() + list.iter().map(Expr::count_llm).sum::<usize>()
            }
            Expr::Between { expr, low, high, .. } => {
                expr.count_llm() + low.count_llm() + high.count_llm()
            }
            Expr::InSubquery { expr, .. } => expr.count_llm(),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => 0,
        }
    }
}

/// One projected item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output alias.
        alias: Option<String>,
    },
}

/// Join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// INNER JOIN (also comma-joins).
    Inner,
    /// `LEFT [OUTER] JOIN`.
    Left,
}

/// A table in the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// Table name.
    pub table: String,
    /// Optional alias.
    pub alias: Option<String>,
    /// How this table joins the preceding items (`None` for the first).
    pub join: Option<(JoinType, Expr)>,
}

/// ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// Set operations between SELECTs.
#[allow(missing_docs)] // variants are the SQL set-operation names
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// DISTINCT flag.
    pub distinct: bool,
    /// Projected items.
    pub projections: Vec<SelectItem>,
    /// FROM clause (empty = scalar SELECT like `SELECT 1+1`).
    pub from: Vec<FromItem>,
    /// WHERE predicate.
    pub selection: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET.
    pub offset: Option<usize>,
    /// Chained set operation: `(op, ALL?, rhs)`.
    pub set_op: Option<(SetOp, bool, Box<SelectStmt>)>,
}

impl SelectStmt {
    /// An empty SELECT skeleton.
    pub fn empty() -> Self {
        SelectStmt {
            distinct: false,
            projections: Vec::new(),
            from: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
            set_op: None,
        }
    }
}

/// An ORDER of assignment in UPDATE.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Target column.
    pub column: String,
    /// New value expression.
    pub value: Expr,
}

/// A SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT query.
    Select(SelectStmt),
    /// `EXPLAIN [ANALYZE] SELECT …` — renders the optimized logical plan
    /// and the physical operator tree. Plain `EXPLAIN` does not execute;
    /// `EXPLAIN ANALYZE` executes the plan with per-operator
    /// instrumentation and annotates each operator with actual rows,
    /// loops and wall time.
    Explain {
        /// Whether to execute and annotate with actual row counts/timing.
        analyze: bool,
        /// The query being explained.
        select: SelectStmt,
    },
    /// `INSERT INTO t [(cols)] VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Row value expressions.
        values: Vec<Vec<Expr>>,
    },
    /// `UPDATE t SET c = e, … [WHERE …]`
    Update {
        /// Target table.
        table: String,
        /// SET assignments.
        assignments: Vec<Assignment>,
        /// Optional predicate.
        selection: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE …]`
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate.
        selection: Option<Expr>,
    },
    /// `CREATE TABLE t (col TYPE, …) [PERSIST]`
    CreateTable {
        /// New table name.
        table: String,
        /// Column definitions.
        columns: Vec<(String, DataType)>,
        /// IF NOT EXISTS flag.
        if_not_exists: bool,
        /// PERSIST flag: back the table with the durable store (only
        /// honored when executing through a `PersistentDb`).
        persist: bool,
    },
    /// `DROP TABLE [IF EXISTS] t`
    DropTable {
        /// Table to drop.
        table: String,
        /// IF EXISTS flag.
        if_exists: bool,
    },
    /// `BEGIN [TRANSACTION]`
    Begin,
    /// `COMMIT`
    Commit,
    /// `ROLLBACK`
    Rollback,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_walks_tree() {
        let agg = Expr::Aggregate { func: AggFunc::Count, arg: None, distinct: false };
        let e = Expr::bin(BinOp::Gt, agg, Expr::lit(3i64));
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn contains_llm_walks_tree_but_not_subqueries() {
        let m = Expr::LlmMap { arg: Box::new(Expr::col("x")), template: "t".into() };
        assert!(m.contains_llm());
        assert!(Expr::bin(BinOp::Eq, m.clone(), Expr::lit(1i64)).contains_llm());
        assert!(!Expr::col("x").contains_llm());
        // A subquery body with an LLM op does not make the outer
        // expression semantic: the subquery plans itself.
        let mut sub = SelectStmt::empty();
        sub.projections.push(SelectItem::Expr { expr: m, alias: None });
        assert!(!Expr::Exists { subquery: Box::new(sub), negated: false }.contains_llm());
    }

    #[test]
    fn aggfunc_names_roundtrip() {
        for f in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            assert_eq!(AggFunc::from_name(f.name()), Some(f));
        }
        assert_eq!(AggFunc::from_name("UPPER"), None);
    }

    #[test]
    fn shorthand_constructors() {
        assert_eq!(
            Expr::qcol("t", "c"),
            Expr::Column { qualifier: Some("t".into()), name: "c".into() }
        );
        assert_eq!(Expr::lit(5i64), Expr::Literal(Value::Int(5)));
    }
}
