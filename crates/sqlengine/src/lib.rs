//! # llmdm-sqlengine — a mini relational engine
//!
//! Several of the paper's applications need a *real* SQL substrate to be
//! reproducible rather than mocked:
//!
//! * **SQL generation** (§II-A1) generates queries that must actually
//!   execute ("generate diverse and correctly executable SQL queries for
//!   thoroughly testing the performance of DBMS");
//! * **NL2SQL** (§II-B1) and the Table II experiment measure *execution
//!   accuracy* — a predicted query is correct iff it returns the same
//!   result set as the gold query;
//! * **NL2Transaction** (§II-B1) needs `BEGIN`/`COMMIT`/`ROLLBACK`;
//! * **table understanding** (§II-C2) runs statistics queries like
//!   `SELECT AVG(salary) FROM employee`.
//!
//! This crate is that substrate: a from-scratch lexer, recursive-descent
//! parser, expression evaluator, and executor for a practical SQL subset —
//! `SELECT` with inner/left joins, `WHERE`, `GROUP BY`/`HAVING`,
//! aggregates, `ORDER BY`/`LIMIT`/`OFFSET`, `DISTINCT`, set operations,
//! `IN`/`EXISTS`/scalar subqueries, `LIKE`/`BETWEEN`/`IS NULL`, plus DML
//! (`INSERT`/`UPDATE`/`DELETE`), DDL (`CREATE`/`DROP TABLE`), and
//! snapshot-based transactions.
//!
//! ```
//! use llmdm_sqlengine::{Database, Value};
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
//! let rs = db.query("SELECT name FROM t WHERE id = 2").unwrap();
//! assert_eq!(rs.rows[0][0], Value::Str("b".into()));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod error;
pub mod eval;
pub mod exec;
pub mod lexer;
pub mod parser;
pub(crate) mod plan;
pub mod printer;
pub mod result;
pub mod schema;
pub mod semantic;
pub mod storage;
pub mod value;

pub use ast::{Expr, SelectStmt, Statement};
pub use catalog::Database;
pub use error::SqlError;
pub use parser::parse_statement;
pub use printer::print_statement;
pub use result::ResultSet;
pub use schema::{Column, Row, Schema, Table};
pub use semantic::ModelHandle;
pub use storage::PersistentDb;
pub use value::{DataType, Value};
