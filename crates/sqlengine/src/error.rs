//! Error type for the SQL engine.

use std::fmt;

/// Errors from lexing, parsing, planning, or executing SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexer error at a byte offset.
    Lex {
        /// Human-readable message.
        message: String,
        /// Byte offset into the input.
        offset: usize,
    },
    /// Parser error.
    Parse(String),
    /// Unknown table.
    UnknownTable(String),
    /// Unknown or ambiguous column.
    UnknownColumn(String),
    /// A column reference matched more than one table.
    AmbiguousColumn(String),
    /// Table already exists.
    TableExists(String),
    /// Type error during evaluation.
    Type(String),
    /// Runtime execution error (division by zero, arity mismatch, …).
    Exec(String),
    /// Transaction state error.
    Txn(String),
    /// The durable storage tier failed (wraps a `llmdm_store` error).
    Storage(String),
    /// A semantic operator failed: no session model attached, the model
    /// call errored, or the completion could not be parsed into the
    /// operator's result type.
    Model(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { message, offset } => write!(f, "lex error at byte {offset}: {message}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            SqlError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            SqlError::TableExists(t) => write!(f, "table already exists: {t}"),
            SqlError::Type(m) => write!(f, "type error: {m}"),
            SqlError::Exec(m) => write!(f, "execution error: {m}"),
            SqlError::Txn(m) => write!(f, "transaction error: {m}"),
            SqlError::Storage(m) => write!(f, "storage error: {m}"),
            SqlError::Model(m) => write!(f, "model error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(SqlError::Parse("x".into()).to_string().contains("parse"));
        assert!(SqlError::UnknownTable("t".into()).to_string().contains('t'));
        assert!(SqlError::Lex { message: "bad".into(), offset: 3 }.to_string().contains('3'));
    }
}
