//! Semantic SQL support: the session model seam, prompt construction,
//! completion parsing, the per-operator dedup scope, and the deterministic
//! `semsql` solver the simulated models use in tests and benches.
//!
//! The paper's §III query-optimization vision embeds LLM invocations
//! directly in relational plans. Three operators realize that here:
//!
//! * `LLM_MAP(expr, 'prompt')` — semantic projection; evaluates `expr`,
//!   renders it into a prompt, returns the completion as TEXT.
//! * `LLM_FILTER(expr, 'prompt')` — semantic predicate; the completion is
//!   parsed as a boolean.
//! * `LLM_MATCH(a, b, 'prompt')` — semantic equality, the ON predicate of
//!   `LLM_JOIN`; the completion is parsed as a boolean.
//!
//! NULL inputs never reach the model: the operator returns NULL (map) or
//! FALSE-excluded NULL (filter/match) without a call, mirroring ordinary
//! SQL three-valued logic.
//!
//! Every call routes through a [`ModelHandle`] attached to the session
//! (`Database::with_model`). The handle carries the composed model stack
//! (tier, retry, semantic cache), the [`UsageMeter`] it is billed on, and
//! the [`SharedCache`] so the planner can read live [`CacheStats`] for
//! cost estimation and EXPLAIN ANALYZE can attribute cache hits.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use llmdm_model::{
    CompletionRequest, LanguageModel, ModelError, ModelStack, ModelZoo, PromptEnvelope,
    PromptSolver, SolvedTask, UsageMeter,
};
use llmdm_semcache::{shared_cache, CacheConfig, CacheStackExt, CacheStats, SharedCache};

use crate::error::SqlError;
use crate::value::Value;

// ---------------------------------------------------------------------------
// ModelHandle: the session seam
// ---------------------------------------------------------------------------

/// The per-session LLM handle semantic operators route through.
///
/// Cloning is cheap (everything inside is `Arc`-shared); a clone meters
/// into the same [`UsageMeter`] and probes the same cache.
#[derive(Clone)]
pub struct ModelHandle {
    model: Arc<dyn LanguageModel>,
    meter: UsageMeter,
    cache: Option<SharedCache>,
}

impl fmt::Debug for ModelHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelHandle")
            .field("model", &self.model.name())
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

impl ModelHandle {
    /// Wrap an already-built model with the meter it bills into.
    pub fn new(model: Arc<dyn LanguageModel>, meter: UsageMeter) -> Self {
        ModelHandle { model, meter, cache: None }
    }

    /// Attach the semantic cache the model stack probes, so the planner
    /// can read its live hit ratio and EXPLAIN ANALYZE can attribute
    /// cache hits per operator.
    pub fn with_cache(mut self, cache: SharedCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The composed model.
    pub fn model(&self) -> &Arc<dyn LanguageModel> {
        &self.model
    }

    /// The meter this handle bills into (dollar source of truth).
    pub fn meter(&self) -> &UsageMeter {
        &self.meter
    }

    /// The attached semantic cache, if any.
    pub fn cache(&self) -> Option<&SharedCache> {
        self.cache.as_ref()
    }

    /// Live cache counters (zeroed default when no cache is attached).
    pub fn cache_stats(&self) -> CacheStats {
        match &self.cache {
            Some(c) => llmdm_rt::lock_recover(c).stats(),
            None => CacheStats::default(),
        }
    }

    /// Live cache hit ratio in `[0, 1]`; `0.0` without a cache or before
    /// any lookups. Feeds the planner's cache-aware call estimates.
    pub fn cache_hit_ratio(&self) -> f64 {
        self.cache_stats().hit_ratio()
    }

    /// Expected dollars for one more model call: the meter's observed
    /// per-call average when there is history, otherwise a nominal
    /// 256-in/16-out-token call priced for the stack's base model (layer
    /// suffixes like `+cache` stripped from the name).
    pub fn estimated_call_dollars(&self) -> f64 {
        let snap = self.meter.snapshot();
        if snap.total_calls() > 0 {
            return snap.total_dollars() / snap.total_calls() as f64;
        }
        let name = self.model.name();
        let base = name.split('+').next().unwrap_or(name);
        self.meter.prices().get(base).map(|p| p.cost(256, 16)).unwrap_or(0.0)
    }

    /// The full deterministic test stack: large sim tier with the
    /// [`SemSqlSolver`] registered, resil retry, semantic cache on top,
    /// billed on the zoo's meter. Byte-reproducible for a given `seed` —
    /// sim completions are keyed on `(model seed, prompt)` only, so call
    /// order and dedup never change results.
    pub fn sim(seed: u64) -> Self {
        let zoo = ModelZoo::standard(seed);
        zoo.register_solver(Arc::new(SemSqlSolver));
        let meter = zoo.meter().clone();
        // Exact-reuse thresholds: similarity-based reuse would let one
        // row's completion answer a *different* row's prompt, and
        // augment-rewrites would key completions on cache state — both
        // make results depend on operator evaluation order, which the
        // planner deliberately changes (dedup, predicate reordering).
        // Identical prompts embed identically (cosine ≈ 1.0); everything
        // else must miss for planner ≡ direct to hold by construction.
        let cache = shared_cache(CacheConfig {
            reuse_threshold: 0.9999,
            augment_threshold: 0.9999,
            ..CacheConfig::default()
        });
        let model =
            ModelStack::new(&zoo).with_default_retry().with_cache(cache.clone()).build_arc();
        ModelHandle { model, meter, cache: Some(cache) }
    }

    /// [`ModelHandle::sim`] without the semantic cache: every prompt that
    /// isn't deduped inside an operator is a billed model call. This is
    /// the baseline benchmarks compare against to isolate what operator
    /// dedup saves versus what the cache saves.
    pub fn sim_uncached(seed: u64) -> Self {
        let zoo = ModelZoo::standard(seed);
        zoo.register_solver(Arc::new(SemSqlSolver));
        let meter = zoo.meter().clone();
        let model = ModelStack::new(&zoo).with_default_retry().build_arc();
        ModelHandle { model, meter, cache: None }
    }
}

// ---------------------------------------------------------------------------
// Prompt construction + completion parsing
// ---------------------------------------------------------------------------

/// Header values must stay single-line; templates are user text.
fn sanitize_header(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

/// Render an evaluated SQL value into prompt body text. Strings are raw
/// (no quotes) — the model sees the data, not SQL syntax.
fn render_prompt_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Str(s) => s.clone(),
        Value::Bool(b) => if *b { "true" } else { "false" }.into(),
        other => other.to_string(),
    }
}

/// Escape a value for the two-sided `LLM_MATCH` body (one line per side).
fn escape_line(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n").replace('\r', "\\r")
}

/// Build the prompt for `LLM_MAP` / `LLM_FILTER` over one input value.
pub fn unary_prompt(op: &str, template: &str, value: &Value) -> String {
    PromptEnvelope::builder("semsql")
        .header("op", op)
        .header("template", sanitize_header(template))
        .body(render_prompt_value(value))
        .build()
}

/// Build the prompt for `LLM_MATCH` over a pair of values.
pub fn match_prompt(template: &str, left: &Value, right: &Value) -> String {
    PromptEnvelope::builder("semsql")
        .header("op", "match")
        .header("template", sanitize_header(template))
        .body(format!(
            "left: {}\nright: {}",
            escape_line(&render_prompt_value(left)),
            escape_line(&render_prompt_value(right))
        ))
        .build()
}

/// Parse a completion as a semantic-predicate boolean.
pub fn parse_bool(text: &str) -> Result<bool, SqlError> {
    match text.trim().to_ascii_lowercase().as_str() {
        "true" | "yes" => Ok(true),
        "false" | "no" => Ok(false),
        other => Err(SqlError::Model(format!(
            "unparseable boolean completion: {:?}",
            other.chars().take(40).collect::<String>()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Per-operator dedup scope
// ---------------------------------------------------------------------------

/// Counters one semantic operator accumulates while executing; copied
/// into its `OpStat` for EXPLAIN ANALYZE.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SemCounters {
    /// Model invocations actually issued (cache reuse hits don't count).
    pub calls: u64,
    /// Prompts answered from this operator's memo without any model-stack
    /// probe (the batch-dedup rule: one call fans out to N rows).
    pub dedup_hits: u64,
    /// Prompts answered by the semantic cache (stack probed, model not).
    pub cache_hits: u64,
    /// Dollars billed on the session meter by this operator's calls.
    pub dollars: f64,
}

/// The prompt memo + counters for one executing semantic operator.
///
/// Implements the batch-dedup optimizer rule while preserving Volcano
/// streaming: rather than materializing the input to group identical
/// prompts up front, each operator memoizes completions per prompt, so
/// N rows rendering the same prompt cost one model call. Errors are
/// memoized too — a deterministic model fails a prompt identically every
/// time, and re-calling would double-bill.
#[derive(Debug, Default)]
pub struct SemScope {
    memo: RefCell<BTreeMap<String, Result<String, SqlError>>>,
    counters: RefCell<SemCounters>,
}

impl SemScope {
    /// Fresh scope for one operator execution.
    pub fn new() -> Rc<SemScope> {
        Rc::new(SemScope::default())
    }

    /// Snapshot of the counters so far.
    pub fn counters(&self) -> SemCounters {
        *self.counters.borrow()
    }
}

thread_local! {
    /// Stack of scopes for the semantic operators currently executing on
    /// this thread. `eval` routes prompts through the innermost scope;
    /// with no scope (the differential oracle's direct path) prompts go
    /// straight to the model, un-memoized.
    static SEM_SCOPES: RefCell<Vec<Rc<SemScope>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard pushing `scope` for the duration of an operator's `next()`.
pub struct ScopeGuard;

impl ScopeGuard {
    /// Enter `scope`; popped on drop.
    pub fn enter(scope: Rc<SemScope>) -> ScopeGuard {
        SEM_SCOPES.with(|s| s.borrow_mut().push(scope));
        ScopeGuard
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SEM_SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

fn current_scope() -> Option<Rc<SemScope>> {
    SEM_SCOPES.with(|s| s.borrow().last().cloned())
}

// ---------------------------------------------------------------------------
// The completion path
// ---------------------------------------------------------------------------

/// Issue one prompt through the session handle, measuring billed dollars
/// and cache reuse via meter/cache deltas around the call.
fn call_model(handle: &ModelHandle, prompt: &str) -> (Result<String, SqlError>, SemCounters) {
    let before = handle.meter().snapshot();
    let reuse_before = handle.cache_stats().reuse_hits;
    let req = CompletionRequest::new(prompt);
    let result = handle
        .model()
        .complete(&req)
        .map(|c| c.text)
        .map_err(|e| SqlError::Model(e.to_string()));
    let after = handle.meter().snapshot();
    let reuse_after = handle.cache_stats().reuse_hits;
    let cache_hit = reuse_after > reuse_before;
    let counters = SemCounters {
        calls: if cache_hit { 0 } else { 1 },
        dedup_hits: 0,
        cache_hits: u64::from(cache_hit),
        dollars: after.dollars_since(&before),
    };
    (result, counters)
}

/// Resolve one semantic prompt to its completion text.
///
/// Routing: innermost [`SemScope`] memo first (dedup hit — free), then
/// the model stack (whose cache layer may answer without a model call).
/// Counters accrue on the scope; without a scope the call is still
/// metered globally but unattributed (the direct oracle path).
pub fn complete(handle: Option<&ModelHandle>, prompt: &str) -> Result<String, SqlError> {
    let Some(handle) = handle else {
        return Err(SqlError::Model(
            "no session model attached — use Database::with_model / set_model".into(),
        ));
    };
    match current_scope() {
        Some(scope) => {
            if let Some(hit) = scope.memo.borrow().get(prompt) {
                scope.counters.borrow_mut().dedup_hits += 1;
                return hit.clone();
            }
            let (result, delta) = call_model(handle, prompt);
            scope.memo.borrow_mut().insert(prompt.to_string(), result.clone());
            let mut c = scope.counters.borrow_mut();
            c.calls += delta.calls;
            c.cache_hits += delta.cache_hits;
            c.dollars += delta.dollars;
            result
        }
        None => call_model(handle, prompt).0,
    }
}

// ---------------------------------------------------------------------------
// The deterministic semsql solver
// ---------------------------------------------------------------------------

/// FNV-1a over a string — a local copy (the model crate's hash helpers
/// are private) used only to derive deterministic fallback labels.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const POSITIVE_WORDS: &[&str] = &["good", "great", "love", "happy", "excellent", "wonderful"];
const NEGATIVE_WORDS: &[&str] = &["bad", "terrible", "hate", "awful", "sad", "broken"];

fn sentiment(text: &str) -> &'static str {
    let lower = text.to_ascii_lowercase();
    let pos = POSITIVE_WORDS.iter().filter(|w| lower.contains(*w)).count();
    let neg = NEGATIVE_WORDS.iter().filter(|w| lower.contains(*w)).count();
    match pos.cmp(&neg) {
        std::cmp::Ordering::Greater => "positive",
        std::cmp::Ordering::Less => "negative",
        std::cmp::Ordering::Equal => "neutral",
    }
}

/// Lowercased alphanumeric characters only — the normalization
/// `LLM_MATCH` uses for its default "same thing?" semantics.
fn normalize(text: &str) -> String {
    text.chars().filter(|c| c.is_ascii_alphanumeric()).map(|c| c.to_ascii_lowercase()).collect()
}

/// The deterministic solver behind the `semsql` prompt task.
///
/// Template keywords select the behavior (so tests and benches can pick
/// semantics in the query text): `upper`, `lower`, `length`, `sentiment`
/// for maps; `non-empty`, `positive`, `even` for filters; `exact` for
/// matches (default is normalized equality). Unrecognized map templates
/// produce a stable `c<n>` category label; unrecognized filter templates
/// a stable hash-derived boolean. A template containing `garbled`
/// advertises an unparseable alternative, giving tests a deterministic
/// model-side error path (the corrupted completion fails `parse_bool`).
pub struct SemSqlSolver;

impl PromptSolver for SemSqlSolver {
    fn task_id(&self) -> &str {
        "semsql"
    }

    fn solve(&self, env: &PromptEnvelope) -> Result<SolvedTask, ModelError> {
        let op = env.get("op").ok_or_else(|| ModelError::MalformedPayload {
            task: "semsql".into(),
            reason: "missing op header".into(),
        })?;
        let template = env.get("template").unwrap_or("").to_ascii_lowercase();
        let body = env.body.trim();
        let difficulty = if template.contains("hard") { 0.95 } else { 0.02 };
        match op {
            "map" => {
                let answer = if template.contains("upper") {
                    body.to_uppercase()
                } else if template.contains("lower") {
                    body.to_lowercase()
                } else if template.contains("length") {
                    body.chars().count().to_string()
                } else if template.contains("sentiment") {
                    sentiment(body).to_string()
                } else {
                    format!("c{}", fnv1a(&format!("{template}\u{1}{body}")) % 4)
                };
                Ok(SolvedTask::new(answer, difficulty))
            }
            "filter" => {
                let truth = if template.contains("non-empty") {
                    !body.is_empty()
                } else if template.contains("positive") {
                    sentiment(body) == "positive"
                } else if template.contains("even") {
                    body.parse::<i64>().map(|n| n % 2 == 0).unwrap_or(false)
                } else {
                    fnv1a(&format!("{template}\u{1}{body}")) % 2 == 0
                };
                let (ans, alt) = if truth { ("true", "false") } else { ("false", "true") };
                let alts = if template.contains("garbled") {
                    vec!["(static)".to_string()]
                } else {
                    vec![alt.to_string()]
                };
                Ok(SolvedTask::new(ans, difficulty).with_alternatives(alts))
            }
            "match" => {
                let (left, right) = split_match_body(body).ok_or_else(|| {
                    ModelError::MalformedPayload {
                        task: "semsql".into(),
                        reason: "match body must be `left: …\\nright: …`".into(),
                    }
                })?;
                let truth = if template.contains("exact") {
                    left == right
                } else {
                    normalize(left) == normalize(right)
                };
                let (ans, alt) = if truth { ("true", "false") } else { ("false", "true") };
                let alts = if template.contains("garbled") {
                    vec!["(static)".to_string()]
                } else {
                    vec![alt.to_string()]
                };
                Ok(SolvedTask::new(ans, difficulty).with_alternatives(alts))
            }
            other => Err(ModelError::MalformedPayload {
                task: "semsql".into(),
                reason: format!("unknown op {other:?}"),
            }),
        }
    }
}

fn split_match_body(body: &str) -> Option<(&str, &str)> {
    let mut lines = body.lines();
    let left = lines.next()?.strip_prefix("left: ")?;
    let right = lines.next()?.strip_prefix("right: ")?;
    Some((left, right))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle() -> ModelHandle {
        ModelHandle::sim(7)
    }

    #[test]
    fn map_prompt_round_trips_through_solver() {
        let h = handle();
        let p = unary_prompt("map", "uppercase it", &Value::Str("hello".into()));
        let out = complete(Some(&h), &p).unwrap();
        assert_eq!(out, "HELLO");
        // Deterministic: same prompt, same completion, and the cache
        // makes the repeat free.
        let calls = h.meter().snapshot().total_calls();
        let again = complete(Some(&h), &p).unwrap();
        assert_eq!(again, "HELLO");
        assert_eq!(h.meter().snapshot().total_calls(), calls);
    }

    #[test]
    fn filter_and_match_parse_as_booleans() {
        let h = handle();
        let p = unary_prompt("filter", "is it even?", &Value::Int(4));
        assert!(parse_bool(&complete(Some(&h), &p).unwrap()).unwrap());
        let p = unary_prompt("filter", "is it even?", &Value::Int(3));
        assert!(!parse_bool(&complete(Some(&h), &p).unwrap()).unwrap());
        let p = match_prompt("same thing?", &Value::Str("The Beatles".into()), &Value::Str("the beatles ".into()));
        assert!(parse_bool(&complete(Some(&h), &p).unwrap()).unwrap());
        let p = match_prompt("exact match", &Value::Str("The Beatles".into()), &Value::Str("the beatles".into()));
        assert!(!parse_bool(&complete(Some(&h), &p).unwrap()).unwrap());
    }

    #[test]
    fn scope_memoizes_and_counts() {
        let h = handle();
        let scope = SemScope::new();
        let p = unary_prompt("map", "categorize", &Value::Str("x".into()));
        {
            let _g = ScopeGuard::enter(scope.clone());
            for _ in 0..5 {
                complete(Some(&h), &p).unwrap();
            }
        }
        let c = scope.counters();
        assert_eq!(c.calls, 1, "one model call fans out to N rows");
        assert_eq!(c.dedup_hits, 4);
        assert!(c.dollars > 0.0);
        // Dollars attributed to the scope equal the meter's total.
        assert!((c.dollars - h.meter().snapshot().total_dollars()).abs() < 1e-9);
    }

    #[test]
    fn no_model_attached_is_a_model_error() {
        let p = unary_prompt("map", "x", &Value::Int(1));
        match complete(None, &p) {
            Err(SqlError::Model(m)) => assert!(m.contains("no session model")),
            other => panic!("expected Model error, got {other:?}"),
        }
    }

    #[test]
    fn nested_scopes_route_to_innermost() {
        let h = handle();
        let outer = SemScope::new();
        let inner = SemScope::new();
        let p = unary_prompt("filter", "positive?", &Value::Str("great".into()));
        let _g1 = ScopeGuard::enter(outer.clone());
        {
            let _g2 = ScopeGuard::enter(inner.clone());
            complete(Some(&h), &p).unwrap();
        }
        assert_eq!(inner.counters().calls, 1);
        assert_eq!(outer.counters().calls, 0);
    }

    #[test]
    fn multiline_values_stay_parseable_in_match_prompts() {
        let h = handle();
        let p = match_prompt(
            "same?",
            &Value::Str("line1\nline2".into()),
            &Value::Str("LINE1 LINE2".into()),
        );
        // Normalized equality strips the escaped newline markers... they
        // differ ("\\n" vs " "), but both normalize to "line1nline2" vs
        // "line1line2"? Either way: must not error.
        assert!(parse_bool(&complete(Some(&h), &p).unwrap()).is_ok());
    }
}
