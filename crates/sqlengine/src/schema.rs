//! Schemas, rows, and tables.


use crate::error::SqlError;
use crate::value::{DataType, Value};

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (stored lowercase; SQL identifiers are case-insensitive).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
}

impl Column {
    /// Create a column (name is lowercased).
    pub fn new(name: &str, dtype: DataType) -> Self {
        Column { name: name.to_lowercase(), dtype }
    }
}

/// A table schema: ordered columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Create a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Ordered columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.index_of(name).map(|i| &self.columns[i])
    }
}

/// A row of values, positionally matching a schema.
pub type Row = Vec<Value>;

/// An in-memory table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name (lowercase).
    pub name: String,
    /// The table's schema.
    pub schema: Schema,
    /// Stored rows.
    pub rows: Vec<Row>,
    /// Whether the table is backed by the durable store (`CREATE TABLE
    /// … PERSIST`). Plain `Database` ignores this; a
    /// `storage::PersistentDb` writes such tables through its store.
    pub persist: bool,
}

impl Table {
    /// Create an empty (non-persistent) table.
    pub fn new(name: &str, schema: Schema) -> Self {
        Table { name: name.to_lowercase(), schema, rows: Vec::new(), persist: false }
    }

    /// Append a row after checking arity and (loose) types. Ints coerce to
    /// declared FLOAT columns; NULL is allowed everywhere.
    pub fn push_row(&mut self, mut row: Row) -> Result<(), SqlError> {
        if row.len() != self.schema.len() {
            return Err(SqlError::Exec(format!(
                "table {} expects {} values, got {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        for (v, c) in row.iter_mut().zip(self.schema.columns()) {
            match (&v, c.dtype) {
                (Value::Null, _) => {}
                (Value::Int(i), DataType::Float) => *v = Value::Float(*i as f64),
                (Value::Int(_), DataType::Int)
                | (Value::Float(_), DataType::Float)
                | (Value::Str(_), DataType::Text)
                | (Value::Bool(_), DataType::Bool) => {}
                _ => {
                    return Err(SqlError::Type(format!(
                        "column {} of {} is {}, got {v}",
                        c.name, self.name, c.dtype
                    )))
                }
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![Column::new("ID", DataType::Int), Column::new("name", DataType::Text)])
    }

    #[test]
    fn case_insensitive_lookup() {
        let s = schema();
        assert_eq!(s.index_of("id"), Some(0));
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("Name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn push_row_checks_arity() {
        let mut t = Table::new("T", schema());
        assert!(t.push_row(vec![Value::Int(1)]).is_err());
        assert!(t.push_row(vec![Value::Int(1), Value::Str("a".into())]).is_ok());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn push_row_checks_types() {
        let mut t = Table::new("t", schema());
        assert!(t.push_row(vec![Value::Str("x".into()), Value::Str("a".into())]).is_err());
    }

    #[test]
    fn null_allowed_anywhere() {
        let mut t = Table::new("t", schema());
        assert!(t.push_row(vec![Value::Null, Value::Null]).is_ok());
    }

    #[test]
    fn int_coerces_to_float_column() {
        let mut t = Table::new(
            "t",
            Schema::new(vec![Column::new("x", DataType::Float)]),
        );
        t.push_row(vec![Value::Int(3)]).unwrap();
        assert_eq!(t.rows[0][0], Value::Float(3.0));
    }
}
