//! Rule-based logical rewrites.
//!
//! Four passes run in a fixed order:
//!
//! 1. **Constant folding** — evaluate column-free subexpressions with the
//!    shared [`crate::eval`] evaluator; drop filters whose predicate folds
//!    to literal `TRUE`. Folding never descends into subquery bodies and
//!    keeps any subexpression whose evaluation errors, so runtime error
//!    behavior is preserved.
//! 2. **Predicate pushdown** — split `WHERE` conjuncts and sink each one
//!    below joins whose single side binds every column it references
//!    (left side only for LEFT JOINs; pushing into the right side would
//!    change padding).
//! 3. **Column pruning** — restrict each scan to the columns referenced
//!    anywhere in the plan. Unqualified names are kept in *every* schema
//!    that has them, preserving ambiguous-column errors.
//! 4. **LIMIT pushdown** — a `Limit` directly above a `Sort` (possibly
//!    through a `Strip`) sets the sort's `fetch`, turning a full sort
//!    into a top-k selection.

use std::collections::BTreeSet;

use crate::ast::{BinOp, Expr, JoinType, SelectItem};
use crate::catalog::Database;
use crate::eval::{eval, Env, Scope};
use crate::exec::Bindings;
use crate::schema::Schema;
use crate::value::Value;

use super::logical::{LlmEstimate, LogicalPlan};

/// Apply all rewrite passes.
pub(crate) fn optimize(db: &Database, plan: LogicalPlan) -> LogicalPlan {
    let plan = fold_constants(db, plan);
    let plan = push_down_filters(plan);
    let plan = prune_scan_columns(plan);
    let plan = push_limit_into_sort(plan);
    estimate_semantic(db, plan)
}

// ---------------- constant folding ----------------

fn fold_constants(db: &Database, plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = fold_constants(db, *input);
            let predicate = fold_expr(db, predicate);
            if matches!(predicate, Expr::Literal(Value::Bool(true))) {
                // A tautological filter passes every row — drop it. A
                // filter folded to any *other* literal is kept: it is
                // cheap and removing it would change nothing.
                input
            } else {
                LogicalPlan::Filter { input: Box::new(input), predicate }
            }
        }
        LogicalPlan::Join { left, right, join, on } => {
            let on = on.map(|e| fold_expr(db, e));
            // An INNER join on literal TRUE is a cross join.
            let on = match (join, on) {
                (JoinType::Inner, Some(Expr::Literal(Value::Bool(true)))) => None,
                (_, o) => o,
            };
            LogicalPlan::Join {
                left: Box::new(fold_constants(db, *left)),
                right: Box::new(fold_constants(db, *right)),
                join,
                on,
            }
        }
        LogicalPlan::LlmFilter { input, predicate, est } => LogicalPlan::LlmFilter {
            input: Box::new(fold_constants(db, *input)),
            // Fold inside the predicate's relational subexpressions; the
            // LLM call itself never folds (`is_const` is false for it).
            predicate: fold_expr(db, predicate),
            est,
        },
        LogicalPlan::Project { input, items, columns } => LogicalPlan::Project {
            input: Box::new(fold_constants(db, *input)),
            items: items.into_iter().map(|it| fold_item(db, it)).collect(),
            columns,
        },
        LogicalPlan::LlmMap { input, items, columns, est } => LogicalPlan::LlmMap {
            input: Box::new(fold_constants(db, *input)),
            items: items.into_iter().map(|it| fold_item(db, it)).collect(),
            columns,
            est,
        },
        LogicalPlan::Aggregate { input, group_by, having, items, columns } => {
            LogicalPlan::Aggregate {
                input: Box::new(fold_constants(db, *input)),
                group_by: group_by.into_iter().map(|e| fold_expr(db, e)).collect(),
                having: having.map(|h| fold_expr(db, h)),
                items: items.into_iter().map(|it| fold_item(db, it)).collect(),
                columns,
            }
        }
        other => map_children(other, &mut |child| fold_constants(db, child)),
    }
}

fn fold_item(db: &Database, item: SelectItem) -> SelectItem {
    match item {
        SelectItem::Expr { expr, alias } => {
            SelectItem::Expr { expr: fold_expr(db, expr), alias }
        }
        other => other,
    }
}

fn fold_expr(db: &Database, e: Expr) -> Expr {
    // Fold children first. Subquery bodies are planned independently at
    // execution time and are left untouched.
    let e = match e {
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(fold_expr(db, *left)),
            right: Box::new(fold_expr(db, *right)),
        },
        Expr::Unary { op, expr } => Expr::Unary { op, expr: Box::new(fold_expr(db, *expr)) },
        Expr::Aggregate { func, arg, distinct } => Expr::Aggregate {
            func,
            arg: arg.map(|a| Box::new(fold_expr(db, *a))),
            distinct,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(fold_expr(db, *expr)),
            list: list.into_iter().map(|x| fold_expr(db, x)).collect(),
            negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(fold_expr(db, *expr)),
            low: Box::new(fold_expr(db, *low)),
            high: Box::new(fold_expr(db, *high)),
            negated,
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(fold_expr(db, *expr)), negated }
        }
        Expr::Like { expr, pattern, negated } => {
            Expr::Like { expr: Box::new(fold_expr(db, *expr)), pattern, negated }
        }
        Expr::InSubquery { expr, subquery, negated } => {
            Expr::InSubquery { expr: Box::new(fold_expr(db, *expr)), subquery, negated }
        }
        Expr::LlmMap { arg, template } => {
            Expr::LlmMap { arg: Box::new(fold_expr(db, *arg)), template }
        }
        Expr::LlmFilter { arg, template } => {
            Expr::LlmFilter { arg: Box::new(fold_expr(db, *arg)), template }
        }
        Expr::LlmMatch { left, right, template } => Expr::LlmMatch {
            left: Box::new(fold_expr(db, *left)),
            right: Box::new(fold_expr(db, *right)),
            template,
        },
        other => other,
    };
    // Left-driven short-circuits only: `eval` never evaluates the right
    // side after `FALSE AND` / `TRUE OR`, so folding it away cannot hide
    // an error. (`x AND FALSE` is *not* foldable — `eval` still
    // evaluates and type-checks `x`.)
    if let Expr::Binary { op: BinOp::And, left, .. } = &e {
        if matches!(**left, Expr::Literal(Value::Bool(false))) {
            return Expr::lit(false);
        }
    }
    if let Expr::Binary { op: BinOp::Or, left, .. } = &e {
        if matches!(**left, Expr::Literal(Value::Bool(true))) {
            return Expr::lit(true);
        }
    }
    if !matches!(e, Expr::Literal(_)) && is_const(&e) {
        let scopes: Vec<Scope<'_>> = Vec::new();
        if let Ok(v) = eval(&e, &Env { scopes: &scopes, db }) {
            return Expr::Literal(v);
        }
        // Evaluation failed (overflow, division by zero, type error):
        // keep the expression so the error surfaces at runtime exactly
        // like the direct path.
    }
    e
}

/// Column-free, aggregate-free, subquery-free — safe to evaluate once.
fn is_const(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Binary { left, right, .. } => is_const(left) && is_const(right),
        Expr::Unary { expr, .. } => is_const(expr),
        Expr::InList { expr, list, .. } => is_const(expr) && list.iter().all(is_const),
        Expr::Between { expr, low, high, .. } => {
            is_const(expr) && is_const(low) && is_const(high)
        }
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => is_const(expr),
        _ => false,
    }
}

// ---------------- predicate pushdown ----------------

fn push_down_filters(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let mut plan = push_down_filters(*input);
            let mut remaining: Vec<Expr> = Vec::new();
            let mut semantic: Vec<Expr> = Vec::new();
            for conj in split_conjuncts(predicate) {
                // The reorder rule: conjuncts invoking LLM operators are
                // peeled off and applied *after* every relational
                // predicate — model calls only see rows that survived the
                // cheap filters. (SQL leaves AND evaluation order
                // unspecified, so this is semantics-preserving.)
                if conj.contains_llm() {
                    semantic.push(conj);
                    continue;
                }
                match try_sink(plan, conj) {
                    Ok(p) => plan = p,
                    Err((p, c)) => {
                        plan = p;
                        remaining.push(c);
                    }
                }
            }
            // Unpushed conjuncts re-wrap in original order, innermost
            // first, so they evaluate in the same order as the AND chain.
            for c in remaining {
                plan = LogicalPlan::Filter { input: Box::new(plan), predicate: c };
            }
            for c in semantic {
                plan = LogicalPlan::LlmFilter { input: Box::new(plan), predicate: c, est: None };
            }
            plan
        }
        other => map_children(other, &mut push_down_filters),
    }
}

/// Split a top-level AND chain into conjuncts, evaluation order.
fn split_conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::Binary { op: BinOp::And, left, right } => {
            let mut v = split_conjuncts(*left);
            v.extend(split_conjuncts(*right));
            v
        }
        other => vec![other],
    }
}

/// Try to sink `pred` below the top of `plan`. Returns the rebuilt plan
/// on success, or the (unchanged) plan and predicate back on failure.
fn try_sink(plan: LogicalPlan, pred: Expr) -> Result<LogicalPlan, (LogicalPlan, Expr)> {
    match plan {
        LogicalPlan::Join { left, right, join, on } => {
            let bindings = left.bindings().concat(&right.bindings());
            let Some(req) = required_aliases(&pred, &bindings) else {
                return Err((LogicalPlan::Join { left, right, join, on }, pred));
            };
            if req.is_empty() {
                // Row-independent (e.g. bare EXISTS): leave it above the
                // join where it runs once per joined row, same as legacy.
                return Err((LogicalPlan::Join { left, right, join, on }, pred));
            }
            let left_aliases: BTreeSet<String> =
                left.bindings().aliases.into_iter().collect();
            if req.iter().all(|a| left_aliases.contains(a)) {
                // The left side survives LEFT JOIN padding unchanged, so
                // left-side pushdown is safe for both join types.
                let new_left = sink_or_wrap(*left, pred);
                return Ok(LogicalPlan::Join { left: Box::new(new_left), right, join, on });
            }
            let right_aliases: BTreeSet<String> =
                right.bindings().aliases.into_iter().collect();
            if join == JoinType::Inner && req.iter().all(|a| right_aliases.contains(a)) {
                let new_right = sink_or_wrap(*right, pred);
                return Ok(LogicalPlan::Join { left, right: Box::new(new_right), join, on });
            }
            Err((LogicalPlan::Join { left, right, join, on }, pred))
        }
        // Sink through an existing filter so pushed conjuncts reach the
        // join (or scan) below it.
        LogicalPlan::Filter { input, predicate } => match try_sink(*input, pred) {
            Ok(p) => Ok(LogicalPlan::Filter { input: Box::new(p), predicate }),
            Err((p, pred)) => {
                Err((LogicalPlan::Filter { input: Box::new(p), predicate }, pred))
            }
        },
        other => Err((other, pred)),
    }
}

fn sink_or_wrap(plan: LogicalPlan, pred: Expr) -> LogicalPlan {
    match try_sink(plan, pred) {
        Ok(p) => p,
        Err((p, pred)) => LogicalPlan::Filter { input: Box::new(p), predicate: pred },
    }
}

/// The set of binding aliases `e` reads from, or `None` when the
/// expression cannot be attributed to specific bindings (unknown
/// qualifier, ambiguous or unknown unqualified name, aggregate call).
/// Subquery bodies are uncorrelated in this engine and read nothing.
fn required_aliases(e: &Expr, bindings: &Bindings) -> Option<BTreeSet<String>> {
    let mut out = BTreeSet::new();
    if collect_aliases(e, bindings, &mut out) {
        Some(out)
    } else {
        None
    }
}

fn collect_aliases(e: &Expr, b: &Bindings, out: &mut BTreeSet<String>) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Column { qualifier: Some(q), .. } => {
            let q = q.to_lowercase();
            if b.aliases.contains(&q) {
                out.insert(q);
                true
            } else {
                false
            }
        }
        Expr::Column { qualifier: None, name } => {
            let matches: Vec<&String> = b
                .aliases
                .iter()
                .zip(&b.schemas)
                .filter(|(_, s)| s.index_of(name).is_some())
                .map(|(a, _)| a)
                .collect();
            if matches.len() == 1 {
                out.insert(matches[0].clone());
                true
            } else {
                // Unknown or ambiguous: leave the predicate where the
                // direct executor would have raised the error.
                false
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_aliases(left, b, out) && collect_aliases(right, b, out)
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
            collect_aliases(expr, b, out)
        }
        Expr::InList { expr, list, .. } => {
            collect_aliases(expr, b, out) && list.iter().all(|x| collect_aliases(x, b, out))
        }
        Expr::Between { expr, low, high, .. } => {
            collect_aliases(expr, b, out)
                && collect_aliases(low, b, out)
                && collect_aliases(high, b, out)
        }
        Expr::InSubquery { expr, .. } => collect_aliases(expr, b, out),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => true,
        Expr::Aggregate { .. } => false,
        Expr::LlmMap { arg, .. } | Expr::LlmFilter { arg, .. } => collect_aliases(arg, b, out),
        Expr::LlmMatch { left, right, .. } => {
            collect_aliases(left, b, out) && collect_aliases(right, b, out)
        }
    }
}

// ---------------- scan column pruning ----------------

fn prune_scan_columns(plan: LogicalPlan) -> LogicalPlan {
    let mut refs: Vec<(Option<String>, String)> = Vec::new();
    if !collect_plan_refs(&plan, &mut refs) {
        // An unexpanded wildcard somewhere: every column may be needed.
        return plan;
    }
    apply_prune(plan, &refs)
}

/// Gather `(qualifier, column)` references (lowercase) from every
/// expression in the plan. Returns `false` if pruning is unsafe.
fn collect_plan_refs(plan: &LogicalPlan, out: &mut Vec<(Option<String>, String)>) -> bool {
    match plan {
        LogicalPlan::OneRow | LogicalPlan::Scan { .. } => true,
        LogicalPlan::Join { left, right, on, .. } => {
            if let Some(on) = on {
                expr_refs(on, out);
            }
            collect_plan_refs(left, out) && collect_plan_refs(right, out)
        }
        LogicalPlan::Filter { input, predicate }
        | LogicalPlan::LlmFilter { input, predicate, .. } => {
            expr_refs(predicate, out);
            collect_plan_refs(input, out)
        }
        LogicalPlan::Project { input, items, .. }
        | LogicalPlan::LlmMap { input, items, .. } => {
            items.iter().all(|it| item_refs(it, out)) && collect_plan_refs(input, out)
        }
        LogicalPlan::Aggregate { input, group_by, having, items, .. } => {
            for e in group_by {
                expr_refs(e, out);
            }
            if let Some(h) = having {
                expr_refs(h, out);
            }
            items.iter().all(|it| item_refs(it, out)) && collect_plan_refs(input, out)
        }
        LogicalPlan::Distinct { input }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Strip { input, .. }
        | LogicalPlan::Limit { input, .. } => collect_plan_refs(input, out),
        LogicalPlan::SetOp { left, right, .. } => {
            collect_plan_refs(left, out) && collect_plan_refs(right, out)
        }
    }
}

fn item_refs(item: &SelectItem, out: &mut Vec<(Option<String>, String)>) -> bool {
    match item {
        SelectItem::Expr { expr, .. } => {
            expr_refs(expr, out);
            true
        }
        // Wildcards should be expanded by lowering; if one leaks through,
        // refuse to prune rather than drop columns it would project.
        SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => false,
    }
}

fn expr_refs(e: &Expr, out: &mut Vec<(Option<String>, String)>) {
    match e {
        Expr::Column { qualifier, name } => {
            out.push((qualifier.as_ref().map(|q| q.to_lowercase()), name.to_lowercase()));
        }
        Expr::Literal(_) => {}
        Expr::Binary { left, right, .. } => {
            expr_refs(left, out);
            expr_refs(right, out);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
            expr_refs(expr, out)
        }
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                expr_refs(a, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            expr_refs(expr, out);
            for x in list {
                expr_refs(x, out);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            expr_refs(expr, out);
            expr_refs(low, out);
            expr_refs(high, out);
        }
        // Subquery bodies are uncorrelated: they never read outer scans.
        Expr::InSubquery { expr, .. } => expr_refs(expr, out),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
        Expr::LlmMap { arg, .. } | Expr::LlmFilter { arg, .. } => expr_refs(arg, out),
        Expr::LlmMatch { left, right, .. } => {
            expr_refs(left, out);
            expr_refs(right, out);
        }
    }
}

fn apply_prune(plan: LogicalPlan, refs: &[(Option<String>, String)]) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { table, alias, schema, projection } => {
            let keep: Vec<usize> = schema
                .columns()
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    refs.iter().any(|(q, n)| {
                        *n == c.name && (q.is_none() || q.as_deref() == Some(alias.as_str()))
                    })
                })
                .map(|(i, _)| i)
                .collect();
            if keep.len() == schema.len() {
                LogicalPlan::Scan { table, alias, schema, projection }
            } else {
                let cols = keep.iter().map(|&i| schema.columns()[i].clone()).collect();
                LogicalPlan::Scan {
                    table,
                    alias,
                    schema: Schema::new(cols),
                    projection: Some(keep),
                }
            }
        }
        other => map_children(other, &mut |child| apply_prune(child, refs)),
    }
}

// ---------------- LIMIT pushdown ----------------

fn push_limit_into_sort(plan: LogicalPlan) -> LogicalPlan {
    let plan = map_children(plan, &mut push_limit_into_sort);
    if let LogicalPlan::Limit { input, limit: Some(l), offset } = plan {
        let fetch = l.saturating_add(offset);
        let input = match *input {
            LogicalPlan::Sort { input, keys, .. } => {
                LogicalPlan::Sort { input, keys, fetch: Some(fetch) }
            }
            LogicalPlan::Strip { input: strip_in, keep } => match *strip_in {
                LogicalPlan::Sort { input, keys, .. } => LogicalPlan::Strip {
                    input: Box::new(LogicalPlan::Sort { input, keys, fetch: Some(fetch) }),
                    keep,
                },
                other => LogicalPlan::Strip { input: Box::new(other), keep },
            },
            other => other,
        };
        LogicalPlan::Limit { input: Box::new(input), limit: Some(l), offset }
    } else {
        plan
    }
}

// ---------------- semantic cost estimates ----------------

/// Annotate each semantic operator with estimated rows, model calls, and
/// dollars. Row counts are upper bounds from base-table cardinalities
/// (relational selectivity is not modeled); calls are discounted by the
/// session cache's *live* hit ratio; dollars use the meter's observed
/// per-call average (nominal list price before any history). Without a
/// session model the estimates fill in with zero discount and $0.
fn estimate_semantic(db: &Database, plan: LogicalPlan) -> LogicalPlan {
    estimate_rec(db, plan).0
}

/// Returns the annotated plan and its estimated output row count.
fn estimate_rec(db: &Database, plan: LogicalPlan) -> (LogicalPlan, usize) {
    match plan {
        LogicalPlan::OneRow => (LogicalPlan::OneRow, 1),
        LogicalPlan::Scan { table, alias, schema, projection } => {
            let rows = db.table(&table).map(|t| t.len()).unwrap_or(0);
            (LogicalPlan::Scan { table, alias, schema, projection }, rows)
        }
        LogicalPlan::Join { left, right, join, on } => {
            let (left, l) = estimate_rec(db, *left);
            let (right, r) = estimate_rec(db, *right);
            let rows = match &on {
                // Equi-ish join: assume the smaller side's cardinality.
                Some(_) => l.max(r),
                None => l.saturating_mul(r),
            };
            (
                LogicalPlan::Join { left: Box::new(left), right: Box::new(right), join, on },
                rows,
            )
        }
        LogicalPlan::Filter { input, predicate } => {
            let (input, rows) = estimate_rec(db, *input);
            (LogicalPlan::Filter { input: Box::new(input), predicate }, rows)
        }
        LogicalPlan::LlmFilter { input, predicate, .. } => {
            let (input, rows) = estimate_rec(db, *input);
            let est = make_estimate(db, rows, predicate.count_llm());
            (
                LogicalPlan::LlmFilter { input: Box::new(input), predicate, est: Some(est) },
                rows,
            )
        }
        LogicalPlan::Project { input, items, columns } => {
            let (input, rows) = estimate_rec(db, *input);
            (LogicalPlan::Project { input: Box::new(input), items, columns }, rows)
        }
        LogicalPlan::LlmMap { input, items, columns, .. } => {
            let (input, rows) = estimate_rec(db, *input);
            let prompts: usize = items
                .iter()
                .map(|it| match it {
                    SelectItem::Expr { expr, .. } => expr.count_llm(),
                    _ => 0,
                })
                .sum();
            let est = make_estimate(db, rows, prompts);
            (
                LogicalPlan::LlmMap { input: Box::new(input), items, columns, est: Some(est) },
                rows,
            )
        }
        LogicalPlan::Aggregate { input, group_by, having, items, columns } => {
            let (input, rows) = estimate_rec(db, *input);
            let out = if group_by.is_empty() { 1 } else { rows };
            (
                LogicalPlan::Aggregate {
                    input: Box::new(input),
                    group_by,
                    having,
                    items,
                    columns,
                },
                out,
            )
        }
        LogicalPlan::Distinct { input } => {
            let (input, rows) = estimate_rec(db, *input);
            (LogicalPlan::Distinct { input: Box::new(input) }, rows)
        }
        LogicalPlan::SetOp { left, right, op, all } => {
            let (left, l) = estimate_rec(db, *left);
            let (right, r) = estimate_rec(db, *right);
            (
                LogicalPlan::SetOp { left: Box::new(left), right: Box::new(right), op, all },
                l.saturating_add(r),
            )
        }
        LogicalPlan::Sort { input, keys, fetch } => {
            let (input, rows) = estimate_rec(db, *input);
            let out = fetch.map_or(rows, |k| rows.min(k));
            (LogicalPlan::Sort { input: Box::new(input), keys, fetch }, out)
        }
        LogicalPlan::Strip { input, keep } => {
            let (input, rows) = estimate_rec(db, *input);
            (LogicalPlan::Strip { input: Box::new(input), keep }, rows)
        }
        LogicalPlan::Limit { input, limit, offset } => {
            let (input, rows) = estimate_rec(db, *input);
            let out = limit.map_or(rows, |l| rows.min(l.saturating_add(offset)));
            (LogicalPlan::Limit { input: Box::new(input), limit, offset }, out)
        }
    }
}

fn make_estimate(db: &Database, rows: usize, prompts_per_row: usize) -> LlmEstimate {
    let (hit_ratio, per_call) = match db.model() {
        Some(h) => (h.cache_hit_ratio(), h.estimated_call_dollars()),
        None => (0.0, 0.0),
    };
    let prompts = (rows * prompts_per_row) as f64;
    let calls = prompts * (1.0 - hit_ratio);
    LlmEstimate { rows, prompts_per_row, calls, dollars: calls * per_call, hit_ratio }
}

// ---------------- shared traversal ----------------

/// Rebuild a node with `f` applied to each direct child.
fn map_children(
    plan: LogicalPlan,
    f: &mut impl FnMut(LogicalPlan) -> LogicalPlan,
) -> LogicalPlan {
    match plan {
        LogicalPlan::OneRow => LogicalPlan::OneRow,
        leaf @ LogicalPlan::Scan { .. } => leaf,
        LogicalPlan::Join { left, right, join, on } => LogicalPlan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            join,
            on,
        },
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(f(*input)), predicate }
        }
        LogicalPlan::LlmFilter { input, predicate, est } => {
            LogicalPlan::LlmFilter { input: Box::new(f(*input)), predicate, est }
        }
        LogicalPlan::Project { input, items, columns } => {
            LogicalPlan::Project { input: Box::new(f(*input)), items, columns }
        }
        LogicalPlan::LlmMap { input, items, columns, est } => {
            LogicalPlan::LlmMap { input: Box::new(f(*input)), items, columns, est }
        }
        LogicalPlan::Aggregate { input, group_by, having, items, columns } => {
            LogicalPlan::Aggregate {
                input: Box::new(f(*input)),
                group_by,
                having,
                items,
                columns,
            }
        }
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct { input: Box::new(f(*input)) },
        LogicalPlan::SetOp { left, right, op, all } => LogicalPlan::SetOp {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            op,
            all,
        },
        LogicalPlan::Sort { input, keys, fetch } => {
            LogicalPlan::Sort { input: Box::new(f(*input)), keys, fetch }
        }
        LogicalPlan::Strip { input, keep } => {
            LogicalPlan::Strip { input: Box::new(f(*input)), keep }
        }
        LogicalPlan::Limit { input, limit, offset } => {
            LogicalPlan::Limit { input: Box::new(f(*input)), limit, offset }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::logical::{lower_select, render};
    use super::*;
    use crate::exec::concert_db;
    use crate::parser::parse_statement;

    fn optimized(db: &Database, sql: &str) -> String {
        let crate::ast::Statement::Select(stmt) = parse_statement(sql).unwrap() else {
            panic!("not a select: {sql}");
        };
        let plan = optimize(db, lower_select(db, &stmt).unwrap());
        render(&plan).join("\n")
    }

    #[test]
    fn tautological_where_is_folded_away() {
        let db = concert_db();
        let text = optimized(&db, "SELECT name FROM stadium WHERE 1 = 1");
        assert!(!text.contains("Filter"), "{text}");
    }

    #[test]
    fn constant_subexpressions_fold() {
        let db = concert_db();
        let text = optimized(&db, "SELECT name FROM stadium WHERE capacity > 10000 + 20000");
        assert!(text.contains("Filter (capacity > 30000)"), "{text}");
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let db = concert_db();
        let text = optimized(&db, "SELECT name FROM stadium WHERE capacity > 1 / 0");
        assert!(text.contains("(1 / 0)"), "{text}");
    }

    #[test]
    fn where_conjuncts_push_below_an_inner_join() {
        let db = concert_db();
        let text = optimized(
            &db,
            "SELECT s.name FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id \
             WHERE s.capacity > 1000 AND c.year = 2014",
        );
        let join_at = text.find("Join Inner").unwrap();
        let cap_at = text.find("Filter (s.capacity > 1000)").unwrap();
        let year_at = text.find("Filter (c.year = 2014)").unwrap();
        assert!(cap_at > join_at, "capacity filter not pushed:\n{text}");
        assert!(year_at > join_at, "year filter not pushed:\n{text}");
    }

    #[test]
    fn right_side_predicates_stay_above_left_joins() {
        let db = concert_db();
        let text = optimized(
            &db,
            "SELECT s.name FROM stadium s LEFT JOIN concert c ON s.stadium_id = c.stadium_id \
             WHERE c.year = 2014",
        );
        let join_at = text.find("Join Left").unwrap();
        let year_at = text.find("Filter (c.year = 2014)").unwrap();
        assert!(year_at < join_at, "right-side filter pushed below LEFT JOIN:\n{text}");
    }

    #[test]
    fn scans_prune_unreferenced_columns() {
        let db = concert_db();
        let text = optimized(&db, "SELECT name FROM stadium WHERE capacity > 1000");
        assert!(text.contains("cols=[name, capacity] (pruned)"), "{text}");
    }

    #[test]
    fn ambiguous_unqualified_names_block_pushdown() {
        let db = concert_db();
        // `stadium_id` exists in both tables: the conjunct must stay put.
        let text = optimized(
            &db,
            "SELECT s.name FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id \
             WHERE stadium_id > 0",
        );
        let join_at = text.find("Join Inner").unwrap();
        let pred_at = text.find("Filter (stadium_id > 0)").unwrap();
        assert!(pred_at < join_at, "ambiguous predicate was pushed:\n{text}");
    }

    #[test]
    fn limit_pushes_fetch_into_sort() {
        let db = concert_db();
        let text = optimized(&db, "SELECT name FROM stadium ORDER BY name LIMIT 2 OFFSET 1");
        assert!(text.contains("fetch=3"), "{text}");
        assert!(text.contains("Limit 2 OFFSET 1"), "{text}");
    }
}
