//! The Volcano query planner: AST → logical plan → rewrites → physical
//! iterators.
//!
//! `SELECT` execution flows through three layers:
//!
//! 1. **Lowering** ([`logical::lower_select`]) turns a [`SelectStmt`] into
//!    a [`logical::LogicalPlan`] tree (`Scan`/`Filter`/`Join`/`Project`/
//!    `Aggregate`/`Distinct`/`SetOp`/`Sort`/`Strip`/`Limit`) that mirrors
//!    the direct executor's semantics exactly, including the hidden-key
//!    projection used for `ORDER BY` on unprojected expressions.
//! 2. **Rewrites** ([`rewrite::optimize`]) apply rule-based
//!    transformations: constant folding (via the shared [`crate::eval`]
//!    evaluator), predicate pushdown below joins, scan column pruning, and
//!    `LIMIT` pushdown into `Sort` (top-k).
//! 3. **Physical execution** ([`physical::run`]) builds Volcano-style
//!    pull iterators from the optimized plan and drains the root. Filter
//!    chains over a base table fuse into the scan so non-matching rows
//!    are never cloned.
//!
//! The pre-planner executor survives as
//! [`crate::exec::execute_select_direct`], a differential-testing oracle:
//! every planned result can be checked bit-for-bit against it.
//!
//! `EXPLAIN SELECT …` renders both the optimized logical plan and the
//! physical operator tree without executing the query.

pub(crate) mod logical;
pub(crate) mod physical;
pub(crate) mod rewrite;

pub(crate) use logical::lower_select;
pub(crate) use rewrite::optimize;

use crate::ast::SelectStmt;
use crate::catalog::Database;
use crate::error::SqlError;
use crate::result::ResultSet;
use crate::value::Value;

/// Execute a SELECT through the planner: lower, optimize, run.
pub(crate) fn execute_select_planned(
    db: &Database,
    stmt: &SelectStmt,
) -> Result<ResultSet, SqlError> {
    let plan = lower_select(db, stmt)?;
    let plan = optimize(db, plan);
    physical::run(db, &plan)
}

/// Execute `EXPLAIN SELECT …`: return the optimized logical plan and the
/// physical operator tree as a one-column result set, one line per row.
pub(crate) fn explain_select(db: &Database, stmt: &SelectStmt) -> Result<ResultSet, SqlError> {
    let plan = lower_select(db, stmt)?;
    let plan = optimize(db, plan);
    let mut rows: Vec<Vec<Value>> = Vec::new();
    rows.push(vec![Value::Str("logical:".into())]);
    for line in logical::render(&plan) {
        rows.push(vec![Value::Str(format!("  {line}"))]);
    }
    rows.push(vec![Value::Str("physical:".into())]);
    for line in physical::render(&plan) {
        rows.push(vec![Value::Str(format!("  {line}"))]);
    }
    Ok(ResultSet { columns: vec!["plan".into()], rows, affected: 0 })
}

#[cfg(test)]
mod tests {
    use crate::exec::concert_db;

    fn explain(db: &mut crate::catalog::Database, sql: &str) -> String {
        let rs = db.query(sql).unwrap();
        assert_eq!(rs.columns, vec!["plan".to_string()]);
        rs.rows
            .iter()
            .map(|r| match &r[0] {
                crate::value::Value::Str(s) => s.clone(),
                other => panic!("non-string EXPLAIN row: {other:?}"),
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn explain_shows_logical_and_physical() {
        let mut db = concert_db();
        let text = explain(&mut db, "EXPLAIN SELECT name FROM stadium WHERE capacity > 1000");
        assert!(text.contains("logical:"), "{text}");
        assert!(text.contains("physical:"), "{text}");
        assert!(text.contains("Scan stadium"), "{text}");
        assert!(text.contains("ScanExec"), "{text}");
        // The filter fuses into the scan on the physical side.
        assert!(text.contains("predicates=1"), "{text}");
    }

    #[test]
    fn explain_shows_topk_for_limited_sort() {
        let mut db = concert_db();
        let text =
            explain(&mut db, "EXPLAIN SELECT name FROM stadium ORDER BY capacity DESC LIMIT 2");
        assert!(text.contains("TopKExec"), "{text}");
        assert!(text.contains("fetch=2"), "{text}");
    }

    #[test]
    fn explain_does_not_execute() {
        let mut db = concert_db();
        // A query that would error at runtime still EXPLAINs fine.
        let rs = db.query("EXPLAIN SELECT name + 1 FROM stadium");
        assert!(rs.is_ok(), "{rs:?}");
    }
}
