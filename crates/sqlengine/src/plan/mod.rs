//! The Volcano query planner: AST → logical plan → rewrites → physical
//! iterators.
//!
//! `SELECT` execution flows through three layers:
//!
//! 1. **Lowering** ([`logical::lower_select`]) turns a [`SelectStmt`] into
//!    a [`logical::LogicalPlan`] tree (`Scan`/`Filter`/`Join`/`Project`/
//!    `Aggregate`/`Distinct`/`SetOp`/`Sort`/`Strip`/`Limit`) that mirrors
//!    the direct executor's semantics exactly, including the hidden-key
//!    projection used for `ORDER BY` on unprojected expressions.
//! 2. **Rewrites** ([`rewrite::optimize`]) apply rule-based
//!    transformations: constant folding (via the shared [`crate::eval`]
//!    evaluator), predicate pushdown below joins, scan column pruning, and
//!    `LIMIT` pushdown into `Sort` (top-k).
//! 3. **Physical execution** ([`physical::run`]) builds Volcano-style
//!    pull iterators from the optimized plan and drains the root. Filter
//!    chains over a base table fuse into the scan so non-matching rows
//!    are never cloned.
//!
//! The pre-planner executor survives as
//! [`crate::exec::execute_select_direct`], a differential-testing oracle:
//! every planned result can be checked bit-for-bit against it.
//!
//! `EXPLAIN SELECT …` renders both the optimized logical plan and the
//! physical operator tree without executing the query.

pub(crate) mod logical;
pub(crate) mod physical;
pub(crate) mod rewrite;

pub(crate) use logical::lower_select;
pub(crate) use rewrite::optimize;

use crate::ast::SelectStmt;
use crate::catalog::Database;
use crate::error::SqlError;
use crate::result::ResultSet;
use crate::value::Value;

/// Execute a SELECT through the planner: lower, optimize, run.
pub(crate) fn execute_select_planned(
    db: &Database,
    stmt: &SelectStmt,
) -> Result<ResultSet, SqlError> {
    let plan = lower_select(db, stmt)?;
    let plan = optimize(db, plan);
    physical::run(db, &plan)
}

/// Execute `EXPLAIN SELECT …`: return the optimized logical plan and the
/// physical operator tree as a one-column result set, one line per row.
pub(crate) fn explain_select(db: &Database, stmt: &SelectStmt) -> Result<ResultSet, SqlError> {
    let plan = lower_select(db, stmt)?;
    let plan = optimize(db, plan);
    let mut rows: Vec<Vec<Value>> = Vec::new();
    rows.push(vec![Value::Str("logical:".into())]);
    for line in logical::render(&plan) {
        rows.push(vec![Value::Str(format!("  {line}"))]);
    }
    rows.push(vec![Value::Str("physical:".into())]);
    for line in physical::render(&plan) {
        rows.push(vec![Value::Str(format!("  {line}"))]);
    }
    Ok(ResultSet { columns: vec!["plan".into()], rows, affected: 0 })
}

/// Execute `EXPLAIN ANALYZE SELECT …`: run the physical plan with
/// per-operator instrumentation and return the operator tree annotated
/// with actual rows in/out, `next()` loops, and inclusive wall time —
/// plus a trailing `result: N row(s)` line that reconciles the root
/// operator's row count with the executed result. Runtime errors
/// propagate exactly as they would from the plain query.
pub(crate) fn explain_analyze_select(
    db: &Database,
    stmt: &SelectStmt,
) -> Result<ResultSet, SqlError> {
    let plan = lower_select(db, stmt)?;
    let plan = optimize(db, plan);
    let (result, stats) = physical::run_analyzed(db, &plan)?;
    let mut rows: Vec<Vec<Value>> = Vec::new();
    rows.push(vec![Value::Str("physical (analyzed):".into())]);
    for line in physical::render_analyzed(&plan, &stats) {
        rows.push(vec![Value::Str(format!("  {line}"))]);
    }
    rows.push(vec![Value::Str(format!("result: {} row(s)", result.rows.len()))]);
    // Query-level semantic totals: the sum of the per-operator counters,
    // which reconciles exactly with the session `UsageMeter` delta as
    // long as every LLM evaluation runs inside a scoped operator.
    let mut total = crate::semantic::SemCounters::default();
    let mut any_llm = false;
    for st in &stats {
        if let Some(c) = &st.llm {
            any_llm = true;
            total.calls += c.calls;
            total.dedup_hits += c.dedup_hits;
            total.cache_hits += c.cache_hits;
            total.dollars += c.dollars;
        }
    }
    if any_llm {
        rows.push(vec![Value::Str(format!(
            "llm: calls={} dedup_hits={} cache_hits={} dollars=${:.9}",
            total.calls, total.dedup_hits, total.cache_hits, total.dollars
        ))]);
    }
    Ok(ResultSet { columns: vec!["plan".into()], rows, affected: 0 })
}

#[cfg(test)]
mod tests {
    use crate::exec::concert_db;

    fn explain(db: &mut crate::catalog::Database, sql: &str) -> String {
        let rs = db.query(sql).unwrap();
        assert_eq!(rs.columns, vec!["plan".to_string()]);
        rs.rows
            .iter()
            .map(|r| match &r[0] {
                crate::value::Value::Str(s) => s.clone(),
                other => panic!("non-string EXPLAIN row: {other:?}"),
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn explain_shows_logical_and_physical() {
        let mut db = concert_db();
        let text = explain(&mut db, "EXPLAIN SELECT name FROM stadium WHERE capacity > 1000");
        assert!(text.contains("logical:"), "{text}");
        assert!(text.contains("physical:"), "{text}");
        assert!(text.contains("Scan stadium"), "{text}");
        assert!(text.contains("ScanExec"), "{text}");
        // The filter fuses into the scan on the physical side.
        assert!(text.contains("predicates=1"), "{text}");
    }

    #[test]
    fn explain_shows_topk_for_limited_sort() {
        let mut db = concert_db();
        let text =
            explain(&mut db, "EXPLAIN SELECT name FROM stadium ORDER BY capacity DESC LIMIT 2");
        assert!(text.contains("TopKExec"), "{text}");
        assert!(text.contains("fetch=2"), "{text}");
    }

    #[test]
    fn explain_does_not_execute() {
        let mut db = concert_db();
        // A query that would error at runtime still EXPLAINs fine.
        let rs = db.query("EXPLAIN SELECT name + 1 FROM stadium");
        assert!(rs.is_ok(), "{rs:?}");
    }

    /// Pull `rows_out=N` off the first (root) annotated operator line.
    fn root_rows_out(text: &str) -> usize {
        let line = text.lines().nth(1).expect("root operator line");
        let tail = line.split("rows_out=").nth(1).unwrap_or_else(|| panic!("no rows_out: {line}"));
        tail.split(|c: char| !c.is_ascii_digit()).next().unwrap().parse().unwrap()
    }

    #[test]
    fn explain_analyze_reconciles_with_executed_result() {
        let mut db = concert_db();
        for sql in [
            "SELECT name FROM stadium WHERE capacity > 40000",
            "SELECT s.name, c.concert_id FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id",
            "SELECT stadium_id, COUNT(*) FROM concert GROUP BY stadium_id ORDER BY stadium_id LIMIT 2",
        ] {
            let direct = db.query(sql).unwrap().rows.len();
            let text = explain(&mut db, &format!("EXPLAIN ANALYZE {sql}"));
            assert!(text.starts_with("physical (analyzed):"), "{text}");
            assert_eq!(root_rows_out(&text), direct, "{sql}\n{text}");
            assert!(text.contains(&format!("result: {direct} row(s)")), "{text}");
            assert!(text.contains("loops="), "{text}");
            assert!(text.contains("time="), "{text}");
        }
    }

    #[test]
    fn explain_analyze_marks_unexecuted_join_side() {
        let mut db = concert_db();
        db.execute("CREATE TABLE empty_t (x INT)").unwrap();
        // Left side empty → lazily materialized right side never builds.
        let text = explain(
            &mut db,
            "EXPLAIN ANALYZE SELECT * FROM empty_t JOIN stadium ON empty_t.x = stadium.stadium_id",
        );
        assert!(text.contains("(never executed)"), "{text}");
        assert!(text.contains("result: 0 row(s)"), "{text}");
    }

    #[test]
    fn explain_analyze_propagates_runtime_errors() {
        let mut db = concert_db();
        assert!(db.query("EXPLAIN ANALYZE SELECT name + 1 FROM stadium").is_err());
    }
}
