//! Volcano-style physical operators.
//!
//! [`build`] turns an optimized [`LogicalPlan`] into a tree of pull
//! iterators ([`PhysOp`]); [`run`] drains the root and wraps the rows in
//! a [`ResultSet`]. The one non-obvious construction rule: a chain of
//! `Filter` nodes that bottoms out at a `Scan` fuses into [`ScanExec`],
//! which evaluates the predicates against the *borrowed* stored row and
//! only clones rows that pass — the direct executor clones the whole
//! table up front.
//!
//! Execution is wrapped in an `llmdm-obs` span (`sqlengine.plan.exec`);
//! when a recorder is active, per-operator `rows_out` counts are attached
//! as span fields and accumulated into `sqlengine.plan.rows.<op>`
//! counters.

use std::collections::VecDeque;
use std::rc::Rc;

use crate::ast::{Expr, JoinType, SelectItem, SetOp};
use crate::catalog::Database;
use crate::error::SqlError;
use crate::eval::{eval, Env};
use crate::exec::{self, Bindings};
use crate::result::ResultSet;
use crate::schema::Row;
use crate::semantic::{ScopeGuard, SemCounters, SemScope};
use crate::value::Value;

use super::logical::LogicalPlan;

/// Execution statistics for one physical operator, in the same pre-order
/// as [`render`]'s lines (which is what lets [`render_analyzed`] zip the
/// two together).
#[derive(Debug, Clone)]
pub(crate) struct OpStat {
    /// Operator label (`scan.<table>`, `filter`, `join`, …) — also the
    /// suffix of the `sqlengine.plan.rows.<label>` counters.
    pub label: String,
    /// Rows this operator produced.
    pub rows_out: usize,
    /// `next()` calls observed (only meaningful when `timed`).
    pub loops: u64,
    /// Inclusive wall time across all `next()` calls, in nanoseconds
    /// (only meaningful when `timed`).
    pub elapsed_ns: u64,
    /// Whether this node was wrapped in timing instrumentation
    /// (`EXPLAIN ANALYZE` builds; plain runs skip the timer entirely).
    pub timed: bool,
    /// `false` for operators that never ran — e.g. the lazily
    /// materialized right side of a join whose left side was empty.
    pub executed: bool,
    /// Semantic-operator counters (model calls, dedup/cache hits,
    /// dollars), present only for operators that invoke the LLM.
    pub llm: Option<SemCounters>,
}

impl OpStat {
    fn basic(label: impl Into<String>, rows_out: usize) -> OpStat {
        OpStat {
            label: label.into(),
            rows_out,
            loops: 0,
            elapsed_ns: 0,
            timed: false,
            executed: true,
            llm: None,
        }
    }

    fn never(label: impl Into<String>) -> OpStat {
        OpStat {
            label: label.into(),
            rows_out: 0,
            loops: 0,
            elapsed_ns: 0,
            timed: false,
            executed: false,
            llm: None,
        }
    }

    fn with_llm(mut self, counters: SemCounters) -> OpStat {
        self.llm = Some(counters);
        self
    }
}

/// A pull-based operator: `next()` yields one output row at a time.
pub(crate) trait PhysOp<'a> {
    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Row>, SqlError>;
    /// Append this operator's [`OpStat`], then its children's (pre-order).
    fn stats(&self, out: &mut Vec<OpStat>);
}

/// Build the operator tree for a plan. With `instrument`, every operator
/// is wrapped in a [`TimedExec`] that counts `next()` calls and
/// accumulates inclusive wall time — the `EXPLAIN ANALYZE` path; plain
/// execution passes `false` and pays nothing.
pub(crate) fn build<'a>(
    db: &'a Database,
    plan: &'a LogicalPlan,
    instrument: bool,
) -> Result<Box<dyn PhysOp<'a> + 'a>, SqlError> {
    let op: Box<dyn PhysOp<'a> + 'a> = match plan {
        LogicalPlan::OneRow => Box::new(OneRowExec { emitted: false }),
        LogicalPlan::Scan { .. } => build_scan(db, plan, Vec::new())?,
        LogicalPlan::Filter { input, predicate } => {
            // Fuse Filter chains over a base scan. Predicates collected
            // outside-in are reversed so the innermost (leftmost WHERE
            // conjunct) evaluates first, as on the direct path.
            let mut preds: Vec<&'a Expr> = vec![predicate];
            let mut base: &'a LogicalPlan = input;
            while let LogicalPlan::Filter { input, predicate } = base {
                preds.push(predicate);
                base = input;
            }
            if matches!(base, LogicalPlan::Scan { .. }) {
                preds.reverse();
                build_scan(db, base, preds)?
            } else {
                Box::new(FilterExec {
                    db,
                    bindings: input.bindings(),
                    input: build(db, input, instrument)?,
                    predicate,
                    rows_out: 0,
                })
            }
        }
        LogicalPlan::LlmFilter { input, predicate, .. } => Box::new(LlmFilterExec {
            db,
            bindings: input.bindings(),
            input: build(db, input, instrument)?,
            predicate,
            scope: SemScope::new(),
            rows_out: 0,
        }),
        LogicalPlan::LlmMap { input, items, .. } => Box::new(LlmMapExec {
            db,
            bindings: input.bindings(),
            input: build(db, input, instrument)?,
            items,
            scope: SemScope::new(),
            rows_out: 0,
        }),
        LogicalPlan::Join { left, right, join, on } => Box::new(NLJoinExec {
            db,
            left_bindings: left.bindings(),
            right_bindings: right.bindings(),
            left: build(db, left, instrument)?,
            right_plan: right,
            right_rows: Vec::new(),
            right_ready: false,
            right_stats: Vec::new(),
            instrument,
            join: *join,
            on: on.as_ref(),
            // A semantic ON that survives lowering (LEFT JOIN can't be
            // rewritten to cross-join + filter) still dedups prompts and
            // attributes calls to this operator.
            scope: on.as_ref().is_some_and(|e| e.contains_llm()).then(SemScope::new),
            cur: None,
            right_idx: 0,
            matched: false,
            rows_out: 0,
        }),
        LogicalPlan::Project { input, items, .. } => Box::new(ProjectExec {
            db,
            bindings: input.bindings(),
            input: build(db, input, instrument)?,
            items,
            rows_out: 0,
        }),
        LogicalPlan::Aggregate { input, group_by, having, items, .. } => {
            let has_llm = group_by.iter().any(Expr::contains_llm)
                || having.as_ref().is_some_and(|h| h.contains_llm())
                || items.iter().any(|it| match it {
                    SelectItem::Expr { expr, .. } => expr.contains_llm(),
                    _ => false,
                });
            Box::new(AggregateExec {
                db,
                bindings: input.bindings(),
                input: build(db, input, instrument)?,
                group_by,
                having: having.as_ref(),
                items,
                scope: has_llm.then(SemScope::new),
                buf: VecDeque::new(),
                done: false,
                rows_out: 0,
            })
        }
        LogicalPlan::Distinct { input } => Box::new(DistinctExec {
            input: build(db, input, instrument)?,
            buf: VecDeque::new(),
            done: false,
            rows_out: 0,
        }),
        LogicalPlan::SetOp { left, right, op, all } => Box::new(SetOpExec {
            left_cols: left.output_columns().len(),
            right_cols: right.output_columns().len(),
            left: build(db, left, instrument)?,
            right: build(db, right, instrument)?,
            op: *op,
            all: *all,
            buf: VecDeque::new(),
            done: false,
            rows_out: 0,
        }),
        LogicalPlan::Sort { input, keys, fetch } => Box::new(SortExec {
            input: build(db, input, instrument)?,
            keys,
            fetch: *fetch,
            buf: VecDeque::new(),
            done: false,
            rows_out: 0,
        }),
        LogicalPlan::Strip { input, keep } => Box::new(StripExec {
            input: build(db, input, instrument)?,
            keep: *keep,
            rows_out: 0,
        }),
        LogicalPlan::Limit { input, limit, offset } => Box::new(LimitExec {
            input: build(db, input, instrument)?,
            limit: *limit,
            offset: *offset,
            skipped: 0,
            emitted: 0,
        }),
    };
    Ok(if instrument { Box::new(TimedExec { inner: op, loops: 0, elapsed_ns: 0 }) } else { op })
}

fn build_scan<'a>(
    db: &'a Database,
    scan: &'a LogicalPlan,
    predicates: Vec<&'a Expr>,
) -> Result<Box<dyn PhysOp<'a> + 'a>, SqlError> {
    let LogicalPlan::Scan { table, alias, projection, .. } = scan else {
        return Err(SqlError::Exec("internal: build_scan on a non-scan node".into()));
    };
    let t = db.table(table)?;
    // Predicates are evaluated against the *full* stored schema so pushed
    // conjuncts may reference pruned-away columns.
    let mut full = Bindings::default();
    full.push(alias.clone(), t.schema.clone());
    Ok(Box::new(ScanExec {
        db,
        table: table.as_str(),
        rows: &t.rows,
        idx: 0,
        full,
        predicates,
        projection: projection.as_deref(),
        rows_out: 0,
    }))
}

/// Execute a plan and collect the result set.
pub(crate) fn run(db: &Database, plan: &LogicalPlan) -> Result<ResultSet, SqlError> {
    run_with(db, plan, false).map(|(rs, _)| rs)
}

/// Execute a plan with per-operator instrumentation ([`TimedExec`]
/// wrappers) and return both the result set and the pre-order
/// [`OpStat`]s — the `EXPLAIN ANALYZE` entry point.
pub(crate) fn run_analyzed(
    db: &Database,
    plan: &LogicalPlan,
) -> Result<(ResultSet, Vec<OpStat>), SqlError> {
    run_with(db, plan, true)
}

fn run_with(
    db: &Database,
    plan: &LogicalPlan,
    instrument: bool,
) -> Result<(ResultSet, Vec<OpStat>), SqlError> {
    let mut span = llmdm_obs::span("sqlengine.plan.exec");
    let mut root = build(db, plan, instrument)?;
    let mut rows: Vec<Row> = Vec::new();
    let mut failure: Option<SqlError> = None;
    loop {
        match root.next() {
            Ok(Some(r)) => rows.push(r),
            Ok(None) => break,
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }
    let mut stats: Vec<OpStat> = Vec::new();
    if instrument || span.is_recording() {
        root.stats(&mut stats);
    }
    if span.is_recording() {
        for (i, st) in stats.iter().enumerate() {
            span.field(&format!("rows_out.{i}.{}", st.label), st.rows_out);
            llmdm_obs::counter_add(&format!("sqlengine.plan.rows.{}", st.label), st.rows_out as f64);
        }
        span.field("rows_out", rows.len());
        if failure.is_some() {
            span.field("error", true);
        }
    }
    match failure {
        Some(e) => Err(e),
        None => Ok((ResultSet { columns: plan.output_columns(), rows, affected: 0 }, stats)),
    }
}

/// The `EXPLAIN ANALYZE` decorator: forwards `next()` while counting
/// calls and accumulating inclusive wall time, and annotates its inner
/// operator's own [`OpStat`] (the first one its subtree pushes).
struct TimedExec<'a> {
    inner: Box<dyn PhysOp<'a> + 'a>,
    loops: u64,
    elapsed_ns: u64,
}

impl<'a> PhysOp<'a> for TimedExec<'a> {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        let t0 = std::time::Instant::now();
        let out = self.inner.next();
        self.elapsed_ns += t0.elapsed().as_nanos() as u64;
        self.loops += 1;
        out
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        let start = out.len();
        self.inner.stats(out);
        if let Some(st) = out.get_mut(start) {
            st.loops = self.loops;
            st.elapsed_ns = self.elapsed_ns;
            st.timed = true;
        }
    }
}

// ---------------- operators ----------------

struct OneRowExec {
    emitted: bool,
}

impl<'a> PhysOp<'a> for OneRowExec {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        if self.emitted {
            Ok(None)
        } else {
            self.emitted = true;
            Ok(Some(Vec::new()))
        }
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        out.push(OpStat::basic("onerow", usize::from(self.emitted)));
    }
}

struct ScanExec<'a> {
    db: &'a Database,
    table: &'a str,
    rows: &'a [Row],
    idx: usize,
    full: Bindings,
    predicates: Vec<&'a Expr>,
    projection: Option<&'a [usize]>,
    rows_out: usize,
}

impl<'a> PhysOp<'a> for ScanExec<'a> {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        'rows: while self.idx < self.rows.len() {
            let row = &self.rows[self.idx];
            self.idx += 1;
            {
                let scopes = self.full.scopes(row);
                let env = Env { scopes: &scopes, db: self.db };
                for p in &self.predicates {
                    if !eval(p, &env)?.is_truthy() {
                        continue 'rows;
                    }
                }
            }
            let out = match self.projection {
                None => row.clone(),
                Some(keep) => keep.iter().map(|&i| row[i].clone()).collect(),
            };
            self.rows_out += 1;
            return Ok(Some(out));
        }
        Ok(None)
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        out.push(OpStat::basic(format!("scan.{}", self.table), self.rows_out));
    }
}

struct FilterExec<'a> {
    db: &'a Database,
    bindings: Bindings,
    input: Box<dyn PhysOp<'a> + 'a>,
    predicate: &'a Expr,
    rows_out: usize,
}

impl<'a> PhysOp<'a> for FilterExec<'a> {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        while let Some(row) = self.input.next()? {
            let keep = {
                let scopes = self.bindings.scopes(&row);
                let env = Env { scopes: &scopes, db: self.db };
                eval(self.predicate, &env)?.is_truthy()
            };
            if keep {
                self.rows_out += 1;
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        out.push(OpStat::basic("filter", self.rows_out));
        self.input.stats(out);
    }
}

/// Evaluates a semantic predicate (`LLM_FILTER` / `LLM_MATCH`) per input
/// row. Owns a [`SemScope`] so identical prompts within this operator's
/// input dedup to one model call, and model usage (calls, cache hits,
/// dollars) is attributed to this operator in `EXPLAIN ANALYZE`.
struct LlmFilterExec<'a> {
    db: &'a Database,
    bindings: Bindings,
    input: Box<dyn PhysOp<'a> + 'a>,
    predicate: &'a Expr,
    scope: Rc<SemScope>,
    rows_out: usize,
}

impl<'a> PhysOp<'a> for LlmFilterExec<'a> {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        while let Some(row) = self.input.next()? {
            let keep = {
                let _guard = ScopeGuard::enter(Rc::clone(&self.scope));
                let scopes = self.bindings.scopes(&row);
                let env = Env { scopes: &scopes, db: self.db };
                eval(self.predicate, &env)?.is_truthy()
            };
            if keep {
                self.rows_out += 1;
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        out.push(OpStat::basic("llm_filter", self.rows_out).with_llm(self.scope.counters()));
        self.input.stats(out);
    }
}

struct NLJoinExec<'a> {
    db: &'a Database,
    left_bindings: Bindings,
    right_bindings: Bindings,
    left: Box<dyn PhysOp<'a> + 'a>,
    right_plan: &'a LogicalPlan,
    /// Right side, materialized on first pull.
    right_rows: Vec<Row>,
    right_ready: bool,
    right_stats: Vec<OpStat>,
    /// Whether lazily built right-side operators get [`TimedExec`] wrappers.
    instrument: bool,
    join: JoinType,
    on: Option<&'a Expr>,
    /// Present when `on` contains a semantic predicate: dedups prompts
    /// across the whole pairwise comparison and attributes model usage.
    scope: Option<Rc<SemScope>>,
    /// Current left row being matched.
    cur: Option<Row>,
    right_idx: usize,
    matched: bool,
    rows_out: usize,
}

impl<'a> NLJoinExec<'a> {
    fn on_matches(&self, left_row: &[Value], right_row: &[Value]) -> Result<bool, SqlError> {
        let Some(on) = self.on else { return Ok(true) };
        let _guard = self.scope.as_ref().map(|s| ScopeGuard::enter(Rc::clone(s)));
        // Evaluate against both segments without cloning the combined row.
        let mut scopes = self.left_bindings.scopes(left_row);
        scopes.extend(self.right_bindings.scopes(right_row));
        let env = Env { scopes: &scopes, db: self.db };
        Ok(eval(on, &env)?.is_truthy())
    }
}

impl<'a> PhysOp<'a> for NLJoinExec<'a> {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        loop {
            if self.cur.is_none() {
                match self.left.next()? {
                    Some(row) => {
                        self.cur = Some(row);
                        self.right_idx = 0;
                        self.matched = false;
                        if !self.right_ready {
                            let mut child = build(self.db, self.right_plan, self.instrument)?;
                            let mut rows = Vec::new();
                            while let Some(r) = child.next()? {
                                rows.push(r);
                            }
                            child.stats(&mut self.right_stats);
                            self.right_rows = rows;
                            self.right_ready = true;
                        }
                    }
                    None => return Ok(None),
                }
            }
            let Some(left_row) = self.cur.take() else { unreachable!() };
            while self.right_idx < self.right_rows.len() {
                let i = self.right_idx;
                self.right_idx += 1;
                if self.on_matches(&left_row, &self.right_rows[i])? {
                    self.matched = true;
                    let mut combined = left_row.clone();
                    combined.extend(self.right_rows[i].iter().cloned());
                    self.cur = Some(left_row);
                    self.rows_out += 1;
                    return Ok(Some(combined));
                }
            }
            // Right side exhausted for this left row.
            if self.join == JoinType::Left && !self.matched {
                let mut combined = left_row;
                combined
                    .extend(std::iter::repeat_n(Value::Null, self.right_bindings.width()));
                self.rows_out += 1;
                return Ok(Some(combined));
            }
            // Inner with no match: move on to the next left row.
        }
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        let mut st = OpStat::basic("join", self.rows_out);
        if let Some(scope) = &self.scope {
            st = st.with_llm(scope.counters());
        }
        out.push(st);
        self.left.stats(out);
        if self.right_ready {
            out.extend(self.right_stats.iter().cloned());
        } else {
            // Left side was empty: the right subtree was never built.
            // Emit placeholders so pre-order stays aligned with render().
            placeholder_stats(self.right_plan, out);
        }
    }
}

struct ProjectExec<'a> {
    db: &'a Database,
    bindings: Bindings,
    input: Box<dyn PhysOp<'a> + 'a>,
    items: &'a [SelectItem],
    rows_out: usize,
}

impl<'a> PhysOp<'a> for ProjectExec<'a> {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        match self.input.next()? {
            Some(row) => {
                let out = exec::project_row(self.db, &self.bindings, self.items, &row)?;
                self.rows_out += 1;
                Ok(Some(out))
            }
            None => Ok(None),
        }
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        out.push(OpStat::basic("project", self.rows_out));
        self.input.stats(out);
    }
}

/// Projection whose items contain semantic operators (`LLM_MAP` and
/// friends). Identical to [`ProjectExec`] plus a per-operator
/// [`SemScope`] for prompt dedup and usage attribution.
struct LlmMapExec<'a> {
    db: &'a Database,
    bindings: Bindings,
    input: Box<dyn PhysOp<'a> + 'a>,
    items: &'a [SelectItem],
    scope: Rc<SemScope>,
    rows_out: usize,
}

impl<'a> PhysOp<'a> for LlmMapExec<'a> {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        match self.input.next()? {
            Some(row) => {
                let _guard = ScopeGuard::enter(Rc::clone(&self.scope));
                let out = exec::project_row(self.db, &self.bindings, self.items, &row)?;
                self.rows_out += 1;
                Ok(Some(out))
            }
            None => Ok(None),
        }
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        out.push(OpStat::basic("llm_map", self.rows_out).with_llm(self.scope.counters()));
        self.input.stats(out);
    }
}

struct AggregateExec<'a> {
    db: &'a Database,
    bindings: Bindings,
    input: Box<dyn PhysOp<'a> + 'a>,
    group_by: &'a [Expr],
    having: Option<&'a Expr>,
    items: &'a [SelectItem],
    /// Present when any aggregate expression contains a semantic
    /// operator.
    scope: Option<Rc<SemScope>>,
    buf: VecDeque<Row>,
    done: bool,
    rows_out: usize,
}

impl<'a> PhysOp<'a> for AggregateExec<'a> {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        if !self.done {
            let mut rows = Vec::new();
            while let Some(r) = self.input.next()? {
                rows.push(r);
            }
            let _guard = self.scope.as_ref().map(|s| ScopeGuard::enter(Rc::clone(s)));
            self.buf = exec::aggregate_rows(
                self.db,
                &self.bindings,
                self.group_by,
                self.having,
                self.items,
                rows,
            )?
            .into();
            self.done = true;
        }
        let row = self.buf.pop_front();
        self.rows_out += usize::from(row.is_some());
        Ok(row)
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        let mut st = OpStat::basic("aggregate", self.rows_out);
        if let Some(scope) = &self.scope {
            st = st.with_llm(scope.counters());
        }
        out.push(st);
        self.input.stats(out);
    }
}

struct DistinctExec<'a> {
    input: Box<dyn PhysOp<'a> + 'a>,
    buf: VecDeque<Row>,
    done: bool,
    rows_out: usize,
}

impl<'a> PhysOp<'a> for DistinctExec<'a> {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        if !self.done {
            let mut rows = Vec::new();
            while let Some(r) = self.input.next()? {
                rows.push(r);
            }
            exec::dedup_rows(&mut rows);
            self.buf = rows.into();
            self.done = true;
        }
        let row = self.buf.pop_front();
        self.rows_out += usize::from(row.is_some());
        Ok(row)
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        out.push(OpStat::basic("distinct", self.rows_out));
        self.input.stats(out);
    }
}

struct SetOpExec<'a> {
    left_cols: usize,
    right_cols: usize,
    left: Box<dyn PhysOp<'a> + 'a>,
    right: Box<dyn PhysOp<'a> + 'a>,
    op: SetOp,
    all: bool,
    buf: VecDeque<Row>,
    done: bool,
    rows_out: usize,
}

impl<'a> PhysOp<'a> for SetOpExec<'a> {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        if !self.done {
            // Drain both sides *before* the arity check so error ordering
            // matches the direct executor (which runs each side fully).
            let mut lrows = Vec::new();
            while let Some(r) = self.left.next()? {
                lrows.push(r);
            }
            let mut rrows = Vec::new();
            while let Some(r) = self.right.next()? {
                rrows.push(r);
            }
            if self.left_cols != self.right_cols {
                return Err(SqlError::Exec(format!(
                    "set operation arity mismatch: {} vs {}",
                    self.left_cols, self.right_cols
                )));
            }
            self.buf = exec::apply_set_op(self.op, self.all, lrows, rrows).into();
            self.done = true;
        }
        let row = self.buf.pop_front();
        self.rows_out += usize::from(row.is_some());
        Ok(row)
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        out.push(OpStat::basic("setop", self.rows_out));
        self.left.stats(out);
        self.right.stats(out);
    }
}

struct SortExec<'a> {
    input: Box<dyn PhysOp<'a> + 'a>,
    keys: &'a [(usize, bool)],
    fetch: Option<usize>,
    buf: VecDeque<Row>,
    done: bool,
    rows_out: usize,
}

impl<'a> PhysOp<'a> for SortExec<'a> {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        if !self.done {
            match self.fetch {
                // Top-k: maintain a sorted prefix of at most k rows.
                // Inserting at the *upper* bound of the equal range keeps
                // the selection identical to a full stable sort + take(k).
                Some(k) => {
                    let mut top: Vec<Row> = Vec::new();
                    while let Some(row) = self.input.next()? {
                        // The input is still drained fully (even when
                        // k = 0) so runtime errors below the sort surface
                        // exactly as they do on the direct path.
                        if k == 0 {
                            continue;
                        }
                        if top.len() == k
                            && exec::cmp_rows_on(&row, &top[k - 1], self.keys)
                                != std::cmp::Ordering::Less
                        {
                            continue;
                        }
                        let pos = top.partition_point(|r| {
                            exec::cmp_rows_on(r, &row, self.keys) != std::cmp::Ordering::Greater
                        });
                        top.insert(pos, row);
                        top.truncate(k);
                    }
                    self.buf = top.into();
                }
                None => {
                    let mut rows = Vec::new();
                    while let Some(r) = self.input.next()? {
                        rows.push(r);
                    }
                    exec::sort_rows(&mut rows, self.keys);
                    self.buf = rows.into();
                }
            }
            self.done = true;
        }
        let row = self.buf.pop_front();
        self.rows_out += usize::from(row.is_some());
        Ok(row)
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        let label = if self.fetch.is_some() { "topk" } else { "sort" };
        out.push(OpStat::basic(label, self.rows_out));
        self.input.stats(out);
    }
}

struct StripExec<'a> {
    input: Box<dyn PhysOp<'a> + 'a>,
    keep: usize,
    rows_out: usize,
}

impl<'a> PhysOp<'a> for StripExec<'a> {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        match self.input.next()? {
            Some(mut row) => {
                row.truncate(self.keep);
                self.rows_out += 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        out.push(OpStat::basic("strip", self.rows_out));
        self.input.stats(out);
    }
}

struct LimitExec<'a> {
    input: Box<dyn PhysOp<'a> + 'a>,
    limit: Option<usize>,
    offset: usize,
    skipped: usize,
    emitted: usize,
}

impl<'a> PhysOp<'a> for LimitExec<'a> {
    fn next(&mut self) -> Result<Option<Row>, SqlError> {
        if let Some(l) = self.limit {
            if self.emitted >= l {
                return Ok(None);
            }
        }
        while self.skipped < self.offset {
            match self.input.next()? {
                Some(_) => self.skipped += 1,
                None => return Ok(None),
            }
        }
        match self.input.next()? {
            Some(row) => {
                self.emitted += 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }

    fn stats(&self, out: &mut Vec<OpStat>) {
        out.push(OpStat::basic("limit", self.emitted));
        self.input.stats(out);
    }
}

/// Pre-order placeholder stats for a subtree that was never built (the
/// lazily materialized right side of a join whose left side was empty).
/// Mirrors [`render_into`]'s traversal — including filter-over-scan
/// fusion — so stats stay zip-aligned with [`render`]'s lines.
fn placeholder_stats(plan: &LogicalPlan, out: &mut Vec<OpStat>) {
    match plan {
        LogicalPlan::OneRow => out.push(OpStat::never("onerow")),
        LogicalPlan::Scan { table, .. } => out.push(OpStat::never(format!("scan.{table}"))),
        LogicalPlan::Filter { input, .. } => {
            let mut base: &LogicalPlan = input;
            while let LogicalPlan::Filter { input, .. } = base {
                base = input;
            }
            if let LogicalPlan::Scan { table, .. } = base {
                out.push(OpStat::never(format!("scan.{table}")));
            } else {
                out.push(OpStat::never("filter"));
                placeholder_stats(input, out);
            }
        }
        LogicalPlan::LlmFilter { input, .. } => {
            out.push(OpStat::never("llm_filter"));
            placeholder_stats(input, out);
        }
        LogicalPlan::LlmMap { input, .. } => {
            out.push(OpStat::never("llm_map"));
            placeholder_stats(input, out);
        }
        LogicalPlan::Join { left, right, .. } => {
            out.push(OpStat::never("join"));
            placeholder_stats(left, out);
            placeholder_stats(right, out);
        }
        LogicalPlan::Project { input, .. } => {
            out.push(OpStat::never("project"));
            placeholder_stats(input, out);
        }
        LogicalPlan::Aggregate { input, .. } => {
            out.push(OpStat::never("aggregate"));
            placeholder_stats(input, out);
        }
        LogicalPlan::Distinct { input } => {
            out.push(OpStat::never("distinct"));
            placeholder_stats(input, out);
        }
        LogicalPlan::SetOp { left, right, .. } => {
            out.push(OpStat::never("setop"));
            placeholder_stats(left, out);
            placeholder_stats(right, out);
        }
        LogicalPlan::Sort { input, fetch, .. } => {
            out.push(OpStat::never(if fetch.is_some() { "topk" } else { "sort" }));
            placeholder_stats(input, out);
        }
        LogicalPlan::Strip { input, .. } => {
            out.push(OpStat::never("strip"));
            placeholder_stats(input, out);
        }
        LogicalPlan::Limit { input, .. } => {
            out.push(OpStat::never("limit"));
            placeholder_stats(input, out);
        }
    }
}

/// Render the physical operator tree for `EXPLAIN` (a pure function of
/// the optimized logical plan, mirroring the fusion rules in [`build`]).
pub(crate) fn render(plan: &LogicalPlan) -> Vec<String> {
    let mut out = Vec::new();
    render_into(plan, 0, &mut out);
    out
}

/// Per-node child counts in the same pre-order as [`render`] — the shape
/// information [`render_analyzed`] uses to compute each operator's
/// `rows_in` (sum of its direct children's `rows_out`).
fn arities_into(plan: &LogicalPlan, out: &mut Vec<usize>) {
    match plan {
        LogicalPlan::OneRow | LogicalPlan::Scan { .. } => out.push(0),
        LogicalPlan::Filter { input, .. } => {
            let mut base: &LogicalPlan = input;
            while let LogicalPlan::Filter { input, .. } = base {
                base = input;
            }
            if matches!(base, LogicalPlan::Scan { .. }) {
                out.push(0);
            } else {
                out.push(1);
                arities_into(input, out);
            }
        }
        LogicalPlan::Join { left, right, .. } | LogicalPlan::SetOp { left, right, .. } => {
            out.push(2);
            arities_into(left, out);
            arities_into(right, out);
        }
        LogicalPlan::LlmFilter { input, .. }
        | LogicalPlan::LlmMap { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Strip { input, .. }
        | LogicalPlan::Limit { input, .. } => {
            out.push(1);
            arities_into(input, out);
        }
    }
}

fn fmt_op_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Render the `EXPLAIN ANALYZE` operator tree: [`render`]'s lines, each
/// annotated with the matching [`OpStat`] — actual rows in/out, `next()`
/// loops and inclusive wall time, or `(never executed)` for subtrees the
/// run never built. `stats` must come from [`run_analyzed`] on the same
/// optimized plan.
pub(crate) fn render_analyzed(plan: &LogicalPlan, stats: &[OpStat]) -> Vec<String> {
    let lines = render(plan);
    let mut arities: Vec<usize> = Vec::new();
    arities_into(plan, &mut arities);
    debug_assert_eq!(lines.len(), stats.len(), "render/stats pre-order mismatch");
    debug_assert_eq!(lines.len(), arities.len());

    // rows_in per node = sum of direct children's rows_out, recovered
    // from the pre-order + arity encoding of the tree.
    fn walk(i: usize, ar: &[usize], stats: &[OpStat], rows_in: &mut [usize]) -> (usize, usize) {
        let mut next = i + 1;
        let mut sum = 0usize;
        for _ in 0..ar[i] {
            let (after, child_rows) = walk(next, ar, stats, rows_in);
            sum += child_rows;
            next = after;
        }
        rows_in[i] = sum;
        (next, stats.get(i).map_or(0, |s| s.rows_out))
    }
    let mut rows_in = vec![0usize; lines.len()];
    if !lines.is_empty() && stats.len() == lines.len() {
        walk(0, &arities, stats, &mut rows_in);
    }

    lines
        .iter()
        .zip(stats)
        .enumerate()
        .map(|(i, (line, st))| {
            if !st.executed {
                return format!("{line}  (never executed)");
            }
            let input = if arities[i] == 0 {
                String::new()
            } else {
                format!("rows_in={} ", rows_in[i])
            };
            let timing = if st.timed {
                format!(" loops={} time={}", st.loops, fmt_op_ns(st.elapsed_ns))
            } else {
                String::new()
            };
            let llm = match &st.llm {
                Some(c) => format!(
                    " llm_calls={} dedup_hits={} cache_hits={} dollars=${:.9}",
                    c.calls, c.dedup_hits, c.cache_hits, c.dollars
                ),
                None => String::new(),
            };
            format!("{line}  ({input}rows_out={}{timing}{llm})", st.rows_out)
        })
        .collect()
}

fn render_into(plan: &LogicalPlan, depth: usize, out: &mut Vec<String>) {
    let pad = "  ".repeat(depth);
    match plan {
        LogicalPlan::OneRow => out.push(format!("{pad}OneRowExec")),
        LogicalPlan::Scan { .. } => out.push(format!("{pad}{}", scan_line(plan, 0))),
        LogicalPlan::Filter { input, .. } => {
            let mut n = 1usize;
            let mut base: &LogicalPlan = input;
            while let LogicalPlan::Filter { input, .. } = base {
                n += 1;
                base = input;
            }
            if matches!(base, LogicalPlan::Scan { .. }) {
                out.push(format!("{pad}{}", scan_line(base, n)));
            } else {
                out.push(format!("{pad}FilterExec"));
                render_into(input, depth + 1, out);
            }
        }
        LogicalPlan::Join { left, right, join, .. } => {
            let jt = match join {
                JoinType::Inner => "inner",
                JoinType::Left => "left",
            };
            out.push(format!("{pad}NLJoinExec {jt} (right side materialized)"));
            render_into(left, depth + 1, out);
            render_into(right, depth + 1, out);
        }
        LogicalPlan::LlmFilter { input, predicate, .. } => {
            out.push(format!("{pad}LlmFilterExec {}", crate::printer::print_expr(predicate)));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::LlmMap { input, columns, .. } => {
            out.push(format!("{pad}LlmMapExec [{}]", columns.join(", ")));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::Project { input, columns, .. } => {
            out.push(format!("{pad}ProjectExec [{}]", columns.join(", ")));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::Aggregate { input, columns, .. } => {
            out.push(format!("{pad}AggregateExec -> [{}]", columns.join(", ")));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::Distinct { input } => {
            out.push(format!("{pad}DistinctExec"));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::SetOp { left, right, op, all } => {
            let name = match op {
                SetOp::Union => "union",
                SetOp::Intersect => "intersect",
                SetOp::Except => "except",
            };
            let all_s = if *all { " all" } else { "" };
            out.push(format!("{pad}SetOpExec {name}{all_s}"));
            render_into(left, depth + 1, out);
            render_into(right, depth + 1, out);
        }
        LogicalPlan::Sort { input, keys, fetch } => {
            let keys_s: Vec<String> = keys
                .iter()
                .map(|(i, desc)| format!("#{i}{}", if *desc { " DESC" } else { "" }))
                .collect();
            match fetch {
                Some(k) => out.push(format!(
                    "{pad}TopKExec keys=[{}] fetch={k}",
                    keys_s.join(", ")
                )),
                None => out.push(format!("{pad}SortExec keys=[{}]", keys_s.join(", "))),
            }
            render_into(input, depth + 1, out);
        }
        LogicalPlan::Strip { input, keep } => {
            out.push(format!("{pad}StripExec keep={keep}"));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::Limit { input, limit, offset } => {
            let limit_s = match limit {
                Some(l) => format!("{l}"),
                None => "ALL".to_string(),
            };
            out.push(format!("{pad}LimitExec limit={limit_s} offset={offset}"));
            render_into(input, depth + 1, out);
        }
    }
}

fn scan_line(scan: &LogicalPlan, fused_predicates: usize) -> String {
    let LogicalPlan::Scan { table, alias, schema, projection } = scan else {
        return "ScanExec ?".to_string();
    };
    let alias_s = if alias == table { String::new() } else { format!(" AS {alias}") };
    let pruned = match projection {
        Some(_) => format!(" cols={} (pruned)", schema.len()),
        None => String::new(),
    };
    format!("ScanExec {table}{alias_s} predicates={fused_predicates}{pruned}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::concert_db;
    use crate::parser::parse_statement;

    fn planned(db: &Database, sql: &str) -> ResultSet {
        let crate::ast::Statement::Select(stmt) = parse_statement(sql).unwrap() else {
            panic!("not a select: {sql}");
        };
        super::super::execute_select_planned(db, &stmt).unwrap()
    }

    #[test]
    fn fused_scan_matches_where_semantics() {
        let db = concert_db();
        let rs = planned(&db, "SELECT name FROM stadium WHERE capacity > 40000");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn topk_matches_full_sort_prefix_with_ties() {
        let mut db = concert_db();
        db.execute("CREATE TABLE t (x INT, y INT)").unwrap();
        db.execute(
            "INSERT INTO t VALUES (1, 10), (2, 20), (1, 30), (2, 40), (1, 50), (3, 60)",
        )
        .unwrap();
        let with_limit = planned(&db, "SELECT x, y FROM t ORDER BY x LIMIT 3");
        let full = planned(&db, "SELECT x, y FROM t ORDER BY x");
        assert_eq!(with_limit.rows, full.rows[..3].to_vec());
    }

    #[test]
    fn left_join_pads_nulls() {
        let db = concert_db();
        let rs = planned(
            &db,
            "SELECT s.name, c.concert_id FROM stadium s \
             LEFT JOIN concert c ON s.stadium_id = c.stadium_id \
             WHERE c.concert_id IS NULL",
        );
        // Metro Field (id 4) hosts no concerts.
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Str("Metro Field".into()));
        assert_eq!(rs.rows[0][1], Value::Null);
    }

    #[test]
    fn set_op_arity_mismatch_is_checked_after_both_sides_run() {
        let mut db = concert_db();
        let err = db
            .query("SELECT name, capacity FROM stadium UNION SELECT name FROM stadium")
            .unwrap_err();
        assert!(
            err.to_string().contains("set operation arity mismatch: 2 vs 1"),
            "{err}"
        );
    }
}
