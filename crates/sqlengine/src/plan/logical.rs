//! Logical plan IR and AST → plan lowering.
//!
//! Lowering is deliberately literal: each node corresponds to one step of
//! the direct executor's pipeline, so an unoptimized plan executes the
//! query with exactly the legacy semantics (same join order, same
//! NULL-ordering, same error messages for the cases lowering can reach).
//! All cleverness lives in [`super::rewrite`].

use crate::ast::{Expr, JoinType, SelectItem, SelectStmt, SetOp};
use crate::catalog::Database;
use crate::error::SqlError;
use crate::exec::{self, Bindings};
use crate::printer;
use crate::schema::Schema;

/// Planner-estimated cost of one semantic operator, shown by `EXPLAIN`.
/// Calls are discounted by the session cache's *live* hit ratio
/// ([`crate::semantic::ModelHandle::cache_hit_ratio`]), so the same plan
/// gets cheaper as the cache warms. Per-operator prompt dedup is not
/// modeled (distinct-value counts are unknown at plan time), so these are
/// upper bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct LlmEstimate {
    /// Estimated input rows.
    pub rows: usize,
    /// Prompts issued per input row (semantic invocations in the exprs).
    pub prompts_per_row: usize,
    /// Estimated model calls after the cache discount.
    pub calls: f64,
    /// Estimated dollars: calls × observed (or nominal) per-call price.
    pub dollars: f64,
    /// The cache hit ratio the discount used.
    pub hit_ratio: f64,
}

/// A relational operator tree. Children are boxed; `Scan` is the leaf.
#[derive(Debug, Clone)]
pub(crate) enum LogicalPlan {
    /// A single zero-width row — the seed for FROM-less selects and the
    /// left side of a first-item LEFT JOIN.
    OneRow,
    /// Full scan of a base table. `projection` (set by column pruning)
    /// selects a subset of the stored columns; `schema` always describes
    /// the scan's *output* (pruned when `projection` is `Some`).
    Scan {
        /// Base table name (lowercase).
        table: String,
        /// Binding alias (lowercase).
        alias: String,
        /// Output schema (pruned columns removed).
        schema: Schema,
        /// Indices into the stored row to keep, ascending; `None` = all.
        projection: Option<Vec<usize>>,
    },
    /// Nested-loop join.
    Join {
        /// Left input (already-joined prefix).
        left: Box<LogicalPlan>,
        /// Right input (the newly joined table).
        right: Box<LogicalPlan>,
        /// Inner or left-outer.
        join: JoinType,
        /// ON condition; `None` = cross join.
        on: Option<Expr>,
    },
    /// Row filter (`WHERE`, a first-item inner-join ON, or a pushed-down
    /// conjunct).
    Filter {
        /// Input.
        input: Box<LogicalPlan>,
        /// Rows are kept when this evaluates truthy.
        predicate: Expr,
    },
    /// Semantic predicate — `WHERE`/ON conjuncts invoking LLM operators,
    /// split out of [`LogicalPlan::Filter`] by the pushdown pass so cheap
    /// relational predicates always run first (the paper's reorder rule).
    LlmFilter {
        /// Input.
        input: Box<LogicalPlan>,
        /// Rows are kept when this evaluates truthy.
        predicate: Expr,
        /// Planner cost estimate (filled by the estimate pass).
        est: Option<LlmEstimate>,
    },
    /// Non-aggregate projection.
    Project {
        /// Input.
        input: Box<LogicalPlan>,
        /// Expanded projection items (no wildcards).
        items: Vec<SelectItem>,
        /// Output column names, one per item.
        columns: Vec<String>,
    },
    /// Projection whose items invoke semantic operators (`LLM_MAP` in the
    /// select list) — a [`LogicalPlan::Project`] that calls the model.
    LlmMap {
        /// Input.
        input: Box<LogicalPlan>,
        /// Expanded projection items (no wildcards).
        items: Vec<SelectItem>,
        /// Output column names, one per item.
        columns: Vec<String>,
        /// Planner cost estimate (filled by the estimate pass).
        est: Option<LlmEstimate>,
    },
    /// Grouped aggregation (also bare aggregates with no GROUP BY).
    Aggregate {
        /// Input.
        input: Box<LogicalPlan>,
        /// GROUP BY keys.
        group_by: Vec<Expr>,
        /// HAVING predicate.
        having: Option<Expr>,
        /// Expanded projection items.
        items: Vec<SelectItem>,
        /// Output column names.
        columns: Vec<String>,
    },
    /// `SELECT DISTINCT` dedup.
    Distinct {
        /// Input.
        input: Box<LogicalPlan>,
    },
    /// UNION/INTERSECT/EXCEPT.
    SetOp {
        /// Left query.
        left: Box<LogicalPlan>,
        /// Right query.
        right: Box<LogicalPlan>,
        /// Which set operation.
        op: SetOp,
        /// ALL (bag) semantics?
        all: bool,
    },
    /// Sort by positional keys. `fetch` (set by LIMIT pushdown) caps how
    /// many leading rows are needed, enabling top-k.
    Sort {
        /// Input.
        input: Box<LogicalPlan>,
        /// `(column index, descending)` keys, major first.
        keys: Vec<(usize, bool)>,
        /// Keep only the first `fetch` sorted rows when set.
        fetch: Option<usize>,
    },
    /// Drop hidden trailing sort columns, keeping the first `keep`.
    Strip {
        /// Input.
        input: Box<LogicalPlan>,
        /// Number of visible output columns.
        keep: usize,
    },
    /// LIMIT/OFFSET.
    Limit {
        /// Input.
        input: Box<LogicalPlan>,
        /// Max rows to emit (`None` = unbounded; OFFSET-only).
        limit: Option<usize>,
        /// Rows to skip first.
        offset: usize,
    },
}

impl LogicalPlan {
    /// Table bindings describing this node's output row layout. Only
    /// meaningful for the FROM region (Scan/Join/Filter/OneRow);
    /// projection and later operators produce column-shaped rows with no
    /// table scoping.
    pub(crate) fn bindings(&self) -> Bindings {
        match self {
            LogicalPlan::OneRow => Bindings::default(),
            LogicalPlan::Scan { alias, schema, .. } => {
                let mut b = Bindings::default();
                b.push(alias.clone(), schema.clone());
                b
            }
            LogicalPlan::Join { left, right, .. } => left.bindings().concat(&right.bindings()),
            LogicalPlan::Filter { input, .. } | LogicalPlan::LlmFilter { input, .. } => {
                input.bindings()
            }
            _ => Bindings::default(),
        }
    }

    /// Output column names, in order.
    pub(crate) fn output_columns(&self) -> Vec<String> {
        match self {
            LogicalPlan::OneRow => Vec::new(),
            LogicalPlan::Scan { schema, .. } => {
                schema.columns().iter().map(|c| c.name.clone()).collect()
            }
            LogicalPlan::Join { left, right, .. } => {
                let mut cols = left.output_columns();
                cols.extend(right.output_columns());
                cols
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::LlmFilter { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.output_columns(),
            LogicalPlan::Project { columns, .. }
            | LogicalPlan::LlmMap { columns, .. }
            | LogicalPlan::Aggregate { columns, .. } => columns.clone(),
            LogicalPlan::SetOp { left, .. } => left.output_columns(),
            LogicalPlan::Strip { input, keep } => {
                let mut cols = input.output_columns();
                cols.truncate(*keep);
                cols
            }
        }
    }
}

/// Lower a full SELECT (set ops, ORDER BY, LIMIT) into a logical plan.
pub(crate) fn lower_select(db: &Database, stmt: &SelectStmt) -> Result<LogicalPlan, SqlError> {
    let mut plan = lower_core(db, stmt, &[])?;
    if let Some((op, all, rhs)) = &stmt.set_op {
        // Arity is checked at execution time, after both sides have run,
        // to match the direct executor's error ordering.
        let right = lower_select(db, rhs)?;
        plan = LogicalPlan::SetOp {
            left: Box::new(plan),
            right: Box::new(right),
            op: *op,
            all: *all,
        };
    }
    if !stmt.order_by.is_empty() {
        let columns = plan.output_columns();
        let resolved: Result<Vec<(usize, bool)>, SqlError> = stmt
            .order_by
            .iter()
            .map(|k| Ok((exec::resolve_order_key(&columns, k)?, k.desc)))
            .collect();
        match resolved {
            Ok(keys) => plan = LogicalPlan::Sort { input: Box::new(plan), keys, fetch: None },
            Err(first_err) => {
                // Fall back to projecting the sort keys as hidden trailing
                // columns — only legal for a plain core, as in the direct
                // executor.
                if stmt.set_op.is_some() || stmt.distinct {
                    return Err(first_err);
                }
                exec::order_keys_executable(stmt)?;
                let visible = columns.len();
                let hidden: Vec<Expr> = stmt.order_by.iter().map(|k| k.expr.clone()).collect();
                let core = lower_core(db, stmt, &hidden)?;
                let keys: Vec<(usize, bool)> =
                    stmt.order_by.iter().enumerate().map(|(i, k)| (visible + i, k.desc)).collect();
                plan = LogicalPlan::Strip {
                    input: Box::new(LogicalPlan::Sort {
                        input: Box::new(core),
                        keys,
                        fetch: None,
                    }),
                    keep: visible,
                };
            }
        }
    }
    let offset = stmt.offset.unwrap_or(0);
    if stmt.limit.is_some() || offset > 0 {
        plan = LogicalPlan::Limit { input: Box::new(plan), limit: stmt.limit, offset };
    }
    Ok(plan)
}

/// Lower the core of one SELECT (FROM/WHERE/projection/DISTINCT), with
/// `hidden` extra sort-key expressions appended after the visible items.
fn lower_core(db: &Database, stmt: &SelectStmt, hidden: &[Expr]) -> Result<LogicalPlan, SqlError> {
    // FROM: fold tables left-to-right, exactly like `build_from`.
    let mut plan = LogicalPlan::OneRow;
    let mut seen: Vec<String> = Vec::new();
    for (i, item) in stmt.from.iter().enumerate() {
        let table = db.table(&item.table)?;
        let alias =
            item.alias.clone().unwrap_or_else(|| table.name.clone()).to_lowercase();
        if seen.contains(&alias) {
            return Err(SqlError::Exec(format!("duplicate table alias {alias}")));
        }
        seen.push(alias.clone());
        let scan = LogicalPlan::Scan {
            table: table.name.clone(),
            alias,
            schema: table.schema.clone(),
            projection: None,
        };
        plan = match (&item.join, i) {
            (None, _) => {
                if i == 0 {
                    scan
                } else {
                    // `parse` always sets a join for non-first items, but
                    // hand-built ASTs may not: treat as a cross join.
                    LogicalPlan::Join {
                        left: Box::new(plan),
                        right: Box::new(scan),
                        join: JoinType::Inner,
                        on: None,
                    }
                }
            }
            // A first-item INNER ON is just a filter over the scan; a
            // first-item LEFT JOIN pads against the zero-width seed row.
            (Some((JoinType::Inner, on)), 0) => LogicalPlan::Filter {
                input: Box::new(scan),
                predicate: on.clone(),
            },
            (Some((JoinType::Left, on)), 0) => LogicalPlan::Join {
                left: Box::new(LogicalPlan::OneRow),
                right: Box::new(scan),
                join: JoinType::Left,
                on: Some(on.clone()),
            },
            // An INNER ON invoking semantic operators (LLM_JOIN) lowers as
            // cross join + filter — same pairs in the same order, but the
            // predicate now lives in a Filter node the pushdown pass can
            // partition into relational-first / LLM-last (and the semantic
            // part gets its own costed LlmFilter operator).
            (Some((JoinType::Inner, on)), _) if on.contains_llm() => LogicalPlan::Filter {
                input: Box::new(LogicalPlan::Join {
                    left: Box::new(plan),
                    right: Box::new(scan),
                    join: JoinType::Inner,
                    on: None,
                }),
                predicate: on.clone(),
            },
            (Some((jt, on)), _) => LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(scan),
                join: *jt,
                on: Some(on.clone()),
            },
        };
    }
    if let Some(pred) = &stmt.selection {
        plan = LogicalPlan::Filter { input: Box::new(plan), predicate: pred.clone() };
    }
    // Projection: expand wildcards against the FROM bindings, then append
    // the hidden sort keys positionally.
    let bindings = plan.bindings();
    let mut items = exec::expand_projections(stmt, &bindings)?;
    let mut columns: Vec<String> =
        items.iter().enumerate().map(|(i, it)| exec::output_name(it, i)).collect();
    for (i, e) in hidden.iter().enumerate() {
        items.push(SelectItem::Expr { expr: e.clone(), alias: None });
        columns.push(format!("__sort{i}"));
    }
    let has_agg =
        exec::has_aggregate_core(stmt) || hidden.iter().any(|e| e.contains_aggregate());
    let has_llm_items = items.iter().any(|it| match it {
        SelectItem::Expr { expr, .. } => expr.contains_llm(),
        _ => false,
    });
    plan = if has_agg {
        LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: stmt.group_by.clone(),
            having: stmt.having.clone(),
            items,
            columns,
        }
    } else if has_llm_items {
        LogicalPlan::LlmMap { input: Box::new(plan), items, columns, est: None }
    } else {
        LogicalPlan::Project { input: Box::new(plan), items, columns }
    };
    if stmt.distinct {
        plan = LogicalPlan::Distinct { input: Box::new(plan) };
    }
    Ok(plan)
}

/// Render a semantic operator's cost estimate (empty before the estimate
/// pass runs, e.g. in unit tests over unoptimized plans).
fn render_estimate(est: &Option<LlmEstimate>) -> String {
    match est {
        Some(e) => format!(
            " est_rows={} est_calls={:.1} est_dollars=${:.6} cache_hit={:.0}%",
            e.rows,
            e.calls,
            e.dollars,
            e.hit_ratio * 100.0
        ),
        None => String::new(),
    }
}

/// Render a plan as indented lines for `EXPLAIN`.
pub(crate) fn render(plan: &LogicalPlan) -> Vec<String> {
    let mut out = Vec::new();
    render_into(plan, 0, &mut out);
    out
}

fn render_into(plan: &LogicalPlan, depth: usize, out: &mut Vec<String>) {
    let pad = "  ".repeat(depth);
    match plan {
        LogicalPlan::OneRow => out.push(format!("{pad}OneRow")),
        LogicalPlan::Scan { table, alias, schema, projection } => {
            let cols: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
            let pruned = if projection.is_some() { " (pruned)" } else { "" };
            let alias_s =
                if alias == table { String::new() } else { format!(" AS {alias}") };
            out.push(format!("{pad}Scan {table}{alias_s} cols=[{}]{pruned}", cols.join(", ")));
        }
        LogicalPlan::Join { left, right, join, on } => {
            let jt = match join {
                JoinType::Inner => "Inner",
                JoinType::Left => "Left",
            };
            let on_s = match on {
                Some(e) => format!(" ON {}", printer::print_expr(e)),
                None => " (cross)".to_string(),
            };
            out.push(format!("{pad}Join {jt}{on_s}"));
            render_into(left, depth + 1, out);
            render_into(right, depth + 1, out);
        }
        LogicalPlan::Filter { input, predicate } => {
            out.push(format!("{pad}Filter {}", printer::print_expr(predicate)));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::LlmFilter { input, predicate, est } => {
            out.push(format!(
                "{pad}LlmFilter {}{}",
                printer::print_expr(predicate),
                render_estimate(est)
            ));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::Project { input, columns, .. } => {
            out.push(format!("{pad}Project [{}]", columns.join(", ")));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::LlmMap { input, columns, est, .. } => {
            out.push(format!("{pad}LlmMap [{}]{}", columns.join(", "), render_estimate(est)));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::Aggregate { input, group_by, having, columns, .. } => {
            let keys: Vec<String> = group_by.iter().map(printer::print_expr).collect();
            let having_s = match having {
                Some(h) => format!(" having {}", printer::print_expr(h)),
                None => String::new(),
            };
            out.push(format!(
                "{pad}Aggregate group_by=[{}]{having_s} -> [{}]",
                keys.join(", "),
                columns.join(", ")
            ));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::Distinct { input } => {
            out.push(format!("{pad}Distinct"));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::SetOp { left, right, op, all } => {
            let name = match op {
                SetOp::Union => "Union",
                SetOp::Intersect => "Intersect",
                SetOp::Except => "Except",
            };
            let all_s = if *all { " ALL" } else { "" };
            out.push(format!("{pad}{name}{all_s}"));
            render_into(left, depth + 1, out);
            render_into(right, depth + 1, out);
        }
        LogicalPlan::Sort { input, keys, fetch } => {
            let keys_s: Vec<String> = keys
                .iter()
                .map(|(i, desc)| format!("#{i}{}", if *desc { " DESC" } else { "" }))
                .collect();
            let fetch_s = match fetch {
                Some(k) => format!(" fetch={k}"),
                None => String::new(),
            };
            out.push(format!("{pad}Sort keys=[{}]{fetch_s}", keys_s.join(", ")));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::Strip { input, keep } => {
            out.push(format!("{pad}Strip keep={keep}"));
            render_into(input, depth + 1, out);
        }
        LogicalPlan::Limit { input, limit, offset } => {
            let limit_s = match limit {
                Some(l) => format!("{l}"),
                None => "ALL".to_string(),
            };
            out.push(format!("{pad}Limit {limit_s} OFFSET {offset}"));
            render_into(input, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::concert_db;
    use crate::parser::parse_statement;

    fn lower(db: &Database, sql: &str) -> LogicalPlan {
        let crate::ast::Statement::Select(stmt) = parse_statement(sql).unwrap() else {
            panic!("not a select: {sql}");
        };
        lower_select(db, &stmt).unwrap()
    }

    #[test]
    fn lowering_shapes_match_the_clauses() {
        let db = concert_db();
        let text = render(&lower(
            &db,
            "SELECT s.name FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id \
             WHERE c.year = 2014 ORDER BY s.name LIMIT 3",
        ))
        .join("\n");
        for needle in ["Limit 3", "Sort keys=[#0]", "Project [name]", "Filter", "Join Inner"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn unprojected_order_key_lowers_to_hidden_sort_and_strip() {
        let db = concert_db();
        let text =
            render(&lower(&db, "SELECT name FROM stadium ORDER BY capacity DESC")).join("\n");
        assert!(text.contains("Strip keep=1"), "{text}");
        assert!(text.contains("Sort keys=[#1 DESC]"), "{text}");
        assert!(text.contains("Project [name, __sort0]"), "{text}");
    }

    #[test]
    fn aggregates_lower_to_aggregate_node() {
        let db = concert_db();
        let text = render(&lower(
            &db,
            "SELECT year, COUNT(*) FROM concert GROUP BY year HAVING COUNT(*) > 1",
        ))
        .join("\n");
        assert!(text.contains("Aggregate group_by=[year] having"), "{text}");
    }

    #[test]
    fn set_ops_lower_to_setop_node() {
        let db = concert_db();
        let text = render(&lower(
            &db,
            "SELECT name FROM stadium UNION ALL SELECT concert_name FROM concert",
        ))
        .join("\n");
        assert!(text.contains("Union ALL"), "{text}");
    }

    #[test]
    fn unknown_table_errors_at_lowering() {
        let db = concert_db();
        let crate::ast::Statement::Select(stmt) =
            parse_statement("SELECT * FROM nope").unwrap()
        else {
            unreachable!()
        };
        assert!(matches!(lower_select(&db, &stmt), Err(SqlError::UnknownTable(_))));
    }
}
