//! Recursive-descent SQL parser.

use crate::ast::{
    AggFunc, Assignment, BinOp, Expr, FromItem, JoinType, OrderKey, SelectItem, SelectStmt, SetOp,
    Statement, UnOp,
};
use crate::error::SqlError;
use crate::lexer::{lex, Sym, Token};
use crate::value::{DataType, Value};

/// Parse a single SQL statement (trailing `;` allowed).
pub fn parse_statement(sql: &str) -> Result<Statement, SqlError> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0, depth: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(Sym::Semicolon);
    if !p.at_end() {
        return Err(SqlError::Parse(format!("trailing tokens after statement: {:?}", p.peek())));
    }
    Ok(stmt)
}

/// Parse a `;`-separated script into statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>, SqlError> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0, depth: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        if p.eat_symbol(Sym::Semicolon) {
            continue;
        }
        out.push(p.statement()?);
        if !p.at_end() && !p.eat_symbol(Sym::Semicolon) {
            return Err(SqlError::Parse(format!("expected `;` between statements, got {:?}", p.peek())));
        }
    }
    Ok(out)
}

/// Parse a standalone expression (used by tests and by the transformation
/// crates to validate generated predicates).
pub fn parse_expr(input: &str) -> Result<Expr, SqlError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0, depth: 0 };
    let e = p.expr()?;
    if !p.at_end() {
        return Err(SqlError::Parse("trailing tokens after expression".into()));
    }
    Ok(e)
}

/// Words that terminate an implicit alias.
const RESERVED: &[&str] = &[
    "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "UNION", "INTERSECT",
    "EXCEPT", "ON", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "AND", "OR", "NOT", "AS", "BY",
    "SET", "VALUES", "ASC", "DESC", "ALL", "DISTINCT", "SELECT", "IN", "LIKE", "BETWEEN", "IS",
    "EXISTS", "CROSS", "LLM_JOIN",
];

/// Maximum nesting depth for expressions and set-operation chains. The
/// parser is recursive-descent, so unbounded nesting in query text (e.g.
/// thousands of `(`, `NOT`, or `-` in a row) would overflow the stack —
/// which `catch_unwind` cannot catch. The guard turns that into a typed
/// parse error instead. One parenthesized level costs the full
/// precedence-chain of stack frames (~10), so the cap is sized to fit a
/// debug-build test-thread stack (2 MiB) with plenty of headroom.
const MAX_DEPTH: usize = 48;

#[allow(clippy::wrong_self_convention)] // `from_clause` parses the SQL FROM clause
struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Current recursion depth (see [`MAX_DEPTH`]).
    depth: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.toks.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {kw}, got {:?}", self.peek())))
        }
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if self.peek() == Some(&Token::Symbol(s)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> Result<(), SqlError> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {s:?}, got {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::Parse(format!("expected identifier, got {other:?}"))),
        }
    }

    fn peek_is_reserved(&self) -> bool {
        matches!(self.peek(), Some(Token::Ident(s))
            if RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r)))
    }

    /// Run `f` one recursion level deeper, rejecting nesting past
    /// [`MAX_DEPTH`] with a parse error before the stack can overflow.
    fn with_depth<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, SqlError>,
    ) -> Result<T, SqlError> {
        if self.depth >= MAX_DEPTH {
            return Err(SqlError::Parse(format!(
                "nesting deeper than {MAX_DEPTH} levels"
            )));
        }
        self.depth += 1;
        let result = f(self);
        self.depth -= 1;
        result
    }

    // ---------------- statements ----------------

    fn statement(&mut self) -> Result<Statement, SqlError> {
        let Some(tok) = self.peek() else {
            return Err(SqlError::Parse("empty input".into()));
        };
        if tok.is_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if tok.is_kw("EXPLAIN") {
            self.next();
            let analyze = self.eat_kw("ANALYZE");
            return Ok(Statement::Explain { analyze, select: self.select()? });
        }
        if tok.is_kw("INSERT") {
            return self.insert();
        }
        if tok.is_kw("UPDATE") {
            return self.update();
        }
        if tok.is_kw("DELETE") {
            return self.delete();
        }
        if tok.is_kw("CREATE") {
            return self.create_table();
        }
        if tok.is_kw("DROP") {
            return self.drop_table();
        }
        if tok.is_kw("BEGIN") || tok.is_kw("START") {
            self.next();
            self.eat_kw("TRANSACTION");
            return Ok(Statement::Begin);
        }
        if tok.is_kw("COMMIT") {
            self.next();
            return Ok(Statement::Commit);
        }
        if tok.is_kw("ROLLBACK") {
            self.next();
            return Ok(Statement::Rollback);
        }
        Err(SqlError::Parse(format!("unexpected start of statement: {tok:?}")))
    }

    fn insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat_symbol(Sym::LParen) {
            let mut cols = vec![self.ident()?];
            while self.eat_symbol(Sym::Comma) {
                cols.push(self.ident()?);
            }
            self.expect_symbol(Sym::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut values = Vec::new();
        loop {
            self.expect_symbol(Sym::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat_symbol(Sym::Comma) {
                row.push(self.expr()?);
            }
            self.expect_symbol(Sym::RParen)?;
            values.push(row);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, values })
    }

    fn update(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.ident()?;
            self.expect_symbol(Sym::Eq)?;
            let value = self.expr()?;
            assignments.push(Assignment { column, value });
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let selection = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, assignments, selection })
    }

    fn delete(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let selection = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, selection })
    }

    fn create_table(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let table = self.ident()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let name = self.ident()?;
            let ty = self.data_type()?;
            // Ignore constraints like PRIMARY KEY / NOT NULL for simplicity.
            while !matches!(self.peek(), Some(Token::Symbol(Sym::Comma | Sym::RParen)) | None) {
                self.next();
            }
            columns.push((name, ty));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_symbol(Sym::RParen)?;
        let persist = self.eat_kw("PERSIST");
        Ok(Statement::CreateTable { table, columns, if_not_exists, persist })
    }

    fn drop_table(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("DROP")?;
        self.expect_kw("TABLE")?;
        let if_exists = if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let table = self.ident()?;
        Ok(Statement::DropTable { table, if_exists })
    }

    fn data_type(&mut self) -> Result<DataType, SqlError> {
        let name = self.ident()?.to_ascii_uppercase();
        let ty = match name.as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => DataType::Int,
            "FLOAT" | "REAL" | "DOUBLE" | "NUMERIC" | "DECIMAL" => DataType::Float,
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => DataType::Text,
            "BOOL" | "BOOLEAN" => DataType::Bool,
            other => return Err(SqlError::Parse(format!("unknown type {other}"))),
        };
        // Optional length/precision: VARCHAR(255), DECIMAL(10, 2).
        if self.eat_symbol(Sym::LParen) {
            while !self.eat_symbol(Sym::RParen) {
                if self.next().is_none() {
                    return Err(SqlError::Parse("unterminated type parameters".into()));
                }
            }
        }
        Ok(ty)
    }

    // ---------------- SELECT ----------------

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        let mut stmt = self.select_body()?;
        // ORDER BY / LIMIT / OFFSET attach to the whole chain.
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                stmt.order_by.push(OrderKey { expr, desc });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            stmt.limit = Some(self.usize_literal()?);
        }
        if self.eat_kw("OFFSET") {
            stmt.offset = Some(self.usize_literal()?);
        }
        Ok(stmt)
    }

    /// A select core plus its set-operation chain, *without* ORDER BY /
    /// LIMIT (those belong to the outermost statement).
    fn select_body(&mut self) -> Result<SelectStmt, SqlError> {
        let mut stmt = self.select_core()?;
        if let Some(op) = self.set_op() {
            let all = self.eat_kw("ALL");
            let rhs = self.with_depth(|p| p.select_body())?;
            stmt.set_op = Some((op, all, Box::new(rhs)));
        }
        Ok(stmt)
    }

    fn set_op(&mut self) -> Option<SetOp> {
        if self.eat_kw("UNION") {
            Some(SetOp::Union)
        } else if self.eat_kw("INTERSECT") {
            Some(SetOp::Intersect)
        } else if self.eat_kw("EXCEPT") {
            Some(SetOp::Except)
        } else {
            None
        }
    }

    fn usize_literal(&mut self) -> Result<usize, SqlError> {
        match self.next() {
            Some(Token::Int(n)) if n >= 0 => Ok(n as usize),
            other => Err(SqlError::Parse(format!("expected non-negative integer, got {other:?}"))),
        }
    }

    fn select_core(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw("SELECT")?;
        let mut stmt = SelectStmt::empty();
        if self.eat_kw("DISTINCT") {
            stmt.distinct = true;
        } else {
            self.eat_kw("ALL");
        }
        loop {
            stmt.projections.push(self.select_item()?);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        if self.eat_kw("FROM") {
            stmt.from = self.from_clause()?;
        }
        if self.eat_kw("WHERE") {
            stmt.selection = Some(self.expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            stmt.having = Some(self.expr()?);
        }
        Ok(stmt)
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.eat_symbol(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let (Some(Token::Ident(t)), Some(Token::Symbol(Sym::Dot)), Some(Token::Symbol(Sym::Star))) =
            (self.peek(), self.peek2(), self.toks.get(self.pos + 2))
        {
            let t = t.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(t));
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if !self.peek_is_reserved() {
            match self.peek() {
                Some(Token::Ident(_)) => Some(self.ident()?),
                _ => None,
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn from_clause(&mut self) -> Result<Vec<FromItem>, SqlError> {
        let mut items = vec![self.from_item(None)?];
        loop {
            if self.eat_symbol(Sym::Comma) {
                // Comma join = inner join with TRUE condition.
                items.push(self.from_item(Some((JoinType::Inner, Expr::lit(true))))?);
            } else if self.eat_kw("LLM_JOIN") {
                // `LLM_JOIN t [alias] ON <pred>` — a semantic inner join;
                // the ON predicate must invoke a semantic operator
                // (canonically `LLM_MATCH(a.x, b.y, 'prompt')`).
                let table = self.ident()?;
                let alias = self.optional_alias()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                if !on.contains_llm() {
                    return Err(SqlError::Parse(
                        "LLM_JOIN requires a semantic predicate in ON \
                         (e.g. LLM_MATCH(a.x, b.y, 'prompt'))"
                            .into(),
                    ));
                }
                items.push(FromItem { table, alias, join: Some((JoinType::Inner, on)) });
            } else if self.peek().is_some_and(|t| {
                t.is_kw("JOIN") || t.is_kw("INNER") || t.is_kw("LEFT") || t.is_kw("CROSS")
            }) {
                let jt = if self.eat_kw("LEFT") {
                    self.eat_kw("OUTER");
                    JoinType::Left
                } else if self.eat_kw("CROSS") {
                    self.expect_kw("JOIN")?;
                    items.push(self.from_item(Some((JoinType::Inner, Expr::lit(true))))?);
                    continue;
                } else {
                    self.eat_kw("INNER");
                    JoinType::Inner
                };
                self.expect_kw("JOIN")?;
                // Parse table ref first, then ON.
                let table = self.ident()?;
                let alias = self.optional_alias()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                items.push(FromItem { table, alias, join: Some((jt, on)) });
            } else {
                break;
            }
        }
        Ok(items)
    }

    fn from_item(&mut self, join: Option<(JoinType, Expr)>) -> Result<FromItem, SqlError> {
        let table = self.ident()?;
        let alias = self.optional_alias()?;
        Ok(FromItem { table, alias, join })
    }

    fn optional_alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.eat_kw("AS") {
            return Ok(Some(self.ident()?));
        }
        if !self.peek_is_reserved() {
            if let Some(Token::Ident(_)) = self.peek() {
                return Ok(Some(self.ident()?));
            }
        }
        Ok(None)
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.with_depth(|p| p.or_expr())
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("NOT") {
            let e = self.with_depth(|p| p.not_expr())?;
            return Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(e) });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] IN / LIKE / BETWEEN
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_symbol(Sym::LParen)?;
            if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
                let sub = self.select()?;
                self.expect_symbol(Sym::RParen)?;
                return Ok(Expr::InSubquery { expr: Box::new(left), subquery: Box::new(sub), negated });
            }
            let mut list = vec![self.expr()?];
            while self.eat_symbol(Sym::Comma) {
                list.push(self.expr()?);
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.next() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(SqlError::Parse(format!("LIKE expects a string pattern, got {other:?}")))
                }
            };
            return Ok(Expr::Like { expr: Box::new(left), pattern, negated });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(SqlError::Parse("dangling NOT before non-predicate".into()));
        }
        // Simple comparison operators.
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Sym::Neq)) => Some(BinOp::Neq),
            Some(Token::Symbol(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Sym::Le)) => Some(BinOp::Le),
            Some(Token::Symbol(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Sym::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let right = self.additive()?;
            return Ok(Expr::bin(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let right = self.multiplicative()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinOp::Div,
                Some(Token::Symbol(Sym::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.next();
            let right = self.unary()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat_symbol(Sym::Minus) {
            let e = self.with_depth(|p| p.unary())?;
            return Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(e) });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.next();
                Ok(Expr::lit(n))
            }
            Some(Token::Float(f)) => {
                self.next();
                Ok(Expr::lit(f))
            }
            Some(Token::Str(s)) => {
                self.next();
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Token::Symbol(Sym::LParen)) => {
                self.next();
                if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
                    let sub = self.select()?;
                    self.expect_symbol(Sym::RParen)?;
                    Ok(Expr::ScalarSubquery(Box::new(sub)))
                } else {
                    let e = self.expr()?;
                    self.expect_symbol(Sym::RParen)?;
                    Ok(e)
                }
            }
            Some(Token::Ident(id)) => {
                // Keywords acting as expressions.
                if id.eq_ignore_ascii_case("NULL") {
                    self.next();
                    return Ok(Expr::Literal(Value::Null));
                }
                if id.eq_ignore_ascii_case("TRUE") {
                    self.next();
                    return Ok(Expr::lit(true));
                }
                if id.eq_ignore_ascii_case("FALSE") {
                    self.next();
                    return Ok(Expr::lit(false));
                }
                if id.eq_ignore_ascii_case("EXISTS") {
                    self.next();
                    self.expect_symbol(Sym::LParen)?;
                    let sub = self.select()?;
                    self.expect_symbol(Sym::RParen)?;
                    return Ok(Expr::Exists { subquery: Box::new(sub), negated: false });
                }
                if id.eq_ignore_ascii_case("NOT")
                    && self.peek2().is_some_and(|t| t.is_kw("EXISTS"))
                {
                    self.next();
                    self.next();
                    self.expect_symbol(Sym::LParen)?;
                    let sub = self.select()?;
                    self.expect_symbol(Sym::RParen)?;
                    return Ok(Expr::Exists { subquery: Box::new(sub), negated: true });
                }
                // Aggregate call?
                if let Some(func) = AggFunc::from_name(&id) {
                    if self.peek2() == Some(&Token::Symbol(Sym::LParen)) {
                        self.next();
                        self.next();
                        let distinct = self.eat_kw("DISTINCT");
                        let arg = if self.eat_symbol(Sym::Star) {
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.expect_symbol(Sym::RParen)?;
                        if arg.is_none() && func != AggFunc::Count {
                            return Err(SqlError::Parse(format!("{}(*) is invalid", func.name())));
                        }
                        return Ok(Expr::Aggregate { func, arg, distinct });
                    }
                }
                // Semantic operator call? Like aggregates, the names are
                // only special when followed by `(` so they remain usable
                // as plain column names.
                if self.peek2() == Some(&Token::Symbol(Sym::LParen)) {
                    if id.eq_ignore_ascii_case("LLM_MAP") || id.eq_ignore_ascii_case("LLM_FILTER")
                    {
                        let is_map = id.eq_ignore_ascii_case("LLM_MAP");
                        self.next();
                        self.next();
                        let arg = self.with_depth(|p| p.expr())?;
                        self.expect_symbol(Sym::Comma)?;
                        let template = self.template_literal(&id)?;
                        self.expect_symbol(Sym::RParen)?;
                        return Ok(if is_map {
                            Expr::LlmMap { arg: Box::new(arg), template }
                        } else {
                            Expr::LlmFilter { arg: Box::new(arg), template }
                        });
                    }
                    if id.eq_ignore_ascii_case("LLM_MATCH") {
                        self.next();
                        self.next();
                        let left = self.with_depth(|p| p.expr())?;
                        self.expect_symbol(Sym::Comma)?;
                        let right = self.with_depth(|p| p.expr())?;
                        self.expect_symbol(Sym::Comma)?;
                        let template = self.template_literal(&id)?;
                        self.expect_symbol(Sym::RParen)?;
                        return Ok(Expr::LlmMatch {
                            left: Box::new(left),
                            right: Box::new(right),
                            template,
                        });
                    }
                }
                // Column reference (possibly qualified). Reserved words
                // cannot be bare column names.
                if RESERVED.iter().any(|r| id.eq_ignore_ascii_case(r)) {
                    return Err(SqlError::Parse(format!(
                        "unexpected keyword {id} in expression"
                    )));
                }
                self.next();
                if self.eat_symbol(Sym::Dot) {
                    let col = self.ident()?;
                    Ok(Expr::Column { qualifier: Some(id), name: col })
                } else {
                    Ok(Expr::Column { qualifier: None, name: id })
                }
            }
            other => Err(SqlError::Parse(format!("unexpected token in expression: {other:?}"))),
        }
    }

    /// The prompt-template argument of a semantic operator must be a
    /// string literal: templates are part of the query text, not data.
    fn template_literal(&mut self, func: &str) -> Result<String, SqlError> {
        match self.peek().cloned() {
            Some(Token::Str(s)) => {
                self.next();
                Ok(s)
            }
            other => Err(SqlError::Parse(format!(
                "{} requires a string-literal prompt template, got {other:?}",
                func.to_ascii_uppercase()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SelectItem;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT name FROM stadium WHERE capacity > 1000");
        assert_eq!(s.projections.len(), 1);
        assert_eq!(s.from[0].table, "stadium");
        assert!(s.selection.is_some());
    }

    #[test]
    fn select_star_and_alias() {
        let s = sel("SELECT *, capacity AS cap FROM stadium s");
        assert_eq!(s.projections[0], SelectItem::Wildcard);
        match &s.projections[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("cap")),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.from[0].alias.as_deref(), Some("s"));
    }

    #[test]
    fn join_with_on() {
        let s = sel(
            "SELECT s.name FROM stadium s JOIN concert c ON s.stadium_id = c.stadium_id",
        );
        assert_eq!(s.from.len(), 2);
        assert!(matches!(s.from[1].join, Some((JoinType::Inner, _))));
    }

    #[test]
    fn left_join() {
        let s = sel("SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id");
        assert!(matches!(s.from[1].join, Some((JoinType::Left, _))));
    }

    #[test]
    fn comma_join_is_inner_true() {
        let s = sel("SELECT * FROM a, b WHERE a.id = b.id");
        assert!(matches!(
            s.from[1].join,
            Some((JoinType::Inner, Expr::Literal(Value::Bool(true))))
        ));
    }

    #[test]
    fn group_by_having_order_limit() {
        let s = sel(
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 2 \
             ORDER BY dept DESC LIMIT 10 OFFSET 5",
        );
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(5));
    }

    #[test]
    fn aggregates() {
        let s = sel("SELECT COUNT(*), SUM(x), AVG(DISTINCT y) FROM t");
        match &s.projections[2] {
            SelectItem::Expr { expr: Expr::Aggregate { func, distinct, .. }, .. } => {
                assert_eq!(*func, AggFunc::Avg);
                assert!(distinct);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn in_subquery() {
        let s = sel(
            "SELECT name FROM stadium WHERE stadium_id IN \
             (SELECT stadium_id FROM concert WHERE year = 2014)",
        );
        assert!(matches!(s.selection, Some(Expr::InSubquery { negated: false, .. })));
    }

    #[test]
    fn not_in_list() {
        let s = sel("SELECT * FROM t WHERE x NOT IN (1, 2, 3)");
        assert!(matches!(s.selection, Some(Expr::InList { negated: true, .. })));
    }

    #[test]
    fn exists() {
        let s = sel("SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u)");
        assert!(matches!(s.selection, Some(Expr::Exists { negated: false, .. })));
    }

    #[test]
    fn like_between_isnull() {
        let s = sel("SELECT * FROM t WHERE a LIKE 'x%' AND b BETWEEN 1 AND 5 AND c IS NOT NULL");
        let Some(Expr::Binary { .. }) = s.selection else { panic!() };
    }

    #[test]
    fn set_ops() {
        let s = sel("SELECT a FROM t UNION SELECT a FROM u ORDER BY a LIMIT 3");
        let (op, all, _) = s.set_op.as_ref().unwrap();
        assert_eq!(*op, SetOp::Union);
        assert!(!all);
        assert_eq!(s.limit, Some(3));
    }

    #[test]
    fn scalar_subquery() {
        let s = sel("SELECT (SELECT MAX(x) FROM t) FROM u");
        assert!(matches!(
            s.projections[0],
            SelectItem::Expr { expr: Expr::ScalarSubquery(_), .. }
        ));
    }

    #[test]
    fn insert_multi_row() {
        let st = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match st {
            Statement::Insert { columns, values, .. } => {
                assert_eq!(columns.unwrap().len(), 2);
                assert_eq!(values.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        assert!(matches!(
            parse_statement("UPDATE t SET a = a + 1 WHERE b = 2").unwrap(),
            Statement::Update { .. }
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete { .. }
        ));
    }

    #[test]
    fn create_with_types_and_constraints() {
        let st = parse_statement(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(100) NOT NULL, w FLOAT, ok BOOL)",
        )
        .unwrap();
        match st {
            Statement::CreateTable { columns, .. } => {
                assert_eq!(columns.len(), 4);
                assert_eq!(columns[1].1, DataType::Text);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transactions() {
        assert_eq!(parse_statement("BEGIN TRANSACTION").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("COMMIT;").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_script("BEGIN; INSERT INTO t VALUES (1); COMMIT;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn precedence_arith_over_compare_over_and() {
        let e = parse_expr("a + 1 > 2 AND b = 3").unwrap();
        match e {
            Expr::Binary { op: BinOp::And, left, .. } => {
                assert!(matches!(*left, Expr::Binary { op: BinOp::Gt, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("SELECT 1 FROM t garbage garbage").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
    }

    #[test]
    fn qualified_wildcard() {
        let s = sel("SELECT t.* FROM t");
        assert_eq!(s.projections[0], SelectItem::QualifiedWildcard("t".into()));
    }

    #[test]
    fn negative_numbers() {
        let e = parse_expr("-3 + 4").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_statement("").is_err());
        assert!(parse_statement("   ").is_err());
    }

    #[test]
    fn explain_statement() {
        let s = parse_statement("EXPLAIN SELECT a FROM t WHERE a > 1").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: false, .. }));
        let s = parse_statement("EXPLAIN ANALYZE SELECT a FROM t WHERE a > 1").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: true, .. }));
        // EXPLAIN requires a SELECT body.
        assert!(parse_statement("EXPLAIN INSERT INTO t VALUES (1)").is_err());
        assert!(parse_statement("EXPLAIN ANALYZE INSERT INTO t VALUES (1)").is_err());
        // And still works as a plain identifier elsewhere.
        let s = sel("SELECT explain FROM t");
        assert_eq!(s.projections.len(), 1);
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_crash() {
        // Parenthesized expressions.
        let deep = format!("SELECT {}1{}", "(".repeat(4000), ")".repeat(4000));
        assert!(matches!(parse_statement(&deep), Err(SqlError::Parse(_))));
        // NOT chains.
        let nots = format!("SELECT {} TRUE", "NOT ".repeat(4000));
        assert!(matches!(parse_statement(&nots), Err(SqlError::Parse(_))));
        // Unary minus chains.
        let negs = format!("SELECT {}1", "-".repeat(4000));
        assert!(matches!(parse_statement(&negs), Err(SqlError::Parse(_))));
        // Set-operation chains.
        let unions = vec!["SELECT 1"; 4000].join(" UNION ");
        assert!(matches!(parse_statement(&unions), Err(SqlError::Parse(_))));
        // Reasonable nesting still parses.
        let ok = format!("SELECT {}1{}", "(".repeat(20), ")".repeat(20));
        assert!(parse_statement(&ok).is_ok());
    }

    #[test]
    fn llm_map_and_filter_parse() {
        let s = sel("SELECT LLM_MAP(name, 'uppercase') FROM t WHERE LLM_FILTER(bio, 'positive?')");
        match &s.projections[0] {
            SelectItem::Expr { expr: Expr::LlmMap { arg, template }, alias: None } => {
                assert!(matches!(**arg, Expr::Column { .. }));
                assert_eq!(template, "uppercase");
            }
            other => panic!("expected LLM_MAP projection, got {other:?}"),
        }
        assert!(matches!(s.selection, Some(Expr::LlmFilter { .. })));
    }

    #[test]
    fn llm_match_parses_with_two_args() {
        let e = parse_expr("LLM_MATCH(a.x, b.y, 'same thing?')").unwrap();
        match e {
            Expr::LlmMatch { left, right, template } => {
                assert!(matches!(*left, Expr::Column { qualifier: Some(_), .. }));
                assert!(matches!(*right, Expr::Column { qualifier: Some(_), .. }));
                assert_eq!(template, "same thing?");
            }
            other => panic!("expected LLM_MATCH, got {other:?}"),
        }
    }

    #[test]
    fn llm_join_parses_as_inner_join_with_semantic_on() {
        let s = sel("SELECT * FROM a LLM_JOIN b ON LLM_MATCH(a.x, b.y, 'same?')");
        assert_eq!(s.from.len(), 2);
        let (jt, on) = s.from[1].join.as_ref().expect("join clause");
        assert_eq!(*jt, JoinType::Inner);
        assert!(on.contains_llm());
        // Aliases work too.
        let s = sel("SELECT * FROM a x LLM_JOIN b y ON LLM_MATCH(x.c, y.d, 'p')");
        assert_eq!(s.from[1].alias.as_deref(), Some("y"));
    }

    #[test]
    fn llm_join_without_semantic_predicate_rejected() {
        assert!(parse_statement("SELECT * FROM a LLM_JOIN b ON a.x = b.y").is_err());
        assert!(parse_statement("SELECT * FROM a LLM_JOIN b").is_err());
    }

    #[test]
    fn llm_templates_must_be_string_literals() {
        assert!(parse_statement("SELECT LLM_MAP(name, 42) FROM t").is_err());
        assert!(parse_statement("SELECT LLM_MAP(name, other_col) FROM t").is_err());
        assert!(parse_statement("SELECT LLM_MATCH(a, b, c) FROM t").is_err());
    }

    #[test]
    fn llm_names_stay_valid_as_plain_columns() {
        // Without a following `(` the names are ordinary identifiers.
        let s = sel("SELECT llm_map, llm_filter FROM t WHERE llm_match > 1");
        assert_eq!(s.projections.len(), 2);
        assert!(s.selection.is_some());
    }
}
