//! SQL lexer.

use crate::error::SqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched in the
    /// parser; the lexer keeps the raw text).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (unescaped).
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
}

/// Operator and punctuation tokens.
#[allow(missing_docs)] // variants are self-describing symbol names
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Dot,
}

impl Token {
    /// Is this token the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Lex SQL text into tokens.
pub fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                toks.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                toks.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            ';' => {
                toks.push(Token::Symbol(Sym::Semicolon));
                i += 1;
            }
            '*' => {
                toks.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '+' => {
                toks.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                toks.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            '/' => {
                toks.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '%' => {
                toks.push(Token::Symbol(Sym::Percent));
                i += 1;
            }
            '.' => {
                toks.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            '=' => {
                toks.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                toks.push(Token::Symbol(Sym::Neq));
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Token::Symbol(Sym::Le));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Token::Symbol(Sym::Neq));
                    i += 2;
                } else {
                    toks.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    toks.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                let start = i;
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Lex {
                            message: "unterminated string".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Consume one full UTF-8 char.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(&input[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                toks.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    toks.push(Token::Float(text.parse().map_err(|_| SqlError::Lex {
                        message: format!("bad float {text}"),
                        offset: start,
                    })?));
                } else {
                    toks.push(Token::Int(text.parse().map_err(|_| SqlError::Lex {
                        message: format!("bad int {text}"),
                        offset: start,
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' || c == '"' => {
                if c == '"' {
                    // Quoted identifier.
                    let start = i;
                    i += 1;
                    let id_start = i;
                    while i < bytes.len() && bytes[i] != b'"' {
                        i += 1;
                    }
                    if i >= bytes.len() {
                        return Err(SqlError::Lex {
                            message: "unterminated quoted identifier".into(),
                            offset: start,
                        });
                    }
                    toks.push(Token::Ident(input[id_start..i].to_string()));
                    i += 1;
                } else {
                    let start = i;
                    while i < bytes.len() {
                        let c = bytes[i] as char;
                        if c.is_alphanumeric() || c == '_' {
                            i += utf8_len(bytes[i]);
                        } else {
                            break;
                        }
                    }
                    toks.push(Token::Ident(input[start..i].to_string()));
                }
            }
            other => {
                return Err(SqlError::Lex {
                    message: format!("unexpected character {other:?}"),
                    offset: i,
                })
            }
        }
    }
    Ok(toks)
}

#[inline]
fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let toks = lex("SELECT a, b FROM t WHERE x >= 10.5;").unwrap();
        assert!(toks.contains(&Token::Ident("SELECT".into())));
        assert!(toks.contains(&Token::Symbol(Sym::Ge)));
        assert!(toks.contains(&Token::Float(10.5)));
        assert!(toks.last() == Some(&Token::Symbol(Sym::Semicolon)));
    }

    #[test]
    fn string_escaping() {
        let toks = lex("'o''brien'").unwrap();
        assert_eq!(toks, vec![Token::Str("o'brien".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("'abc"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn neq_both_spellings() {
        assert_eq!(lex("a != b").unwrap()[1], Token::Symbol(Sym::Neq));
        assert_eq!(lex("a <> b").unwrap()[1], Token::Symbol(Sym::Neq));
    }

    #[test]
    fn line_comment_skipped() {
        let toks = lex("SELECT 1 -- trailing comment\n+ 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn qualified_name() {
        let toks = lex("t.col").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t".into()),
                Token::Symbol(Sym::Dot),
                Token::Ident("col".into())
            ]
        );
    }

    #[test]
    fn quoted_identifier() {
        let toks = lex("\"Weird Name\"").unwrap();
        assert_eq!(toks, vec![Token::Ident("Weird Name".into())]);
    }

    #[test]
    fn unicode_in_strings() {
        let toks = lex("'北京 café'").unwrap();
        assert_eq!(toks, vec![Token::Str("北京 café".into())]);
    }

    #[test]
    fn bad_char_errors() {
        assert!(lex("SELECT @").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(lex("4.25").unwrap(), vec![Token::Float(4.25)]);
        // "4." lexes as int then dot (SQL-ish behaviour for ranges).
        assert_eq!(lex("4.").unwrap(), vec![Token::Int(4), Token::Symbol(Sym::Dot)]);
    }
}
