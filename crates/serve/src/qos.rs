//! [`QosQueue`] — the priority-classed, weighted-fair replacement for
//! plain FIFO `pop_batch`.
//!
//! One backlog per [`Priority`] class behind a single mutex + condvar.
//! Consumers pop *batches*: the queue picks which class to serve by
//! **credit-based weighted round-robin** (credits = class weights,
//! refreshed when every backlogged class is out), then coalesces up to
//! `max` same-`batch_key` items from that class's backlog, preserving
//! relative order among the rest — exactly the coalescing rule the old
//! FIFO queue used, now scoped to one class.
//!
//! Properties the scheduler and the property tests rely on:
//!
//! * **Deterministic service order.** Class choice is a pure function of
//!   the queue state and the credit counters, both mutated only under
//!   the lock — the *sequence* of batches handed out is identical at any
//!   consumer count (which consumer gets each batch is racy; result
//!   slotting makes that invisible).
//! * **Weighted fairness.** With every class backlogged, batches are
//!   served 4:2:1 (Interactive:Standard:Batch).
//! * **Starvation freedom.** Any nonempty class is served at least once
//!   within any `sum(weights)` consecutive pops: credits bound how long
//!   higher classes can monopolize the consumer.
//! * **Shed order.** [`QosQueue::evict_lowest`] removes the *youngest*
//!   item of the *lowest* backlogged class — the load-shedding hook.

use std::sync::{Condvar, Mutex, MutexGuard};

use crate::queue::ServeError;
use crate::tenant::Priority;

/// An item schedulable by the QoS queue: it knows its priority class
/// and its micro-batching key.
pub trait QosItem {
    /// The priority class the weighted-fair dequeue serves by.
    fn priority(&self) -> Priority;
    /// The coalescing key: only items with equal keys share a dispatch.
    fn batch_key(&self) -> &str;
}

const CLASSES: usize = 3;

fn weights() -> [u32; CLASSES] {
    let mut w = [0; CLASSES];
    for p in Priority::all() {
        w[p.rank()] = p.weight();
    }
    w
}

struct Inner<T> {
    queues: [std::collections::VecDeque<T>; CLASSES],
    credits: [u32; CLASSES],
    len: usize,
    closed: bool,
}

impl<T: QosItem> Inner<T> {
    /// Pick the class the next batch is served from, spending one
    /// credit. Scan order is highest priority first; when every
    /// backlogged class is out of credits, refresh all credits from the
    /// weights and rescan. Callers guarantee `len > 0`.
    fn pick_class(&mut self) -> usize {
        for pass in 0..2 {
            if pass == 1 {
                self.credits = weights();
            }
            if let Some(c) =
                (0..CLASSES).find(|&c| !self.queues[c].is_empty() && self.credits[c] > 0)
            {
                self.credits[c] -= 1;
                return c;
            }
        }
        unreachable!("pick_class called on an empty queue");
    }
}

/// A bounded, priority-classed queue with weighted-fair batch dequeue.
pub struct QosQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for QosQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QosQueue").field("capacity", &self.capacity).finish()
    }
}

impl<T: QosItem> QosQueue<T> {
    /// A queue admitting at most `capacity` items at a time (clamped to
    /// ≥ 1).
    pub fn new(capacity: usize) -> Self {
        QosQueue {
            inner: Mutex::new(Inner {
                queues: Default::default(),
                credits: weights(),
                len: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured high-water mark.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total queued items across classes.
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether every class backlog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue at the back of the item's class. Rejects (never blocks)
    /// at capacity with the same deterministic depth-scaled hint the
    /// FIFO queue uses, or [`ServeError::Closed`] after close.
    pub fn try_push(&self, item: T) -> Result<(), ServeError> {
        let mut g = self.lock();
        if g.closed {
            return Err(ServeError::Closed);
        }
        if g.len >= self.capacity {
            let depth = g.len;
            return Err(ServeError::Rejected { depth, retry_after_ms: 5 * depth as u64 });
        }
        let rank = item.priority().rank();
        g.queues[rank].push_back(item);
        g.len += 1;
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// The lowest-priority class with queued work, if any.
    pub fn lowest_backlogged(&self) -> Option<Priority> {
        let g = self.lock();
        Priority::all().into_iter().rev().find(|p| !g.queues[p.rank()].is_empty())
    }

    /// Remove and return the **youngest** item of the lowest backlogged
    /// class — the deterministic load-shedding victim. `None` when
    /// empty.
    pub fn evict_lowest(&self) -> Option<T> {
        let mut g = self.lock();
        for c in (0..CLASSES).rev() {
            if let Some(item) = g.queues[c].pop_back() {
                g.len -= 1;
                return Some(item);
            }
        }
        None
    }

    /// Close the queue: producers fail with [`ServeError::Closed`],
    /// consumers drain the remainder and then observe end-of-stream.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Blocking weighted-fair batch pop: wait for work, pick the
    /// serving class by credit WRR, then coalesce up to `max`
    /// same-`batch_key` items from that class (front item decides the
    /// key; non-matching items keep their relative order). `None` means
    /// closed-and-drained.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let max = max.max(1);
        let mut g = self.lock();
        loop {
            if g.len > 0 {
                let class = g.pick_class();
                let first = g.queues[class].pop_front().expect("picked class is nonempty");
                g.len -= 1;
                let mut batch = Vec::with_capacity(max);
                let mut i = 0;
                while batch.len() + 1 < max && i < g.queues[class].len() {
                    if g.queues[class][i].batch_key() == first.batch_key() {
                        let item = g.queues[class].remove(i).expect("index checked");
                        g.len -= 1;
                        batch.push(item);
                    } else {
                        i += 1;
                    }
                }
                batch.insert(0, first);
                return Some(batch);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Item {
        p: Priority,
        key: &'static str,
        n: u64,
    }

    impl QosItem for Item {
        fn priority(&self) -> Priority {
            self.p
        }
        fn batch_key(&self) -> &str {
            self.key
        }
    }

    fn item(p: Priority, key: &'static str, n: u64) -> Item {
        Item { p, key, n }
    }

    #[test]
    fn single_class_is_fifo_with_key_coalescing() {
        let q = QosQueue::new(16);
        for (key, n) in [("a", 1), ("b", 2), ("a", 3), ("a", 4), ("b", 5)] {
            q.try_push(item(Priority::Standard, key, n)).unwrap();
        }
        q.close();
        let b1: Vec<u64> = q.pop_batch(8).unwrap().into_iter().map(|i| i.n).collect();
        assert_eq!(b1, vec![1, 3, 4], "same-key items coalesce across gaps");
        let b2: Vec<u64> = q.pop_batch(8).unwrap().into_iter().map(|i| i.n).collect();
        assert_eq!(b2, vec![2, 5]);
        assert!(q.pop_batch(8).is_none());
    }

    #[test]
    fn weighted_fair_service_ratio() {
        // 40 items per class, batch size 1: the first 7 pops must follow
        // the 4:2:1 credit pattern, and the full drain serves everything.
        let q = QosQueue::new(1024);
        for n in 0..40 {
            for p in Priority::all() {
                q.try_push(item(p, p.label(), n)).unwrap();
            }
        }
        q.close();
        let mut order = Vec::new();
        while let Some(b) = q.pop_batch(1) {
            assert_eq!(b.len(), 1);
            order.push(b[0].p);
        }
        assert_eq!(order.len(), 120);
        use Priority::*;
        assert_eq!(
            &order[..7],
            &[Interactive, Interactive, Interactive, Interactive, Standard, Standard, Batch],
            "first round must follow the 4:2:1 credit schedule"
        );
        // Fairness over the whole run: within any 7-pop window while all
        // classes are backlogged, Batch is served exactly once.
        let backlogged_rounds = 40 / 4; // interactive drains last among the first…
        for w in 0..backlogged_rounds {
            let window = &order[w * 7..w * 7 + 7];
            assert_eq!(window.iter().filter(|p| **p == Batch).count(), 1, "window {w}");
        }
    }

    #[test]
    fn starvation_freedom_bound() {
        // Batch work is enqueued behind heavy Interactive pressure: it
        // must be served within sum(weights) pops.
        let q = QosQueue::new(1024);
        q.try_push(item(Priority::Batch, "bg", 0)).unwrap();
        for n in 0..100 {
            q.try_push(item(Priority::Interactive, "fg", n)).unwrap();
        }
        q.close();
        let bound = Priority::all().iter().map(|p| p.weight() as usize).sum::<usize>();
        let mut pops = 0;
        loop {
            let b = q.pop_batch(1).expect("batch item still queued");
            pops += 1;
            if b[0].p == Priority::Batch {
                break;
            }
            assert!(pops <= bound, "batch-class item starved past {bound} pops");
        }
    }

    #[test]
    fn evict_lowest_takes_youngest_of_lowest_class() {
        let q = QosQueue::new(16);
        q.try_push(item(Priority::Interactive, "a", 1)).unwrap();
        q.try_push(item(Priority::Batch, "b", 2)).unwrap();
        q.try_push(item(Priority::Batch, "b", 3)).unwrap();
        assert_eq!(q.lowest_backlogged(), Some(Priority::Batch));
        assert_eq!(q.evict_lowest().unwrap().n, 3, "youngest batch-class item goes first");
        assert_eq!(q.evict_lowest().unwrap().n, 2);
        assert_eq!(q.lowest_backlogged(), Some(Priority::Interactive));
        assert_eq!(q.evict_lowest().unwrap().n, 1);
        assert!(q.evict_lowest().is_none());
        assert_eq!(q.lowest_backlogged(), None);
    }

    #[test]
    fn capacity_rejects_with_depth_hint() {
        let q = QosQueue::new(2);
        q.try_push(item(Priority::Standard, "a", 1)).unwrap();
        q.try_push(item(Priority::Interactive, "a", 2)).unwrap();
        match q.try_push(item(Priority::Batch, "a", 3)) {
            Err(ServeError::Rejected { depth, retry_after_ms }) => {
                assert_eq!(depth, 2);
                assert_eq!(retry_after_ms, 10);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        q.close();
        assert_eq!(q.try_push(item(Priority::Standard, "a", 4)), Err(ServeError::Closed));
    }

    #[test]
    fn higher_class_served_first_when_credits_fresh() {
        let q = QosQueue::new(16);
        q.try_push(item(Priority::Batch, "bg", 1)).unwrap();
        q.try_push(item(Priority::Interactive, "fg", 2)).unwrap();
        q.close();
        assert_eq!(q.pop_batch(4).unwrap()[0].n, 2, "interactive preempts batch");
        assert_eq!(q.pop_batch(4).unwrap()[0].n, 1);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = std::sync::Arc::new(QosQueue::<Item>::new(4));
        std::thread::scope(|s| {
            let q2 = q.clone();
            let h = s.spawn(move || q2.pop_batch(2).map(|b| b[0].n));
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.try_push(item(Priority::Standard, "a", 42)).unwrap();
            assert_eq!(h.join().unwrap(), Some(42));
        });
    }
}
