//! [`ServeRequest`] — the typed submission unit that replaces the old
//! stringly `(class, payload)` tuples.
//!
//! The old `serve(config, Vec<(String, P)>, handler)` surface conflated
//! two unrelated things in one string: *who* is asking (nobody — there
//! was no tenant) and *how to batch* (the tuple's first element doubled
//! as the coalescing key). The redesigned request carries each concern
//! in its own typed field:
//!
//! * [`ServeRequest::tenant`] — the quota account ([`TenantId`],
//!   validated non-empty);
//! * [`ServeRequest::class`] — the QoS priority ([`Priority`], a closed
//!   enum, so "unknown class" is unrepresentable once built — the
//!   builder's [`ServeRequestBuilder::class_label`] is where free text
//!   gets checked);
//! * [`ServeRequest::batch_key`] — the coalescing key handlers see
//!   (defaults to the priority's label, matching the old tuple
//!   behavior);
//! * [`ServeRequest::payload`] — the caller's job body, untouched.
//!
//! Construction goes through a validating builder mirroring
//! `CompletionRequest::builder` in `llmdm-model`: invalid input is a
//! typed [`ServeError::InvalidRequest`] at build time, not a panic in
//! the scheduler.

use crate::queue::ServeError;
use crate::tenant::{Priority, TenantId};

/// One typed unit of work submitted to the serving frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest<P> {
    /// The quota account this request bills against.
    pub tenant: TenantId,
    /// QoS priority class (drives weighted-fair dequeue and shed order).
    pub class: Priority,
    /// Coalescing key: jobs with equal keys may share a handler batch.
    pub batch_key: String,
    /// The caller's job body, handed to the batch handler untouched.
    pub payload: P,
}

impl<P> ServeRequest<P> {
    /// Start building a request for `tenant` carrying `payload`.
    /// Defaults: [`Priority::Standard`], batch key = the class label.
    pub fn builder(tenant: impl Into<String>, payload: P) -> ServeRequestBuilder<P> {
        ServeRequestBuilder {
            tenant: tenant.into(),
            class: Priority::default(),
            batch_key: None,
            payload,
        }
    }
}

/// Fluent validating builder for [`ServeRequest`]; see
/// [`ServeRequest::builder`].
#[derive(Debug, Clone)]
pub struct ServeRequestBuilder<P> {
    tenant: String,
    class: Priority,
    batch_key: Option<String>,
    payload: P,
}

impl<P> ServeRequestBuilder<P> {
    /// Set the priority class from the closed enum.
    pub fn class(mut self, class: Priority) -> Self {
        self.class = class;
        self
    }

    /// Set the priority class from a free-text label
    /// (`"interactive"` / `"standard"` / `"batch"`, case-insensitive).
    /// Unknown labels surface as [`ServeError::InvalidRequest`] at
    /// [`ServeRequestBuilder::build`] time.
    pub fn class_label(mut self, label: impl Into<String>) -> ClassLabelled<P> {
        let label = label.into();
        match Priority::from_label(&label.to_ascii_lowercase()) {
            Some(class) => {
                self.class = class;
                ClassLabelled { inner: Ok(self) }
            }
            None => ClassLabelled {
                inner: Err(ServeError::InvalidRequest {
                    reason: format!("unknown priority class `{label}`"),
                }),
            },
        }
    }

    /// Override the coalescing key (defaults to the class label).
    pub fn batch_key(mut self, key: impl Into<String>) -> Self {
        self.batch_key = Some(key.into());
        self
    }

    /// Validate and build. Empty / whitespace-only tenant or batch key
    /// is a typed [`ServeError::InvalidRequest`].
    pub fn build(self) -> Result<ServeRequest<P>, ServeError> {
        let tenant = TenantId::new(self.tenant)?;
        let batch_key = match self.batch_key {
            Some(k) => {
                if k.trim().is_empty() {
                    return Err(ServeError::InvalidRequest {
                        reason: "batch key must be non-empty".to_string(),
                    });
                }
                k
            }
            None => self.class.label().to_string(),
        };
        Ok(ServeRequest { tenant, class: self.class, batch_key, payload: self.payload })
    }
}

/// A builder that has absorbed a free-text class label; carries the
/// label error (if any) forward to `build()` so the fluent chain never
/// breaks mid-expression.
#[derive(Debug, Clone)]
pub struct ClassLabelled<P> {
    inner: Result<ServeRequestBuilder<P>, ServeError>,
}

impl<P> ClassLabelled<P> {
    /// Override the coalescing key (defaults to the class label).
    pub fn batch_key(self, key: impl Into<String>) -> Self {
        ClassLabelled { inner: self.inner.map(|b| b.batch_key(key)) }
    }

    /// Validate and build, surfacing any deferred label error first.
    pub fn build(self) -> Result<ServeRequest<P>, ServeError> {
        self.inner?.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_standard_class_and_label_batch_key() {
        let r = ServeRequest::builder("acme", 7u32).build().unwrap();
        assert_eq!(r.tenant.as_str(), "acme");
        assert_eq!(r.class, Priority::Standard);
        assert_eq!(r.batch_key, "standard");
        assert_eq!(r.payload, 7);
    }

    #[test]
    fn class_and_batch_key_override() {
        let r = ServeRequest::builder("acme", ())
            .class(Priority::Interactive)
            .batch_key("nl2sql")
            .build()
            .unwrap();
        assert_eq!(r.class, Priority::Interactive);
        assert_eq!(r.batch_key, "nl2sql");
    }

    #[test]
    fn class_label_parses_case_insensitively() {
        let r = ServeRequest::builder("acme", ()).class_label("Interactive").build().unwrap();
        assert_eq!(r.class, Priority::Interactive);
        let r = ServeRequest::builder("acme", ()).class_label("BATCH").build().unwrap();
        assert_eq!(r.class, Priority::Batch);
    }

    #[test]
    fn unknown_class_label_is_a_typed_error() {
        let err = ServeRequest::builder("acme", ()).class_label("urgent").build().unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest { .. }), "{err}");
        assert!(err.to_string().contains("urgent"));
        // The error survives further chained calls.
        let err = ServeRequest::builder("acme", ())
            .class_label("urgent")
            .batch_key("k")
            .build()
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest { .. }));
    }

    #[test]
    fn empty_tenant_and_batch_key_are_typed_errors() {
        assert!(matches!(
            ServeRequest::builder("", ()).build(),
            Err(ServeError::InvalidRequest { .. })
        ));
        assert!(matches!(
            ServeRequest::builder("  ", ()).build(),
            Err(ServeError::InvalidRequest { .. })
        ));
        assert!(matches!(
            ServeRequest::builder("acme", ()).batch_key("").build(),
            Err(ServeError::InvalidRequest { .. })
        ));
    }
}
