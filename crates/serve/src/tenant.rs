//! Multi-tenant traffic shaping: tenants, priority classes, seeded
//! token-bucket quotas, and the load-shedding policy.
//!
//! The ROADMAP's "heavy traffic from millions of users" story needs the
//! DB-side governance vocabulary on top of raw admission control:
//!
//! * a [`TenantId`] names who submitted a request (validated non-empty,
//!   so accounting rows can never silently merge under `""`);
//! * a [`Priority`] class says how the scheduler should trade the
//!   request off against other tenants' work under pressure — three
//!   classes with fixed weights drive the weighted-fair dequeue in
//!   [`crate::qos::QosQueue`] and the shed order under overload;
//! * a [`TokenBucket`] per tenant enforces a sustained rate + burst
//!   quota. Buckets run on the **simulated clock** (`llmdm-resil`'s
//!   `SimClock` timeline): refill is exact integer arithmetic in
//!   millitokens, so an identical submission sequence reproduces a
//!   byte-identical admit/throttle pattern — no wall-clock anywhere;
//! * a [`ShedPolicy`] ties graceful degradation to `llmdm-resil` outage
//!   windows: inside a window the effective queue capacity shrinks and
//!   overflow is shed lowest-class-first with a typed
//!   [`crate::ServeError::Shed`] carrying a retry hint.
//!
//! Per-tenant outcomes reconcile exactly: [`TenantStats::reconciles`]
//! asserts `admitted + rejected + shed == submitted`, the quota-side
//! mirror of the semantic cache's lookup reconciliation invariant.

use std::collections::BTreeMap;
use std::fmt;

use llmdm_resil::{FaultPlan, Window};

use crate::queue::ServeError;

/// A validated tenant identifier (non-empty, no surrounding whitespace).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(String);

impl TenantId {
    /// Validate and construct. Empty or all-whitespace names are a
    /// typed [`ServeError::InvalidRequest`] — never a silent `""` row in
    /// the accounting tables.
    pub fn new(name: impl Into<String>) -> Result<Self, ServeError> {
        let name = name.into();
        let trimmed = name.trim();
        if trimmed.is_empty() {
            return Err(ServeError::InvalidRequest {
                reason: "tenant id must be non-empty".to_string(),
            });
        }
        Ok(TenantId(trimmed.to_string()))
    }

    /// The tenant name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Priority class of a request: the scheduler serves backlogged classes
/// in proportion to their [`Priority::weight`]s and sheds the lowest
/// class first under overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive foreground traffic (weight 4, shed last).
    Interactive,
    /// Default traffic class (weight 2).
    Standard,
    /// Throughput-oriented background work (weight 1, shed first).
    Batch,
}

impl Priority {
    /// All classes, highest priority first — the scan order of the
    /// weighted-fair dequeue and the *reverse* of the shed order.
    pub fn all() -> [Priority; 3] {
        [Priority::Interactive, Priority::Standard, Priority::Batch]
    }

    /// Dense index, 0 = highest priority.
    pub fn rank(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }

    /// Weighted-fair service weight: when every class is backlogged the
    /// dequeue serves batches in a 4:2:1 ratio.
    pub fn weight(self) -> u32 {
        match self {
            Priority::Interactive => 4,
            Priority::Standard => 2,
            Priority::Batch => 1,
        }
    }

    /// Stable lowercase label (metric class keys, JSON).
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }

    /// Parse a [`Self::label`] back; `None` for unknown classes (the
    /// request builder turns that into a typed error).
    pub fn from_label(s: &str) -> Option<Priority> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "standard" => Some(Priority::Standard),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::Standard
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Millitokens per job: buckets account in 1/1000ths of a token so
/// sub-token refill over millisecond timelines stays exact integer
/// arithmetic (1 token/sec ≡ 1 millitoken/ms).
pub const MILLI_PER_JOB: u64 = 1_000;

/// A tenant's rate quota: sustained tokens/second plus a burst ceiling.
/// One submission costs one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantPolicy {
    /// Bucket capacity in tokens (the burst a cold tenant may submit
    /// back-to-back). Must be ≥ 1.
    pub burst: u64,
    /// Sustained refill rate in tokens per simulated second. 0 means no
    /// refill: the tenant gets exactly `burst` jobs, ever.
    pub refill_per_sec: u64,
}

impl TenantPolicy {
    /// A policy admitting `burst` back-to-back jobs and `refill_per_sec`
    /// jobs/sec sustained.
    pub fn per_sec(burst: u64, refill_per_sec: u64) -> Self {
        TenantPolicy { burst, refill_per_sec }
    }
}

/// The per-tenant policy table handed to the scheduler: an optional
/// default for unlisted tenants (absent = unlimited) plus per-tenant
/// overrides.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantPolicies {
    /// Policy applied to tenants without an explicit entry. `None`
    /// means unlisted tenants are not rate-limited.
    pub default_policy: Option<TenantPolicy>,
    /// Per-tenant overrides, keyed by tenant name.
    pub per_tenant: BTreeMap<String, TenantPolicy>,
}

impl TenantPolicies {
    /// The effective policy for `tenant`, if any quota applies.
    pub fn policy_for(&self, tenant: &str) -> Option<&TenantPolicy> {
        self.per_tenant.get(tenant).or(self.default_policy.as_ref())
    }

    /// Whether no quota applies to anyone.
    pub fn is_empty(&self) -> bool {
        self.default_policy.is_none() && self.per_tenant.is_empty()
    }
}

/// A deterministic token bucket on the simulated-millisecond timeline.
///
/// State is integer millitokens; refill is `elapsed_ms ×
/// refill_per_sec` millitokens (exact, no float drift), clamped to the
/// burst capacity. Given the same submission times, the admit/throttle
/// sequence is byte-identical run to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    capacity_milli: u64,
    refill_per_sec: u64,
    available_milli: u64,
    last_ms: u64,
}

impl TokenBucket {
    /// A bucket for `policy`, starting full at simulated time `now_ms`.
    pub fn new(policy: &TenantPolicy, now_ms: u64) -> Self {
        let capacity_milli = policy.burst.max(1).saturating_mul(MILLI_PER_JOB);
        TokenBucket {
            capacity_milli,
            refill_per_sec: policy.refill_per_sec,
            available_milli: capacity_milli,
            last_ms: now_ms,
        }
    }

    /// Currently available whole tokens (after refilling to `now_ms`).
    pub fn available(&mut self, now_ms: u64) -> u64 {
        self.refill(now_ms);
        self.available_milli / MILLI_PER_JOB
    }

    fn refill(&mut self, now_ms: u64) {
        let dt = now_ms.saturating_sub(self.last_ms);
        if dt > 0 {
            // 1 token/sec == 1 millitoken/ms, so this is exact.
            self.available_milli = self
                .available_milli
                .saturating_add(dt.saturating_mul(self.refill_per_sec))
                .min(self.capacity_milli);
            self.last_ms = now_ms;
        }
    }

    /// Take `cost_milli` millitokens at simulated time `now_ms`.
    /// `Err(retry_after_ms)` is the exact simulated wait until the
    /// bucket will have refilled enough (`u64::MAX` when the rate is 0
    /// and the deficit can never refill).
    pub fn try_take(&mut self, cost_milli: u64, now_ms: u64) -> Result<(), u64> {
        self.refill(now_ms);
        if self.available_milli >= cost_milli {
            self.available_milli -= cost_milli;
            return Ok(());
        }
        let deficit = cost_milli - self.available_milli;
        if self.refill_per_sec == 0 || cost_milli > self.capacity_milli {
            return Err(u64::MAX);
        }
        // Ceiling division: the first millisecond at which the deficit
        // is covered.
        Err(deficit.div_ceil(self.refill_per_sec))
    }
}

/// Graceful load-shedding wired to a `llmdm-resil` outage schedule:
/// inside any of the windows the queue's effective capacity drops to
/// `degraded_capacity`, and overflow work is shed **lowest class
/// first** with [`ServeError::Shed`] retry hints pointing past the
/// window's end.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Outage windows on the simulated timeline (same `Window` type the
    /// fault injector uses, so one schedule can drive both).
    pub outages: Vec<Window>,
    /// Effective queue capacity while inside an outage window.
    pub degraded_capacity: usize,
}

impl ShedPolicy {
    /// A policy degrading to `degraded_capacity` during `outages`.
    pub fn new(outages: Vec<Window>, degraded_capacity: usize) -> Self {
        ShedPolicy { outages, degraded_capacity }
    }

    /// Adopt the outage windows already configured for `tier` in a
    /// resilience [`FaultPlan`] — the serving layer degrades on exactly
    /// the schedule the fault injector enforces downstream.
    pub fn from_plan(plan: &FaultPlan, tier: &str, degraded_capacity: usize) -> Self {
        let outages = plan.tier(tier).map(|t| t.outages.clone()).unwrap_or_default();
        ShedPolicy { outages, degraded_capacity }
    }

    /// If `now_ms` falls inside an outage window, the window's exclusive
    /// end (the natural retry target).
    pub fn outage_end(&self, now_ms: u64) -> Option<u64> {
        self.outages.iter().find(|w| w.contains(now_ms)).map(|w| w.end_ms)
    }
}

/// Per-tenant admission accounting for one serve run. The invariant —
/// checked by [`TenantStats::reconciles`] and property-tested across
/// seeds and worker counts — is `admitted + rejected + shed ==
/// submitted`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests this tenant submitted.
    pub submitted: u64,
    /// Requests that reached a worker (dispatched).
    pub admitted: u64,
    /// Requests refused up front (queue backpressure or quota).
    pub rejected: u64,
    /// Requests shed by load-shedding (displaced or degraded-capacity
    /// overflow).
    pub shed: u64,
}

impl TenantStats {
    /// Exact outcome reconciliation: every submission is accounted for
    /// exactly once.
    pub fn reconciles(&self) -> bool {
        self.admitted + self.rejected + self.shed == self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_id_validates() {
        assert!(TenantId::new("acme").is_ok());
        assert_eq!(TenantId::new("  padded  ").unwrap().as_str(), "padded");
        for bad in ["", "   ", "\t\n"] {
            match TenantId::new(bad) {
                Err(ServeError::InvalidRequest { reason }) => {
                    assert!(reason.contains("non-empty"), "{reason}");
                }
                other => panic!("expected InvalidRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn priority_labels_roundtrip_and_rank_orders() {
        for p in Priority::all() {
            assert_eq!(Priority::from_label(p.label()), Some(p));
        }
        assert_eq!(Priority::from_label("gold"), None);
        assert!(Priority::Interactive.rank() < Priority::Standard.rank());
        assert!(Priority::Standard.rank() < Priority::Batch.rank());
        assert!(Priority::Interactive.weight() > Priority::Batch.weight());
        assert_eq!(Priority::default(), Priority::Standard);
    }

    #[test]
    fn bucket_burst_then_throttle() {
        let mut b = TokenBucket::new(&TenantPolicy::per_sec(3, 10), 0);
        // The full burst goes through back-to-back…
        for _ in 0..3 {
            assert_eq!(b.try_take(MILLI_PER_JOB, 0), Ok(()));
        }
        // …then the bucket is dry; at 10 tokens/sec one token takes
        // exactly 100 ms to refill.
        assert_eq!(b.try_take(MILLI_PER_JOB, 0), Err(100));
        assert_eq!(b.try_take(MILLI_PER_JOB, 99), Err(1));
        assert_eq!(b.try_take(MILLI_PER_JOB, 100), Ok(()));
    }

    #[test]
    fn bucket_refill_clamps_at_burst() {
        let mut b = TokenBucket::new(&TenantPolicy::per_sec(2, 1_000), 0);
        assert_eq!(b.available(0), 2);
        assert_eq!(b.try_take(MILLI_PER_JOB, 0), Ok(()));
        // A long idle period refills to the burst ceiling, not beyond.
        assert_eq!(b.available(1_000_000), 2);
    }

    #[test]
    fn zero_rate_bucket_never_refills() {
        let mut b = TokenBucket::new(&TenantPolicy::per_sec(1, 0), 0);
        assert_eq!(b.try_take(MILLI_PER_JOB, 0), Ok(()));
        assert_eq!(b.try_take(MILLI_PER_JOB, u64::MAX / 2), Err(u64::MAX));
    }

    #[test]
    fn bucket_sequence_is_deterministic() {
        let policy = TenantPolicy::per_sec(2, 50);
        let run = || {
            let mut b = TokenBucket::new(&policy, 0);
            (0..40u64).map(|i| b.try_take(MILLI_PER_JOB, i * 7).is_ok()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        assert!(run().iter().any(|ok| !ok), "a 50/sec quota must throttle 1/7ms arrivals");
    }

    #[test]
    fn policies_resolve_override_then_default() {
        let mut p = TenantPolicies::default();
        assert!(p.is_empty());
        assert_eq!(p.policy_for("anyone"), None);
        p.default_policy = Some(TenantPolicy::per_sec(5, 1));
        p.per_tenant.insert("gold".to_string(), TenantPolicy::per_sec(100, 50));
        assert_eq!(p.policy_for("gold").unwrap().burst, 100);
        assert_eq!(p.policy_for("other").unwrap().burst, 5);
        assert!(!p.is_empty());
    }

    #[test]
    fn shed_policy_from_plan_adopts_tier_outages() {
        use llmdm_resil::TierPlan;
        let plan = FaultPlan::new(
            "o",
            1,
            vec![TierPlan::quiet("sim-large").outage(Window::new(100, 200))],
        );
        let shed = ShedPolicy::from_plan(&plan, "sim-large", 4);
        assert_eq!(shed.outages, vec![Window::new(100, 200)]);
        assert_eq!(shed.outage_end(150), Some(200));
        assert_eq!(shed.outage_end(99), None);
        assert_eq!(shed.outage_end(200), None);
        // A tier the plan does not know has no outages.
        assert!(ShedPolicy::from_plan(&plan, "sim-small", 4).outages.is_empty());
    }

    #[test]
    fn tenant_stats_reconcile() {
        let s = TenantStats { submitted: 10, admitted: 6, rejected: 3, shed: 1 };
        assert!(s.reconciles());
        let bad = TenantStats { submitted: 10, admitted: 6, rejected: 3, shed: 0 };
        assert!(!bad.reconciles());
    }
}
